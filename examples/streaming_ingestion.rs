//! Online, bounded-memory log ingestion through the streaming session seam.
//!
//! Captures a workload's event streams, compresses them to the codec wire
//! form, then monitors them three ways and checks all agree:
//!
//! 1. buffered `ReplaySource` (the baseline: whole streams in memory);
//! 2. `StreamingReplaySource` — decode-as-you-go from byte readers with a
//!    4 KiB chunk cap — on the deterministic backend;
//! 3. the same streaming source on the real-thread backend;
//!
//! and finally drives a live, back-pressured `PushSource::bounded` feed
//! from a producer thread. Run with `cargo run --release --example
//! streaming_ingestion`.

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::core::{
    MonitorSession, PushSource, ReplaySource, StreamingReplaySource, ThreadedBackend,
};
use paralog::events::codec::encode;
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

fn main() {
    // 1. Capture + compress.
    let workload = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
        .scale(0.1)
        .build();
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let live = Platform::run(&workload, &cfg).metrics;
    let streams = live.streams.clone().expect("collection enabled");
    let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
    let wire_bytes: usize = encoded.iter().map(Vec::len).sum();
    println!(
        "captured {} records across {} threads -> {} wire bytes ({:.2} B/record)",
        live.records,
        streams.len(),
        wire_bytes,
        wire_bytes as f64 / live.records as f64
    );

    // 2. Buffered baseline.
    let buffered = MonitorSession::builder()
        .source(ReplaySource::new(streams, workload.heap))
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();

    // 3. Streaming, deterministic backend, 4 KiB cap.
    const CAP: usize = 4096;
    let src =
        StreamingReplaySource::from_encoded(encoded.clone(), workload.heap).with_chunk_bytes(CAP);
    let stats = src.stats();
    let streamed = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    println!(
        "streamed (deterministic): fingerprint match: {}, peak decode residency {} B of {} wire B (cap {} B)",
        streamed.metrics.fingerprint == buffered.metrics.fingerprint,
        stats.peak_buffered_bytes(),
        wire_bytes,
        CAP,
    );
    assert!(
        stats.peak_buffered_bytes() <= 2 * CAP,
        "residency blew the cap"
    );

    // 4. Streaming, real-thread backend.
    let src = StreamingReplaySource::from_encoded(encoded, workload.heap).with_chunk_bytes(CAP);
    let threaded = MonitorSession::builder()
        .source(src)
        .lifeguard(LifeguardKind::TaintCheck)
        .backend(ThreadedBackend)
        .build()
        .unwrap()
        .run()
        .unwrap();
    println!(
        "streamed (threaded)     : fingerprint match: {}, {} arc spins",
        threaded.metrics.fingerprint == buffered.metrics.fingerprint,
        threaded.metrics.dependence_stalls,
    );

    // 5. A live feed: the producer thread pushes through a capacity-64
    // channel and is throttled whenever the monitor falls behind.
    let heap = workload.heap;
    let (mut feed, source) = PushSource::bounded(1, heap, 64);
    let producer = std::thread::spawn(move || {
        use paralog::events::{EventRecord, Instr, MemRef, Reg, Rid};
        for i in 0..20_000u64 {
            let rec = EventRecord::instr(
                Rid(i + 1),
                Instr::Load {
                    dst: Reg::new((i % 8) as u8),
                    src: MemRef::new(heap.start + (i % 512) * 8, 8),
                },
            );
            feed.push(0, rec).expect("session alive");
        }
    });
    let online = MonitorSession::builder()
        .source(source)
        .lifeguard(LifeguardKind::TaintCheck)
        .build()
        .unwrap()
        .run()
        .unwrap();
    producer.join().expect("producer");
    println!(
        "live push feed          : {} records monitored online through a 64-record channel",
        online.metrics.records
    );

    assert_eq!(streamed.metrics.fingerprint, buffered.metrics.fingerprint);
    assert_eq!(threaded.metrics.fingerprint, buffered.metrics.fingerprint);
    println!("\nall three ingestion paths agree on final metadata; memory stayed within the cap.");
}
