//! Replays captured event streams on **real OS threads** — the §5.3
//! synchronization-free fast path under genuine concurrency.
//!
//! The same `MonitorSession` is driven through both bundled backends: the
//! deterministic simulator establishes the expected final metadata, then the
//! real-thread backend races one OS thread per stream over a lock-free
//! atomic shadow, enforcing order purely by spinning on the atomic progress
//! table (§5.2). Whatever the OS scheduler does, the fingerprints must
//! match.
//!
//! ```text
//! cargo run --release --example threaded_replay
//! ```

use paralog::core::{DeterministicBackend, MonitorSession, ThreadedBackend};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

fn main() {
    for bench in [
        Benchmark::Barnes,
        Benchmark::Fluidanimate,
        Benchmark::Radiosity,
    ] {
        let w = WorkloadSpec::benchmark(bench, 4).scale(0.2).build();
        let expected = MonitorSession::builder()
            .source(w.clone())
            .lifeguard(LifeguardKind::TaintCheck)
            .backend(DeterministicBackend)
            .build()
            .expect("session is complete")
            .run()
            .expect("deterministic run")
            .metrics
            .fingerprint;
        let mut spins = 0;
        for round in 0..5 {
            let m = MonitorSession::builder()
                .source(w.clone())
                .lifeguard(LifeguardKind::TaintCheck)
                .backend(ThreadedBackend)
                .build()
                .expect("session is complete")
                .run()
                .expect("SC captures are replayable")
                .metrics;
            assert_eq!(
                m.fingerprint, expected,
                "{bench} round {round}: concurrent replay diverged \
                 ({:#x} vs {expected:#x})",
                m.fingerprint
            );
            assert!(m.matches_reference());
            spins += m.dependence_stalls;
        }
        println!(
            "{bench:<12} 5 concurrent replays, all metadata-identical to the deterministic run \
             ({spins} enforcement spins observed)"
        );
    }
    println!("\nsynchronization-free fast paths hold under real concurrency (§5.3).");
}
