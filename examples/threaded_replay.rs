//! Replays captured event streams on **real OS threads** — the §5.3
//! synchronization-free fast path under genuine concurrency.
//!
//! The deterministic simulator captures each thread's fully annotated stream
//! (records + dependence arcs); real threads then race through them sharing
//! a lock-free atomic shadow memory, enforcing order purely by spinning on
//! the atomic progress table (§5.2). Whatever the OS scheduler does, the
//! final taint state must equal the deterministic run's.
//!
//! ```text
//! cargo run --release --example threaded_replay
//! ```

use paralog::core::run_threaded_taintcheck;
use paralog::workloads::{Benchmark, WorkloadSpec};

fn main() {
    for bench in [
        Benchmark::Barnes,
        Benchmark::Fluidanimate,
        Benchmark::Radiosity,
    ] {
        let w = WorkloadSpec::benchmark(bench, 4).scale(0.2).build();
        let mut spins = 0;
        for round in 0..5 {
            let out = run_threaded_taintcheck(&w);
            assert!(
                out.is_correct(),
                "{bench} round {round}: concurrent replay diverged \
                 ({:#x} vs {:#x})",
                out.fingerprint,
                out.expected
            );
            spins += out.arc_spins;
        }
        println!(
            "{bench:<12} 5 concurrent replays, all metadata-identical to the deterministic run \
             ({spins} enforcement spins observed)"
        );
    }
    println!("\nsynchronization-free fast paths hold under real concurrency (§5.3).");
}
