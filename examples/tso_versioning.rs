//! The Figure 5 scenario: Total Store Ordering, Dekker-style accesses, and
//! versioned metadata — end-to-end on the session API, including §5.5
//! replay on real OS threads.
//!
//! Under TSO, `Wr(A); Rd(B)` on thread 0 against `Wr(B); Rd(A)` on thread 1
//! can execute with both reads bypassing both (buffered) writes — a cycle if
//! coherence-inferred ordering were enforced as-is. ParaLog reverses the
//! SC-violating R→W arcs: the writer's lifeguard *produces* a version of the
//! pre-write metadata and the reader's lifeguard *consumes* it (§5.5).
//!
//! The run happens three times: the deterministic co-simulation (with the
//! in-line sequential reference checking accuracy), then the same workload
//! on [`ThreadedBackend`] — real threads resolving the version annotations
//! against the shared `ConcurrentVersionTable`, where a consumer whose
//! version is not yet produced parks until the producer publishes it.
//!
//! ```text
//! cargo run --release --example tso_versioning
//! ```
//!
//! [`ThreadedBackend`]: paralog::core::ThreadedBackend

use paralog::core::{MonitorConfig, MonitorSession, MonitoringMode, ThreadedBackend};
use paralog::events::{AddrRange, Instr, MemRef, Op, Reg, SyscallKind};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::Workload;

fn main() {
    let a = MemRef::new(0x2000_0000, 8); // address A (tainted beforehand)
    let b = MemRef::new(0x2000_0100, 8); // address B (tainted beforehand)

    // Taint both locations via input syscalls, then run the Dekker pattern.
    // Each thread overwrites one location with a *clean* immediate and reads
    // the other; under TSO both reads may see the old (tainted) values, and
    // the lifeguards must agree with what the hardware actually did.
    let dekker = |mine: MemRef, theirs: MemRef, buf: AddrRange| {
        vec![
            Op::Syscall {
                kind: SyscallKind::ReadInput,
                buf: Some(buf),
            },
            // Spacer work so both threads reach the racy window together.
            Op::Instr(Instr::MovRI { dst: Reg(5) }),
            Op::Instr(Instr::MovRI { dst: Reg(0) }),
            // Wr(mine) <- clean; the store sits in the store buffer.
            Op::Instr(Instr::Store {
                dst: mine,
                src: Reg(0),
            }),
            // Rd(theirs): may retire before the remote store drains.
            Op::Instr(Instr::Load {
                dst: Reg(1),
                src: theirs,
            }),
            // Use the read value so the taint outcome is observable.
            Op::Instr(Instr::Store {
                dst: MemRef::new(mine.addr + 0x40, 8),
                src: Reg(1),
            }),
        ]
    };

    let workload = Workload {
        name: "tso-dekker".into(),
        benchmark: None,
        threads: vec![
            dekker(a, b, AddrRange::new(a.addr, 8)),
            dekker(b, a, AddrRange::new(b.addr, 8)),
        ],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    };
    let config = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
        .with_tso()
        .with_equivalence_check();

    // 1. Deterministic co-simulation: the cycle-accurate run whose metadata
    //    the sequential reference checks.
    let det = MonitorSession::builder()
        .source(workload.clone())
        .config(config.clone())
        .build()
        .expect("sourced session")
        .run()
        .expect("deterministic TSO run");
    let m = &det.metrics;
    println!("deterministic TSO run:");
    println!("  versions produced : {}", m.versions_produced);
    println!("  versions consumed : {}", m.versions_consumed);
    println!(
        "  metadata matches the sequential reference: {}",
        m.matches_reference()
    );
    assert!(
        m.matches_reference(),
        "versioned metadata must preserve lifeguard accuracy"
    );
    assert_eq!(
        m.versions_produced, m.versions_consumed,
        "every version finds its consumer"
    );

    // 2. The same workload on real OS threads: the capture's §5.5
    //    annotations resolve against the shared ConcurrentVersionTable
    //    (producers snapshot pre-store metadata, consumers park for it).
    let thr = MonitorSession::builder()
        .source(workload)
        .config(config)
        .backend(ThreadedBackend)
        .build()
        .expect("sourced session")
        .run()
        .expect("threaded TSO replay");
    let t = &thr.metrics;
    println!("\nthreaded TSO replay (real OS threads):");
    println!("  versions produced : {}", t.versions_produced);
    println!("  versions consumed : {}", t.versions_consumed);
    println!(
        "  metadata matches the deterministic capture: {}",
        t.matches_reference()
    );
    assert!(
        t.matches_reference(),
        "real-thread replay must reproduce the deterministic metadata"
    );
    assert_eq!(t.fingerprint, m.fingerprint, "backends agree end to end");

    if m.versions_produced > 0 {
        println!(
            "\nSC-violating R->W arcs were reversed into produce/consume version pairs \
             (Figure 5) and replayed on real threads through the concurrent version table."
        );
    } else {
        println!(
            "\n(no SC violation manifested at this interleaving; ordering held via plain arcs)"
        );
    }
}
