//! The Figure 5 scenario: Total Store Ordering, Dekker-style accesses, and
//! versioned metadata.
//!
//! Under TSO, `Wr(A); Rd(B)` on thread 0 against `Wr(B); Rd(A)` on thread 1
//! can execute with both reads bypassing both (buffered) writes — a cycle if
//! coherence-inferred ordering were enforced as-is. ParaLog reverses the
//! SC-violating R→W arcs: the writer's lifeguard *produces* a version of the
//! pre-write metadata and the reader's lifeguard *consumes* it (§5.5).
//!
//! ```text
//! cargo run --release --example tso_versioning
//! ```

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::events::{AddrRange, Instr, MemRef, Op, Reg, SyscallKind};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::Workload;

fn main() {
    let a = MemRef::new(0x2000_0000, 8); // address A (tainted beforehand)
    let b = MemRef::new(0x2000_0100, 8); // address B (tainted beforehand)

    // Taint both locations via input syscalls, then run the Dekker pattern.
    // Each thread overwrites one location with a *clean* immediate and reads
    // the other; under TSO both reads may see the old (tainted) values, and
    // the lifeguards must agree with what the hardware actually did.
    let dekker = |mine: MemRef, theirs: MemRef, buf: AddrRange| {
        vec![
            Op::Syscall {
                kind: SyscallKind::ReadInput,
                buf: Some(buf),
            },
            // Spacer work so both threads reach the racy window together.
            Op::Instr(Instr::MovRI { dst: Reg(5) }),
            Op::Instr(Instr::MovRI { dst: Reg(0) }),
            // Wr(mine) <- clean; the store sits in the store buffer.
            Op::Instr(Instr::Store {
                dst: mine,
                src: Reg(0),
            }),
            // Rd(theirs): may retire before the remote store drains.
            Op::Instr(Instr::Load {
                dst: Reg(1),
                src: theirs,
            }),
            // Use the read value so the taint outcome is observable.
            Op::Instr(Instr::Store {
                dst: MemRef::new(mine.addr + 0x40, 8),
                src: Reg(1),
            }),
        ]
    };

    let workload = Workload {
        name: "tso-dekker".into(),
        benchmark: None,
        threads: vec![
            dekker(a, b, AddrRange::new(a.addr, 8)),
            dekker(b, a, AddrRange::new(b.addr, 8)),
        ],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    };

    let outcome = Platform::run(
        &workload,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck)
            .with_tso()
            .with_equivalence_check(),
    );
    let m = &outcome.metrics;
    println!("TSO run complete:");
    println!("  versions produced : {}", m.versions_produced);
    println!("  versions consumed : {}", m.versions_consumed);
    println!(
        "  metadata matches the sequential reference: {}",
        m.matches_reference()
    );
    assert!(
        m.matches_reference(),
        "versioned metadata must preserve lifeguard accuracy"
    );
    assert_eq!(
        m.versions_produced, m.versions_consumed,
        "every version finds its consumer"
    );
    if m.versions_produced > 0 {
        println!(
            "\nSC-violating R->W arcs were reversed into produce/consume version pairs (Figure 5)."
        );
    } else {
        println!(
            "\n(no SC violation manifested at this interleaving; ordering held via plain arcs)"
        );
    }
}
