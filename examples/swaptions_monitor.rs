//! The paper's hardest customer: SWAPTIONS under AddrCheck.
//!
//! SWAPTIONS performs hundreds of thousands of malloc/free pairs; every pair
//! broadcasts ConflictAlert messages that act as a conservative barrier
//! across all lifeguard threads (§7). This example reproduces that behaviour,
//! shows the flush-only ablation the paper sketches as the alternative, and
//! demonstrates AddrCheck catching injected use-after-free bugs.
//!
//! ```text
//! cargo run --release --example swaptions_monitor
//! ```

use paralog::core::{CaMode, MonitorConfig, MonitoringMode, Platform};
use paralog::lifeguards::{LifeguardKind, ViolationKind};
use paralog::workloads::{Benchmark, WorkloadSpec};

fn main() {
    let clean = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.5)
        .build();
    println!(
        "swaptions: {} ops, {} high-level events (malloc/free churn)",
        clean.total_ops(),
        clean.high_level_ops()
    );

    let base = Platform::run(
        &clean,
        &MonitorConfig::new(MonitoringMode::None, LifeguardKind::AddrCheck),
    );
    let base_cycles = base.metrics.execution_cycles();

    // Conservative CA barrier (the paper's design).
    let barrier = Platform::run(
        &clean,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    );
    // Flush-only ablation ("induce dependence arcs instead", §7).
    let mut flush_cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck);
    flush_cfg.ca_mode = CaMode::FlushOnly;
    let flush = Platform::run(&clean, &flush_cfg);

    println!("\nConflictAlert handling (4 threads):");
    println!(
        "  CA barrier  : {:.2}x slowdown, {} broadcasts, {} cycles waiting on dependences",
        barrier.metrics.slowdown_vs(base_cycles),
        barrier.metrics.ca_broadcasts,
        barrier.metrics.lifeguard_totals().wait_dependence
    );
    println!(
        "  flush-only  : {:.2}x slowdown, {} cycles waiting on dependences",
        flush.metrics.slowdown_vs(base_cycles),
        flush.metrics.lifeguard_totals().wait_dependence
    );

    // Now inject allocator bugs: stale pointers dereferenced after free.
    let buggy = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.5)
        .inject_bugs(true)
        .build();
    let monitored = Platform::run(
        &buggy,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck),
    );
    let uaf = monitored
        .violations()
        .iter()
        .filter(|v| v.kind == ViolationKind::UnallocatedAccess)
        .count();
    println!("\nwith injected allocator bugs: {uaf} unallocated-access violations reported");
    assert!(
        uaf > 0,
        "AddrCheck must catch the injected use-after-free accesses"
    );
}
