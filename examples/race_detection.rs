//! Two kinds of races, two mechanisms:
//!
//! 1. **Application data races** — LockSet (Eraser) flags shared variables
//!    not consistently protected by any lock, using the fast-path/slow-path
//!    metadata atomicity split of §5.3.
//! 2. **Syscall logical races** — an access racing an in-flight `read()`
//!    system call has no coherence arc to order it (the kernel is
//!    unmonitored); the per-thread range table built from ConflictAlert
//!    memory-range parameters catches it (§5.4).
//!
//! ```text
//! cargo run --release --example race_detection
//! ```

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::events::{AddrRange, Instr, LockId, MemRef, Op, Reg, SyscallKind};
use paralog::lifeguards::{LifeguardKind, ViolationKind};
use paralog::sim::sync::lock_word;
use paralog::workloads::{Benchmark, Workload, WorkloadSpec};

fn lockset_demo() {
    // FLUIDANIMATE-like workload, but with extra unprotected shared writes.
    let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
        .scale(0.2)
        .build();
    let outcome = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::LockSet),
    );
    let races = outcome
        .violations()
        .iter()
        .filter(|v| v.kind == ViolationKind::DataRace)
        .count();
    println!("LockSet on FLUIDANIMATE (4 threads): {races} inconsistently-locked variables");
    println!("  (the workload's unprotected shared accesses — Eraser reports them by design)");

    // A fully disciplined program: every shared write under the same lock.
    let shared = MemRef::new(0x6000_0000, 8);
    let lock = LockId(0);
    let disciplined: Vec<Op> = (0..4)
        .flat_map(|_| {
            vec![
                Op::Lock {
                    lock,
                    addr: lock_word(lock),
                },
                Op::Instr(Instr::MovRI { dst: Reg(0) }),
                Op::Instr(Instr::Store {
                    dst: shared,
                    src: Reg(0),
                }),
                Op::Instr(Instr::Load {
                    dst: Reg(1),
                    src: shared,
                }),
                Op::Unlock {
                    lock,
                    addr: lock_word(lock),
                },
            ]
        })
        .collect();
    let w = Workload {
        name: "disciplined".into(),
        benchmark: None,
        threads: vec![disciplined.clone(), disciplined],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 1,
    };
    let outcome = Platform::run(
        &w,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::LockSet),
    );
    let races = outcome
        .violations()
        .iter()
        .filter(|v| v.kind == ViolationKind::DataRace)
        .count();
    println!("LockSet on a lock-disciplined program: {races} races (expected 0)");
    assert_eq!(races, 0);
}

fn syscall_race_demo() {
    // Thread 0 starts a long read() into its buffer; thread 1 races a load
    // from that buffer while the syscall is in flight. No coherence arc can
    // order the kernel's write — the range table must catch it.
    let buf = AddrRange::new(0x2000_0000, 256);
    let reader = vec![
        Op::Syscall {
            kind: SyscallKind::ReadInput,
            buf: Some(buf),
        },
        Op::Instr(Instr::Load {
            dst: Reg(0),
            src: MemRef::new(buf.start, 4),
        }),
    ];
    let racer = vec![
        Op::Instr(Instr::MovRI { dst: Reg(0) }),
        // Races the in-flight read().
        Op::Instr(Instr::Load {
            dst: Reg(1),
            src: MemRef::new(buf.start + 128, 4),
        }),
        Op::Instr(Instr::Store {
            dst: MemRef::new(0x2100_0000, 4),
            src: Reg(1),
        }),
    ];
    let w = Workload {
        name: "syscall-race".into(),
        benchmark: None,
        threads: vec![reader, racer],
        heap: AddrRange::new(0x1000_0000, 0x1000_0000),
        locks: 0,
    };
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.damage_containment = false; // let the racer actually race
    let outcome = Platform::run(&w, &cfg);
    let syscall_races = outcome
        .violations()
        .iter()
        .filter(|v| v.kind == ViolationKind::SyscallRace)
        .count();
    println!("\nTaintCheck syscall-race detection: {syscall_races} racing accesses flagged");
    println!("  (destination conservatively tainted, as §5.4 prescribes)");
    assert!(
        syscall_races > 0,
        "the range table must flag the racing load"
    );
}

fn main() {
    lockset_demo();
    syscall_race_demo();
}
