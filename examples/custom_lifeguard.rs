//! Quickstart: write an out-of-tree lifeguard and run it through the
//! composable `MonitorSession` API — no edits to platform code.
//!
//! ParaLog's §3 claim is that a lifeguard written for sequential monitoring
//! ports to parallel monitoring with minimal effort. Concretely, a new
//! analysis needs exactly two impls:
//!
//! 1. [`Lifeguard`] — the per-thread handler logic over shared state;
//! 2. [`LifeguardFactory`] — how to build the analysis-wide state for a run.
//!
//! Everything else (ordering, dependence arcs, ConflictAlert delivery,
//! accelerators, backends) is the platform's business. The same factory then
//! runs on any event source: the simulated workload below, a replay of
//! captured logs, or a programmatic push feed.
//!
//! ```text
//! cargo run --release --example custom_lifeguard
//! ```

use paralog::core::{MonitorSession, ReplaySource};
use paralog::events::{AccessKind, AddrRange, CaRecord, MetaOp, Rid, ThreadId};
use paralog::lifeguards::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardFactory,
    LifeguardFamily, LifeguardKind, LifeguardRegistry, LifeguardSpec, Violation, ViolationKind,
};
use paralog::order::CaPolicy;
use paralog::workloads::{Benchmark, WorkloadSpec};
use std::cell::RefCell;
use std::rc::Rc;

/// Analysis-wide shared state (Figure 2's "global metadata"): a histogram of
/// access sizes and a tripwire range.
#[derive(Debug, Default)]
struct ProfileShared {
    /// accesses[size_log2] across all threads.
    accesses: [u64; 4],
    tripwire: Option<AddrRange>,
}

/// The analysis: profiles memory-access sizes and trips on a watched range —
/// about as small as a lifeguard gets.
#[derive(Debug)]
struct AccessProfiler {
    shared: Rc<RefCell<ProfileShared>>,
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl AccessProfiler {
    fn new(shared: Rc<RefCell<ProfileShared>>, tid: ThreadId) -> Self {
        AccessProfiler {
            shared,
            tid,
            spec: LifeguardSpec {
                name: "AccessProfiler",
                // Check view: every load/store arrives as one CheckAccess op.
                view: EventView::Check,
                uses_it: false,
                uses_if: false, // filtering would hide repeated accesses
                uses_mtlb: false,
                ca_policy: CaPolicy::new(), // no high-level subscriptions
                bits_per_byte: 0,           // no byte-granular shadow
                atomicity: AtomicityClass::SyncFree,
            },
        }
    }
}

impl Lifeguard for AccessProfiler {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let MetaOp::CheckAccess { mem, kind } = op else {
            return;
        };
        let mut shared = self.shared.borrow_mut();
        shared.accesses[usize::from(mem.size.trailing_zeros().min(3) as u8)] += 1;
        if let Some(wire) = shared.tripwire {
            if *kind != AccessKind::Read && wire.overlaps(&mem.range()) {
                ctx.report(Violation {
                    tid: self.tid,
                    rid,
                    kind: ViolationKind::UnallocatedAccess,
                    addr: Some(mem.addr),
                });
            }
        }
    }

    fn handle_ca(&mut self, _ca: &CaRecord, _own: bool, _rid: Rid, _ctx: &mut HandlerCtx) {}

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        vec![0; range.len as usize] // no byte shadow to version
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (i, n) in shared.accesses.iter().enumerate() {
            fp.mix(i as u64, *n);
        }
        fp.finish()
    }
}

/// The factory is what registers: it builds one shared state per run and
/// hands the platform a per-thread constructor.
#[derive(Debug)]
struct AccessProfilerFactory;

impl LifeguardFactory for AccessProfilerFactory {
    fn name(&self) -> &str {
        "AccessProfiler"
    }

    fn build(&self, heap: AddrRange) -> LifeguardFamily {
        let shared = Rc::new(RefCell::new(ProfileShared {
            // Watch the first heap cache line as a demo tripwire.
            tripwire: Some(AddrRange::new(heap.start, 64)),
            ..ProfileShared::default()
        }));
        LifeguardFamily::from_constructor("AccessProfiler", move |tid| {
            Box::new(AccessProfiler::new(Rc::clone(&shared), tid))
        })
    }
}

fn main() {
    let w = WorkloadSpec::benchmark(Benchmark::Swaptions, 4)
        .scale(0.1)
        .build();

    // 1. The custom analysis co-simulated with the workload.
    let outcome = MonitorSession::builder()
        .source(w.clone())
        .lifeguard_factory(AccessProfilerFactory)
        .build()
        .expect("session is complete")
        .run()
        .expect("deterministic run");
    println!(
        "AccessProfiler over {}: {} records, {} deliveries, {} tripwire hits",
        w.name,
        outcome.metrics.records,
        outcome.metrics.delivered_ops,
        outcome.metrics.violations.len()
    );

    // 2. The same analysis by registry name, ingesting a pre-captured log —
    //    the host-side deployment shape (capture once, analyze elsewhere).
    let mut cfg = paralog::core::MonitorConfig::new(
        paralog::core::MonitoringMode::Parallel,
        LifeguardKind::TaintCheck, // the capture's analysis is independent
    );
    cfg.collect_streams = true;
    let streams = paralog::core::Platform::run(&w, &cfg)
        .metrics
        .streams
        .expect("collection enabled");
    let mut registry = LifeguardRegistry::builtin();
    registry.register(AccessProfilerFactory);
    let replayed = MonitorSession::builder()
        .source(ReplaySource::new(streams, w.heap))
        .registry(registry)
        .lifeguard_named("AccessProfiler")
        .build()
        .expect("name resolves")
        .run()
        .expect("streams are well-formed");
    assert_eq!(
        replayed.metrics.fingerprint, outcome.metrics.fingerprint,
        "live capture and log ingestion agree on the profile"
    );
    println!(
        "replayed the captured log through the registry: fingerprints agree ({:#018x})",
        replayed.metrics.fingerprint
    );
}
