//! A live monitoring fleet: two external producers stream captures to one
//! `paralogd` supervisor over Unix-domain sockets while a watcher tails the
//! violation feed — the paper's deployment shape, where the monitored
//! machines ship their logs to a pool of lifeguard cores.
//!
//! The daemon multiplexes both sessions over ONE shared worker pool, so
//! neither session owns threads; a stalled producer parks its lanes
//! (`StreamStatus::Blocked`) without costing the other session a core.
//! At the end the daemon's fingerprints are checked against in-process
//! replays of the same captures. Run with `cargo run --release --example
//! live_fleet` (Unix only: the transport is a Unix-domain socket).

#[cfg(not(unix))]
fn main() {
    eprintln!("live_fleet needs Unix-domain sockets; skipping on this platform");
}

#[cfg(unix)]
fn main() {
    use paralog::core::{MonitorConfig, MonitoringMode, Platform};
    use paralog::daemon::client::{Control, Producer};
    use paralog::daemon::proto::AttachRequest;
    use paralog::daemon::supervisor::{Daemon, DaemonConfig};
    use paralog::events::codec::encode;
    use paralog::lifeguards::LifeguardKind;
    use paralog::workloads::{Benchmark, WorkloadSpec};

    // 1. Capture two workloads the "applications" will stream live.
    let capture = |bench, threads, kind| {
        let workload = WorkloadSpec::benchmark(bench, threads).scale(0.1).build();
        let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, kind);
        cfg.collect_streams = true;
        let live = Platform::run(&workload, &cfg).metrics;
        let streams = live.streams.clone().expect("collection enabled");
        let encoded: Vec<Vec<u8>> = streams.iter().map(|s| encode(s)).collect();
        (workload, live, encoded)
    };
    let (barnes, barnes_live, barnes_wire) =
        capture(Benchmark::Barnes, 4, LifeguardKind::TaintCheck);
    let (lu, lu_live, lu_wire) = capture(Benchmark::Lu, 2, LifeguardKind::MemCheck);

    // 2. One supervisor, one shared pool.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let mut config = DaemonConfig::new(
        dir.join(format!("live-fleet-{pid}.sock")),
        dir.join(format!("live-fleet-{pid}.ctl")),
    );
    config.workers = 4;
    let daemon = Daemon::spawn(config).expect("daemon spawns");
    println!(
        "paralogd up: data={} control={} workers={}",
        daemon.data_socket().display(),
        daemon.control_socket().display(),
        daemon.worker_count()
    );

    // 3. Two producers attach and stream concurrently, chunked small so
    //    the daemon genuinely sees a trickle (and its readers WouldBlock).
    let feed = |name: &str,
                kind: LifeguardKind,
                workload: &paralog::workloads::Workload,
                wire: Vec<Vec<u8>>| {
        let socket = daemon.data_socket().to_path_buf();
        let threads = wire.len();
        let request = AttachRequest {
            name: name.into(),
            lifeguard: kind.name().into(),
            threads,
            tso: false,
            heap: workload.heap,
            mode: paralog::core::BackendMode::Auto,
        };
        std::thread::spawn(move || {
            let mut producer = Producer::attach(&socket, &request).expect("attach");
            let id = producer.session_id();
            producer.send_capture(&wire, 2048).expect("stream capture");
            id
        })
    };
    let barnes_feed = feed("barnes", LifeguardKind::TaintCheck, &barnes, barnes_wire);
    let lu_feed = feed("lu", LifeguardKind::MemCheck, &lu, lu_wire);
    let barnes_id = barnes_feed.join().unwrap();
    let lu_id = lu_feed.join().unwrap();

    // 4. Tail the barnes session's live feed while it drains.
    let control = daemon.control_socket().to_path_buf();
    let watcher = std::thread::spawn(move || {
        let ctl = Control::connect(&control).expect("watch connect");
        let mut lines = 0usize;
        ctl.watch(barnes_id, |line| {
            if lines < 3 {
                println!("  watch[barnes] {line}");
            }
            lines += 1;
        })
        .expect("watch stream");
        lines
    });
    println!("watch[barnes] saw {} feed lines", watcher.join().unwrap());

    let mut ctl = Control::connect(daemon.control_socket()).expect("ctl connect");
    for line in ctl.list().expect("LIST") {
        println!("  list: {line}");
    }

    // 5. Shut down and check the fleet against the in-process baselines.
    let reports = daemon.shutdown();
    for report in &reports {
        let metrics = report.result.as_ref().expect("session drained clean");
        let (live, tag) = if report.id == barnes_id {
            (&barnes_live, "barnes")
        } else {
            assert_eq!(report.id, lu_id);
            (&lu_live, "lu")
        };
        assert_eq!(metrics.fingerprint, live.fingerprint, "{tag} fingerprint");
        println!(
            "{tag}: {} records, {} violations, fingerprint {:016x} == in-process",
            metrics.records,
            metrics.violations.len(),
            metrics.fingerprint
        );
    }
    println!(
        "fleet of {} sessions verified against in-process replay",
        reports.len()
    );
}
