//! Quickstart: monitor a multithreaded workload with TaintCheck under all
//! three execution schemes and compare their cost.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paralog::core::{MonitorConfig, MonitoringMode, Platform};
use paralog::lifeguards::LifeguardKind;
use paralog::workloads::{Benchmark, WorkloadSpec};

fn main() {
    // A 4-thread BARNES-like workload (pointer chasing, irregular sharing).
    let workload = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
        .scale(0.3)
        .build();
    println!(
        "workload: {} — {} threads, {} operations ({} high-level events)",
        workload.name,
        workload.thread_count(),
        workload.total_ops(),
        workload.high_level_ops()
    );

    // 1. The application alone (4 threads on 8 cores).
    let base = Platform::run(
        &workload,
        &MonitorConfig::new(MonitoringMode::None, LifeguardKind::TaintCheck),
    );
    let base_cycles = base.metrics.execution_cycles();
    println!("\nno monitoring        : {base_cycles:>12} cycles");

    // 2. The state of the art: all threads timesliced onto one core, one
    //    sequential lifeguard on a second core.
    let ts = Platform::run(
        &workload,
        &MonitorConfig::new(MonitoringMode::Timesliced, LifeguardKind::TaintCheck),
    );
    println!(
        "timesliced monitoring: {:>12} cycles  ({:.2}x slowdown)",
        ts.metrics.execution_cycles(),
        ts.metrics.slowdown_vs(base_cycles)
    );

    // 3. ParaLog: one lifeguard thread per application thread, with
    //    Inheritance Tracking, Idempotent Filters and the Metadata TLB.
    let par = Platform::run(
        &workload,
        &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
    );
    println!(
        "parallel monitoring  : {:>12} cycles  ({:.2}x slowdown, {:.1}x faster than timesliced)",
        par.metrics.execution_cycles(),
        par.metrics.slowdown_vs(base_cycles),
        ts.metrics.execution_cycles() as f64 / par.metrics.execution_cycles() as f64
    );

    // What the machinery did.
    let m = &par.metrics;
    println!("\nplatform activity:");
    println!("  event records        : {}", m.records);
    println!(
        "  delivered metadata ops: {} (IT absorbed {})",
        m.delivered_ops, m.it.absorbed
    );
    println!(
        "  dependence arcs      : {} recorded, {} eliminated by reduction",
        m.capture.recorded, m.capture.reduced
    );
    println!("  dependence stalls    : {}", m.dependence_stalls);
    println!("  ConflictAlerts       : {}", m.ca_broadcasts);
    println!("  violations           : {}", m.violations.len());
}
