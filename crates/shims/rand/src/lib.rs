//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this path crate provides
//! the exact API subset the workspace uses from crates.io `rand` 0.8:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, `gen_bool`. The generator is xoshiro256++ — not the
//! ChaCha12 of upstream `StdRng`, so seeds produce *different* (but equally
//! deterministic) streams. Nothing in the workspace depends on the exact
//! stream, only on determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// A generator seedable from integers (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output
/// (stand-in for `rand::distributions::Standard` sampling).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Integer types sampleable from half-open bounds (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy {
    /// Widens to i128 (covers every primitive integer losslessly).
    fn to_i128(self) -> i128;
    /// Uniform draw from `[lo, hi)` expressed in i128 space.
    fn sample_between<R: Rng + ?Sized>(lo: i128, hi: i128, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_i128(self) -> i128 {
                self as i128
            }
            fn sample_between<R: Rng + ?Sized>(lo: i128, hi: i128, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges over `T` usable with [`Rng::gen_range`]; mirrors upstream's
/// two-parameter shape so integer literals infer from the expected output.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start.to_i128(), self.end.to_i128(), rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start().to_i128(), self.end().to_i128() + 1, rng)
    }
}

/// The user-facing generator trait (subset of `rand::Rng`).
pub trait Rng {
    /// Raw 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(2..=4);
            assert!((2..=4).contains(&w));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
