//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy/macro surface the workspace's property tests use —
//! [`prelude::Strategy`] with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], `prop_oneof!`, `proptest!`,
//! `prop_assert!`/`prop_assert_eq!` — implemented as plain seeded random
//! generation *without shrinking*. Failing cases report their case number;
//! reproduction is deterministic because every test derives its RNG seed
//! from its own module path.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! The deterministic generator driving all strategies.

    /// xoshiro256++ with a per-test seed derived from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds from an arbitrary name (FNV-1a), deterministically.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self::from_seed(h)
        }

        /// Seeds from a 64-bit value via SplitMix64 expansion.
        pub fn from_seed(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Raw 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw below `n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Error type carried by `prop_assert!` failures and `?` propagation.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A test-case failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// Alias matching upstream's `TestCaseError::Fail` constructor use.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Run-control knobs (subset of upstream `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values (upstream `Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Derives a second strategy from each produced value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { strategy: self, f }
    }

    /// Type-erases the strategy (for heterogeneous `prop_oneof!` arms).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.strategy.generate(rng)).generate(rng)
    }
}

/// A strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Builds from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total > 0,
            "prop_oneof! needs at least one positively weighted arm"
        );
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum covered above")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits give a uniform draw over [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait ArbitraryValue: Sized {
    /// Draws one value uniformly over the domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// See [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies (subset of upstream `proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The customary glob import, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

/// Weighted (or unweighted) random choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts inside a property, failing the current case (not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {:?} != {:?} ({})",
                    l,
                    r,
                    format!($($fmt)+)
                )
            }
        }
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: both sides equal {:?}", l)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: both sides equal {:?} ({})",
                    l,
                    format!($($fmt)+)
                )
            }
        }
    };
}

/// Declares property tests: each `fn name(binding in strategy, ...)` becomes
/// a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); ) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut proptest_rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for proptest_case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)*
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} case {}/{} failed: {}",
                        stringify!($name), proptest_case + 1, config.cases, e);
                }
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("t");
        let s = (0u64..10, 5u8..=7, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((5..=7).contains(&b));
        }
    }

    #[test]
    fn oneof_respects_zero_weight_absence() {
        let mut rng = crate::test_runner::TestRng::from_name("t2");
        let s = prop_oneof![1 => Just(1u8), 1 => Just(2u8)];
        for _ in 0..100 {
            assert!(matches!(s.generate(&mut rng), 1 | 2));
        }
    }

    #[test]
    fn vec_strategy_length_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("t3");
        let s = crate::collection::vec(0u8..4, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0u32..100, flips in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(flips.len(), flips.len());
        }
    }
}
