//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/type surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`Throughput`], [`black_box`], `criterion_group!`, `criterion_main!` —
//! backed by a small median-of-samples timer instead of criterion's full
//! statistical machinery. Results print as `name ... median ns/iter` lines,
//! so `cargo bench` output stays grep-able.
//!
//! Two environment variables serve CI's bench smoke job:
//!
//! * `PARALOG_BENCH_QUICK` (non-empty, not `0`) — quick profile: a much
//!   smaller per-benchmark time budget and at most 3 samples, so a full
//!   bench binary finishes in seconds while still producing real numbers;
//! * `PARALOG_BENCH_JSON=<path>` — append one JSON object per finished
//!   benchmark (`{"name":…,"median_ns":…}` plus the declared throughput)
//!   to `<path>`, JSON-lines style so concurrent bench binaries of one
//!   `cargo bench` invocation can share a results file.

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget per benchmark (split across samples).
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(400);

/// Quick-profile budget (`PARALOG_BENCH_QUICK`).
const QUICK_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// Whether the quick profile is active.
fn quick() -> bool {
    std::env::var_os("PARALOG_BENCH_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// The per-benchmark time budget under the active profile.
fn target_sample_time() -> Duration {
    if quick() {
        QUICK_SAMPLE_TIME
    } else {
        TARGET_SAMPLE_TIME
    }
}

/// Caps a declared sample count under the active profile.
fn effective_sample_size(declared: usize) -> usize {
    if quick() {
        declared.min(3)
    } else {
        declared
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter display.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// The rendered name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timer handle passed to the measured closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, collecting `sample_size` timed samples of an
    /// auto-calibrated iteration batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit one sample slot. The first
        // call is discarded as warm-up (first-touch allocation, cold
        // caches), then the batch size comes from a short timed loop so a
        // single slow invocation can't collapse the batch to 1.
        let budget = target_sample_time() / self.sample_size as u32;
        black_box(f());
        let start = Instant::now();
        let mut warmup = 0u32;
        while warmup < 8 {
            black_box(f());
            warmup += 1;
            // Macro benches blow the sample budget in one call; stop early
            // so calibration doesn't dominate their wall time.
            if start.elapsed() >= budget {
                break;
            }
        }
        let one = (start.elapsed() / warmup).max(Duration::from_nanos(1));
        let iters = (budget.as_nanos() / one.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let total = start.elapsed();
            self.samples.push(total / iters as u32);
        }
    }

    fn median(&mut self) -> Duration {
        self.samples.sort_unstable();
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

/// Renders one result as a JSON-lines record for `PARALOG_BENCH_JSON`.
fn render_json(name: &str, median: Duration, throughput: Option<Throughput>) -> String {
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!(",\"elements_per_iter\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"bytes_per_iter\":{n}"),
        None => String::new(),
    };
    format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{}{rate}}}",
        median.as_nanos()
    )
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let ns = median.as_nanos();
    let rate = throughput
        .map(|t| match t {
            Throughput::Elements(n) => {
                format!("  ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Throughput::Bytes(n) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
        })
        .unwrap_or_default();
    println!("bench: {name:<60} {ns:>12} ns/iter{rate}");
    if let Some(path) = std::env::var_os("PARALOG_BENCH_JSON") {
        use std::io::Write;
        let line = render_json(name, median, throughput);
        // Appends so every bench binary of one `cargo bench` run lands in
        // the same artifact; failures are non-fatal (the bench still ran).
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(f, "{line}");
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(self.sample_size),
        };
        f(&mut b);
        let name = format!("{}/{}", self.name, id.into_id());
        report(&name, b.median(), self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(self.sample_size),
        };
        f(&mut b, input);
        let name = format!("{}/{}", self.name, id.into_id());
        report(&name, b.median(), self.throughput);
        self
    }

    /// Ends the group (upstream criterion finalizes reports here).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: effective_sample_size(10),
        };
        f(&mut b);
        report(&id.into_id(), b.median(), None);
        self
    }
}

/// Defines a group function running each target against one [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_render_and_escape() {
        let d = Duration::from_nanos(1234);
        assert_eq!(
            render_json(
                "versions_churn/flat/32",
                d,
                Some(Throughput::Elements(4096))
            ),
            "{\"name\":\"versions_churn/flat/32\",\"median_ns\":1234,\"elements_per_iter\":4096}"
        );
        assert_eq!(
            render_json("odd\"name\\", d, Some(Throughput::Bytes(7))),
            "{\"name\":\"odd\\\"name\\\\\",\"median_ns\":1234,\"bytes_per_iter\":7}"
        );
        assert_eq!(
            render_json("plain", d, None),
            "{\"name\":\"plain\",\"median_ns\":1234}"
        );
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.throughput(Throughput::Elements(1));
        let mut runs = 0u64;
        g.bench_function("id", |b| b.iter(|| runs = black_box(runs + 1)));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert!(runs > 0);
    }
}
