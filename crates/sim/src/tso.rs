//! Per-core store buffers for Total Store Ordering (§5.5).
//!
//! Under TSO, a store retires into its core's store buffer and becomes
//! globally visible only when it *drains*. Loads may bypass buffered stores
//! (reading their own core's youngest pending value via forwarding), which is
//! the sole source of SC violations TSO admits — and the reason coherence
//! arcs alone can form cycles (Figure 5).

use paralog_events::{blocks_of, Addr, BlockId, Rid};
use std::collections::VecDeque;

/// One buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingStore {
    /// Record id of the store instruction.
    pub rid: Rid,
    /// Address written.
    pub addr: Addr,
    /// Bytes written.
    pub size: u64,
    /// Simulation time at which the store drains to the cache.
    pub drain_at: u64,
    /// Highest record id of a load that forwarded from this store; the
    /// drained line's access timestamp must cover it so remote writers
    /// order against the forwarded reads too (§5.5).
    pub last_forward: Rid,
}

/// A FIFO store buffer with bounded capacity.
#[derive(Debug, Clone, Default)]
pub struct StoreBuffer {
    entries: VecDeque<PendingStore>,
    capacity: usize,
    drain_latency: u64,
    total_buffered: u64,
    total_forwards: u64,
}

impl StoreBuffer {
    /// Creates a buffer with `capacity` entries and the given drain latency.
    pub fn new(capacity: usize, drain_latency: u64) -> Self {
        StoreBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            drain_latency,
            total_buffered: 0,
            total_forwards: 0,
        }
    }

    /// Whether the buffer has no pending stores.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a new store would not fit.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Number of pending stores.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Record id of the oldest pending store, if any.
    pub fn oldest_rid(&self) -> Option<Rid> {
        self.entries.front().map(|s| s.rid)
    }

    /// Stores ever buffered.
    pub fn total_buffered(&self) -> u64 {
        self.total_buffered
    }

    /// Loads ever satisfied by forwarding.
    pub fn total_forwards(&self) -> u64 {
        self.total_forwards
    }

    /// Buffers a store issued at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full; callers must drain first (the core
    /// stalls until the head entry's drain deadline).
    pub fn push(&mut self, rid: Rid, addr: Addr, size: u64, now: u64) {
        assert!(!self.is_full(), "store buffer overflow; drain first");
        self.total_buffered += 1;
        self.entries.push_back(PendingStore {
            rid,
            addr,
            size,
            drain_at: now + self.drain_latency,
            last_forward: Rid::ZERO,
        });
    }

    /// Removes and returns every store whose drain deadline has passed
    /// (stores drain strictly in FIFO order).
    pub fn drain_ready(&mut self, now: u64) -> Vec<PendingStore> {
        let mut out = Vec::new();
        while let Some(head) = self.entries.front() {
            if head.drain_at <= now {
                out.push(self.entries.pop_front().expect("head exists"));
            } else {
                break;
            }
        }
        out
    }

    /// Unconditionally removes and returns all pending stores (fence/RMW
    /// semantics: x86 locked operations drain the buffer).
    pub fn drain_all(&mut self) -> Vec<PendingStore> {
        self.entries.drain(..).collect()
    }

    /// Forces the oldest store out ahead of its deadline (a full buffer
    /// retires its head to make room — stores may always become visible
    /// earlier than the modeled drain latency).
    pub fn force_drain_head(&mut self) -> Option<PendingStore> {
        self.entries.pop_front()
    }

    /// Time at which the head entry will drain, if any (used by a stalled
    /// core to advance its clock rather than spin).
    pub fn next_drain_at(&self) -> Option<u64> {
        self.entries.front().map(|s| s.drain_at)
    }

    /// Whether a load from `addr`/`size` can be satisfied entirely by the
    /// youngest overlapping pending store (store-to-load forwarding).
    ///
    /// Partial overlaps are *not* forwarded — the caller treats them as a
    /// forced drain, which is what real implementations do for misaligned
    /// forwarding failures.
    pub fn forwards(&mut self, addr: Addr, size: u64) -> bool {
        self.forward(addr, size, Rid::ZERO)
    }

    /// Like [`StoreBuffer::forwards`], additionally stamping the forwarding
    /// store with the load's record id for drain-time line timestamps.
    pub fn forward(&mut self, addr: Addr, size: u64, load_rid: Rid) -> bool {
        let hit = self
            .entries
            .iter_mut()
            .rev()
            .find(|s| ranges_overlap(s.addr, s.size, addr, size));
        match hit {
            Some(s) if s.addr <= addr && addr + size <= s.addr + s.size => {
                s.last_forward = s.last_forward.max(load_rid);
                self.total_forwards += 1;
                true
            }
            _ => false,
        }
    }

    /// Whether any pending store overlaps the access at all (a would-be
    /// forwarding hit *or* a partial overlap, both of which require the
    /// store to become visible before the load can read coherently).
    pub fn forwards_would_hit(&self, addr: Addr, size: u64) -> bool {
        self.entries
            .iter()
            .any(|s| ranges_overlap(s.addr, s.size, addr, size))
    }

    /// Whether any pending store overlaps the given block (used to decide
    /// whether an incoming invalidation races with buffered data).
    pub fn has_store_to_block(&self, block: BlockId) -> bool {
        self.entries
            .iter()
            .any(|s| blocks_of(s.addr, s.size).any(|b| b == block))
    }

    /// Whether there is any pending store older than `rid` — the SC-violation
    /// test for a retired load at `rid` (§5.5: the load was effectively
    /// reordered before that store).
    pub fn has_store_older_than(&self, rid: Rid) -> bool {
        self.entries.front().map(|s| s.rid < rid).unwrap_or(false)
    }
}

fn ranges_overlap(a: Addr, asz: u64, b: Addr, bsz: u64) -> bool {
    a < b + bsz && b < a + asz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_drain_by_deadline() {
        let mut sb = StoreBuffer::new(4, 10);
        sb.push(Rid(1), 0x100, 4, 0);
        sb.push(Rid(2), 0x200, 4, 5);
        assert!(sb.drain_ready(9).is_empty());
        let first = sb.drain_ready(10);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].rid, Rid(1));
        let second = sb.drain_ready(15);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].rid, Rid(2));
        assert!(sb.is_empty());
    }

    #[test]
    fn drain_is_strictly_fifo_even_when_later_ready() {
        let mut sb = StoreBuffer::new(4, 10);
        sb.push(Rid(1), 0x100, 4, 100); // drains at 110
        sb.push(Rid(2), 0x200, 4, 0); // nominally at 10, but behind rid 1
        assert!(
            sb.drain_ready(50).is_empty(),
            "younger store cannot pass older"
        );
        assert_eq!(sb.drain_ready(110).len(), 2);
    }

    #[test]
    fn forwarding_full_overlap_only() {
        let mut sb = StoreBuffer::new(4, 10);
        sb.push(Rid(1), 0x100, 8, 0);
        assert!(sb.forwards(0x100, 4));
        assert!(sb.forwards(0x104, 4));
        assert!(!sb.forwards(0x0fc, 8), "partial overlap does not forward");
        assert!(!sb.forwards(0x200, 4));
        assert_eq!(sb.total_forwards(), 2);
    }

    #[test]
    fn youngest_store_wins_forwarding() {
        let mut sb = StoreBuffer::new(4, 10);
        sb.push(Rid(1), 0x100, 4, 0);
        sb.push(Rid(2), 0x100, 2, 0);
        // Load of 4 bytes overlaps youngest (2-byte) store only partially.
        assert!(!sb.forwards(0x100, 4));
        assert!(sb.forwards(0x100, 2));
    }

    #[test]
    fn sc_violation_predicate() {
        let mut sb = StoreBuffer::new(4, 10);
        assert!(!sb.has_store_older_than(Rid(5)));
        sb.push(Rid(3), 0x100, 4, 0);
        assert!(
            sb.has_store_older_than(Rid(5)),
            "load at 5 bypassed store at 3"
        );
        assert!(!sb.has_store_older_than(Rid(2)));
    }

    #[test]
    fn block_overlap_query() {
        let mut sb = StoreBuffer::new(4, 10);
        sb.push(Rid(1), 0x13c, 8, 0); // spans blocks 4 and 5
        assert!(sb.has_store_to_block(BlockId(4)));
        assert!(sb.has_store_to_block(BlockId(5)));
        assert!(!sb.has_store_to_block(BlockId(6)));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut sb = StoreBuffer::new(1, 10);
        sb.push(Rid(1), 0x100, 4, 0);
        sb.push(Rid(2), 0x104, 4, 0);
    }

    #[test]
    fn drain_all_for_fences() {
        let mut sb = StoreBuffer::new(4, 1000);
        sb.push(Rid(1), 0x100, 4, 0);
        sb.push(Rid(2), 0x104, 4, 0);
        assert_eq!(sb.drain_all().len(), 2);
        assert!(sb.is_empty());
        assert_eq!(sb.next_drain_at(), None);
    }
}
