//! Set-associative cache tag arrays with LRU replacement.
//!
//! The simulator tracks tags and per-line bookkeeping only — the monitored
//! program's data values are irrelevant to lifeguard dataflow, so no data
//! array exists. Each L1 line carries the FDR-style per-block timestamps
//! (§5.1): the record id of the owning core's last access and last write,
//! which get piggy-backed on coherence acknowledgements.

use crate::config::CacheConfig;
use paralog_events::{BlockId, Rid};

/// Per-line bookkeeping carried by L1 lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LineInfo {
    /// Record id of this core's most recent access to the line.
    pub last_access: Rid,
    /// Record id of this core's most recent write to the line.
    pub last_write: Rid,
    /// Whether the line holds modifications not yet written back.
    pub dirty: bool,
}

#[derive(Debug, Clone)]
struct Line {
    block: BlockId,
    lru: u64,
    info: LineInfo,
}

/// Hit/miss/eviction counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that found their block resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines displaced by fills.
    pub evictions: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; zero when no accesses happened.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A set-associative, LRU, tag-only cache.
#[derive(Debug)]
pub struct SetAssocCache {
    sets: Vec<Vec<Line>>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two (index math relies on
    /// masking) or the geometry is degenerate.
    pub fn new(config: &CacheConfig) -> Self {
        let sets = config.sets();
        assert!(
            sets.is_power_of_two(),
            "set count must be a power of two, got {sets}"
        );
        SetAssocCache {
            sets: (0..sets)
                .map(|_| Vec::with_capacity(config.assoc))
                .collect(),
            assoc: config.assoc,
            set_mask: sets as u64 - 1,
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    fn set_of(&self, block: BlockId) -> usize {
        (block.0 & self.set_mask) as usize
    }

    /// Counter statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `block` is resident (does not touch LRU or stats).
    pub fn contains(&self, block: BlockId) -> bool {
        let set = self.set_of(block);
        self.sets[set].iter().any(|l| l.block == block)
    }

    /// Looks up `block`, updating LRU and hit/miss counters. Returns the
    /// line's bookkeeping for in-place update on a hit.
    pub fn probe(&mut self, block: BlockId) -> Option<&mut LineInfo> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(block);
        let found = self.sets[set].iter_mut().find(|l| l.block == block);
        match found {
            Some(line) => {
                self.stats.hits += 1;
                line.lru = tick;
                Some(&mut line.info)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inspects a resident line without touching LRU or counters.
    pub fn peek(&self, block: BlockId) -> Option<&LineInfo> {
        let set = self.set_of(block);
        self.sets[set]
            .iter()
            .find(|l| l.block == block)
            .map(|l| &l.info)
    }

    /// Inserts `block` (after a miss), evicting the LRU line of its set if
    /// full. Returns the displaced `(block, info)` if an eviction happened.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the block is already resident (callers must
    /// `probe` first).
    pub fn insert(&mut self, block: BlockId, info: LineInfo) -> Option<(BlockId, LineInfo)> {
        debug_assert!(!self.contains(block), "insert of resident block {block}");
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.assoc;
        let set_idx = self.set_of(block);
        let set = &mut self.sets[set_idx];
        let mut evicted = None;
        if set.len() >= assoc {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("non-empty set");
            let victim = set.swap_remove(victim_idx);
            self.stats.evictions += 1;
            evicted = Some((victim.block, victim.info));
        }
        set.push(Line {
            block,
            lru: tick,
            info,
        });
        evicted
    }

    /// Removes `block` if resident, returning its bookkeeping.
    pub fn invalidate(&mut self, block: BlockId) -> Option<LineInfo> {
        let set = self.set_of(block);
        let idx = self.sets[set].iter().position(|l| l.block == block)?;
        Some(self.sets[set].swap_remove(idx).info)
    }

    /// Mutable access to a resident line without touching LRU or counters.
    pub fn peek_mut(&mut self, block: BlockId) -> Option<&mut LineInfo> {
        let set = self.set_of(block);
        self.sets[set]
            .iter_mut()
            .find(|l| l.block == block)
            .map(|l| &mut l.info)
    }

    /// Number of resident lines (test/debug aid).
    pub fn resident(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways, 64B lines.
        SetAssocCache::new(&CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            latency: 1,
        })
    }

    #[test]
    fn probe_miss_then_hit() {
        let mut c = tiny();
        assert!(c.probe(BlockId(1)).is_none());
        c.insert(BlockId(1), LineInfo::default());
        assert!(c.probe(BlockId(1)).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_coldest_way() {
        let mut c = tiny();
        // Blocks 0, 4, 8 all map to set 0 (4 sets).
        c.insert(BlockId(0), LineInfo::default());
        c.insert(BlockId(4), LineInfo::default());
        // Touch 0 so 4 becomes LRU.
        assert!(c.probe(BlockId(0)).is_some());
        let evicted = c.insert(BlockId(8), LineInfo::default());
        assert_eq!(evicted.map(|(b, _)| b), Some(BlockId(4)));
        assert!(c.contains(BlockId(0)));
        assert!(c.contains(BlockId(8)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_returns_info() {
        let mut c = tiny();
        let info = LineInfo {
            last_access: Rid(7),
            last_write: Rid(5),
            dirty: true,
        };
        c.insert(BlockId(3), info);
        assert_eq!(c.invalidate(BlockId(3)), Some(info));
        assert_eq!(c.invalidate(BlockId(3)), None);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_stats() {
        let mut c = tiny();
        c.insert(BlockId(0), LineInfo::default());
        c.insert(BlockId(4), LineInfo::default());
        let before = c.stats();
        assert!(c.peek(BlockId(4)).is_some());
        assert_eq!(c.stats(), before);
        // Peek must not have promoted 4: probing 4... instead verify that 0
        // stays LRU (it was inserted first and never re-touched).
        let evicted = c.insert(BlockId(8), LineInfo::default());
        assert_eq!(evicted.map(|(b, _)| b), Some(BlockId(0)));
    }

    #[test]
    fn sets_partition_blocks() {
        let mut c = tiny();
        // 4 sets: blocks 0..8 fill without conflict except same-set pairs.
        for b in 0..8 {
            c.insert(BlockId(b), LineInfo::default());
        }
        assert_eq!(c.resident(), 8);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn miss_rate_math() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.probe(BlockId(0));
        c.insert(BlockId(0), LineInfo::default());
        c.probe(BlockId(0));
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(&CacheConfig {
            size_bytes: 192,
            line_bytes: 64,
            assoc: 1,
            latency: 1,
        });
    }
}
