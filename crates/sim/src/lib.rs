//! CMP hardware substrate for the ParaLog platform.
//!
//! The paper evaluates ParaLog on a Simics-simulated 16-core CMP (Table 1).
//! This crate is our stand-in for that substrate: a deterministic,
//! cycle-accounted model of
//!
//! * private per-core L1 caches and a shared, inclusive L2 ([`cache`]),
//! * an invalidation-based coherence directory whose acknowledgements carry
//!   FDR-style `(thread, record-id)` timestamps ([`coherence`]),
//! * TSO store buffers with store-to-load forwarding and SC-violation
//!   detection ([`tso`]),
//! * the application heap ([`heap`]) and synchronization ([`sync`]),
//! * and the discrete-event scheduler that keeps it all deterministic
//!   ([`des`]).
//!
//! # Example
//!
//! ```rust
//! use paralog_sim::{MachineConfig, MemorySystem};
//! use paralog_events::{AccessKind, ArcKind, Rid};
//!
//! let mut mem = MemorySystem::new(&MachineConfig::paper(4));
//! mem.access(0, Rid(5), 0x1000, 4, AccessKind::Write);
//! // Core 1 reads core 0's dirty line: a RAW dependence surfaces.
//! let result = mem.access(1, Rid(1), 0x1000, 4, AccessKind::Read);
//! assert_eq!(result.touches[0].kind, ArcKind::Raw);
//! assert_eq!(result.touches[0].block_rid, Rid(5));
//! ```

#![warn(missing_debug_implementations)]

pub mod cache;
pub mod coherence;
pub mod config;
pub mod des;
pub mod heap;
pub mod sync;
pub mod tso;

pub use cache::{CacheStats, LineInfo, SetAssocCache};
pub use coherence::{AccessResult, CoherenceStats, MemorySystem, RemoteTouch};
pub use config::{CacheConfig, MachineConfig, MemoryModel, TsoConfig};
pub use des::Scheduler;
pub use heap::{Heap, HeapError, HEAP_BASE, HEAP_SIZE};
pub use sync::{
    barrier_flag, barrier_slot, lock_word, BarrierOutcome, BarrierTable, LockAttempt, LockTable,
};
pub use tso::{PendingStore, StoreBuffer};
