//! Machine configuration, mirroring Table 1 of the paper.
//!
//! The evaluation models 4/8/16-core CMPs at 1 GHz with private split L1
//! caches, a shared inclusive L2 sized with the core count, and 90-cycle main
//! memory. [`MachineConfig::paper`] reproduces those parameters; everything is
//! overridable for sensitivity studies.

use std::fmt;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (64 throughout the paper).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide into at least one set.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        let sets = lines as usize / self.assoc;
        assert!(sets > 0, "cache too small for its associativity");
        sets
    }

    /// The paper's private L1-D: 64 KB, 64 B lines, 4-way, 2-cycle access.
    pub fn paper_l1d() -> Self {
        CacheConfig {
            size_bytes: 64 * 1024,
            line_bytes: 64,
            assoc: 4,
            latency: 2,
        }
    }

    /// The paper's shared L2 for a machine with `cores` cores: 2 MB at 4
    /// cores, 4 MB at 8, 8 MB at 16; 64 B lines, 8-way, 6-cycle access.
    pub fn paper_l2(cores: usize) -> Self {
        let size_mb = match cores {
            0..=4 => 2,
            5..=8 => 4,
            _ => 8,
        };
        CacheConfig {
            size_bytes: size_mb * 1024 * 1024,
            line_bytes: 64,
            assoc: 8,
            latency: 6,
        }
    }
}

/// Store-buffer parameters for Total Store Ordering mode (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TsoConfig {
    /// Maximum buffered stores per core; a full buffer stalls the core.
    pub entries: usize,
    /// Cycles a store sits in the buffer before draining to the cache.
    pub drain_latency: u64,
}

impl Default for TsoConfig {
    fn default() -> Self {
        TsoConfig {
            entries: 8,
            drain_latency: 30,
        }
    }
}

/// Memory consistency model of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoryModel {
    /// Sequential consistency: stores become visible at retirement.
    #[default]
    Sc,
    /// Total Store Ordering with the given store-buffer parameters.
    Tso(TsoConfig),
}

/// Full machine description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (application + lifeguard cores combined).
    pub cores: usize,
    /// Private per-core L1 data cache.
    pub l1d: CacheConfig,
    /// Shared, inclusive L2.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles (Table 1: 90).
    pub mem_latency: u64,
    /// Extra cycles charged when a miss requires remote invalidation or a
    /// dirty-line downgrade.
    pub coherence_latency: u64,
    /// Cycles an entity waits before re-testing a blocked resource
    /// (log-buffer full/empty, unmet dependence, contended lock).
    pub poll_quantum: u64,
    /// Consistency model.
    pub model: MemoryModel,
}

impl MachineConfig {
    /// The paper's machine for `cores` total cores (Table 1), under SC.
    pub fn paper(cores: usize) -> Self {
        MachineConfig {
            cores,
            l1d: CacheConfig::paper_l1d(),
            l2: CacheConfig::paper_l2(cores),
            mem_latency: 90,
            coherence_latency: 4,
            poll_quantum: 20,
            model: MemoryModel::Sc,
        }
    }

    /// Same machine under TSO with default store buffers.
    pub fn paper_tso(cores: usize) -> Self {
        MachineConfig {
            model: MemoryModel::Tso(TsoConfig::default()),
            ..Self::paper(cores)
        }
    }

    /// Whether the machine runs under TSO.
    pub fn is_tso(&self) -> bool {
        matches!(self.model, MemoryModel::Tso(_))
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper(16)
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cores           : {}", self.cores)?;
        writeln!(
            f,
            "private L1-D    : {}KB, {}B line, {}-way, {}-cycle",
            self.l1d.size_bytes / 1024,
            self.l1d.line_bytes,
            self.l1d.assoc,
            self.l1d.latency
        )?;
        writeln!(
            f,
            "shared L2       : {}MB, {}B line, {}-way, {}-cycle",
            self.l2.size_bytes / (1024 * 1024),
            self.l2.line_bytes,
            self.l2.assoc,
            self.l2.latency
        )?;
        writeln!(f, "main memory     : {}-cycle latency", self.mem_latency)?;
        match self.model {
            MemoryModel::Sc => writeln!(f, "consistency     : SC"),
            MemoryModel::Tso(t) => writeln!(
                f,
                "consistency     : TSO ({} entries, {}-cycle drain)",
                t.entries, t.drain_latency
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l2_scales_with_cores() {
        assert_eq!(CacheConfig::paper_l2(4).size_bytes, 2 * 1024 * 1024);
        assert_eq!(CacheConfig::paper_l2(8).size_bytes, 4 * 1024 * 1024);
        assert_eq!(CacheConfig::paper_l2(16).size_bytes, 8 * 1024 * 1024);
    }

    #[test]
    fn set_math() {
        let l1 = CacheConfig::paper_l1d();
        assert_eq!(l1.sets(), 64 * 1024 / 64 / 4);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_geometry_panics() {
        let c = CacheConfig {
            size_bytes: 64,
            line_bytes: 64,
            assoc: 2,
            latency: 1,
        };
        let _ = c.sets();
    }

    #[test]
    fn tso_helpers() {
        assert!(!MachineConfig::paper(8).is_tso());
        assert!(MachineConfig::paper_tso(8).is_tso());
    }

    #[test]
    fn display_covers_both_models() {
        let sc = MachineConfig::paper(8).to_string();
        assert!(sc.contains("SC"));
        let tso = MachineConfig::paper_tso(8).to_string();
        assert!(tso.contains("TSO"));
    }
}
