//! A deterministic heap model for the monitored application.
//!
//! Workload generators resolve `malloc`/`free` to concrete address ranges at
//! generation time so instruction streams are static; the platform replays
//! the same ranges at run time through ConflictAlert events. The allocator is
//! a size-classed free-list over a bump region — deterministic, and with the
//! reuse behaviour (freed blocks handed back out) that makes AddrCheck's
//! logical races real: a stale pointer can dereference a *re-allocated* or
//! still-free range.

use paralog_events::{Addr, AddrRange};
use std::collections::BTreeMap;

/// Default base of the modeled heap.
pub const HEAP_BASE: Addr = 0x1000_0000;

/// Default size of the modeled heap region.
pub const HEAP_SIZE: u64 = 0x1000_0000;

/// Errors returned by [`Heap`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// The bump region is exhausted and no free block fits.
    OutOfMemory,
    /// `free` of a range that is not an allocated block.
    InvalidFree(Addr),
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory => f.write_str("heap exhausted"),
            HeapError::InvalidFree(a) => write!(f, "free of non-allocated address {a:#x}"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Deterministic size-classed allocator.
#[derive(Debug, Clone)]
pub struct Heap {
    region: AddrRange,
    bump: Addr,
    /// Free blocks by rounded size class.
    free: BTreeMap<u64, Vec<Addr>>,
    /// Live allocations: base → rounded size.
    live: BTreeMap<Addr, u64>,
    allocations: u64,
    frees: u64,
}

impl Heap {
    /// Creates a heap over the default region.
    pub fn new() -> Self {
        Heap::with_region(AddrRange::new(HEAP_BASE, HEAP_SIZE))
    }

    /// Creates a heap over a caller-chosen region.
    pub fn with_region(region: AddrRange) -> Self {
        Heap {
            region,
            bump: region.start,
            free: BTreeMap::new(),
            live: BTreeMap::new(),
            allocations: 0,
            frees: 0,
        }
    }

    /// The heap region (used by lifeguards to restrict checks to the heap).
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Total successful allocations so far.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Total successful frees so far.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Live allocation count.
    pub fn live(&self) -> usize {
        self.live.len()
    }

    fn class_of(size: u64) -> u64 {
        size.max(16).next_power_of_two()
    }

    /// Allocates `size` bytes, 16-byte aligned.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] when the region is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<AddrRange, HeapError> {
        let class = Self::class_of(size);
        let base = if let Some(list) = self.free.get_mut(&class) {
            let base = list.pop().expect("free lists are never left empty");
            if list.is_empty() {
                self.free.remove(&class);
            }
            base
        } else {
            let base = self.bump;
            if base + class > self.region.end() {
                return Err(HeapError::OutOfMemory);
            }
            self.bump += class;
            base
        };
        self.live.insert(base, class);
        self.allocations += 1;
        Ok(AddrRange::new(base, size))
    }

    /// Releases an allocation previously returned by [`Heap::alloc`].
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::InvalidFree`] if `range.start` is not a live
    /// allocation base (double free or wild pointer).
    pub fn free(&mut self, range: AddrRange) -> Result<(), HeapError> {
        let class = self
            .live
            .remove(&range.start)
            .ok_or(HeapError::InvalidFree(range.start))?;
        self.free.entry(class).or_default().push(range.start);
        self.frees += 1;
        Ok(())
    }

    /// Whether `addr` currently falls inside a live allocation.
    pub fn is_live(&self, addr: Addr) -> bool {
        match self.live.range(..=addr).next_back() {
            Some((base, class)) => addr < base + class,
            None => false,
        }
    }
}

impl Default for Heap {
    fn default() -> Self {
        Heap::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_disjoint() {
        let mut h = Heap::new();
        let a = h.alloc(24).unwrap();
        let b = h.alloc(24).unwrap();
        assert_eq!(a.start % 16, 0);
        assert_eq!(b.start % 16, 0);
        assert!(!a.overlaps(&b));
        assert_eq!(h.live(), 2);
    }

    #[test]
    fn free_enables_reuse() {
        let mut h = Heap::new();
        let a = h.alloc(100).unwrap();
        h.free(a).unwrap();
        let b = h.alloc(100).unwrap();
        assert_eq!(a.start, b.start, "size-classed reuse is LIFO");
        assert_eq!(h.allocations(), 2);
        assert_eq!(h.frees(), 1);
    }

    #[test]
    fn double_free_detected() {
        let mut h = Heap::new();
        let a = h.alloc(8).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::InvalidFree(a.start)));
    }

    #[test]
    fn is_live_tracks_interior_pointers() {
        let mut h = Heap::new();
        let a = h.alloc(64).unwrap();
        assert!(h.is_live(a.start));
        assert!(h.is_live(a.start + 63));
        assert!(!h.is_live(a.start + 64));
        h.free(a).unwrap();
        assert!(!h.is_live(a.start));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut h = Heap::with_region(AddrRange::new(0x1000, 64));
        let a = h.alloc(32).unwrap();
        assert!(h.alloc(64).is_err());
        let _ = a;
    }

    #[test]
    fn error_display() {
        assert!(HeapError::OutOfMemory.to_string().contains("exhausted"));
        assert!(HeapError::InvalidFree(0x10).to_string().contains("0x10"));
    }
}
