//! Application-level synchronization: locks and barriers.
//!
//! ParaLog needs no special treatment of application synchronization — a
//! lock handoff is just a store (release) followed by an atomic
//! read-modify-write (acquire) on the lock word, whose coherence traffic
//! produces exactly the dependence arcs the lifeguards need. This module
//! tracks *blocking* (who owns a lock, who has reached a barrier); the
//! platform issues the corresponding memory accesses through
//! [`crate::coherence::MemorySystem`] so arcs arise naturally.
//!
//! Barriers are modeled the same way real sense-reversing barriers behave:
//! each arrival writes its slot word; the last arrival reads every slot
//! (collecting arrival→release arcs) and writes the flag word; waiters read
//! the flag (release→waiter arcs). Transitively every pre-barrier access is
//! ordered before every post-barrier access.

use paralog_events::{Addr, BarrierId, LockId};
use std::collections::HashMap;

/// Base address of the region holding lock and barrier words (kept away from
/// heap and globals so workloads never collide with it).
pub const SYNC_BASE: Addr = 0xF000_0000;

/// Address of the lock word for `lock`, one cache line apart to avoid false
/// sharing.
pub fn lock_word(lock: LockId) -> Addr {
    SYNC_BASE + u64::from(lock.0) * 64
}

/// Address of the per-thread arrival slot for a barrier.
pub fn barrier_slot(barrier: BarrierId, thread: usize) -> Addr {
    SYNC_BASE + 0x10_0000 + u64::from(barrier.0) * 64 * 64 + thread as u64 * 64
}

/// Address of the release flag word for a barrier.
pub fn barrier_flag(barrier: BarrierId) -> Addr {
    SYNC_BASE + 0x20_0000 + u64::from(barrier.0) * 64
}

/// Outcome of a lock acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockAttempt {
    /// The lock was free and is now held by the caller.
    Acquired,
    /// The lock is held by the given thread; the caller must spin.
    Contended(usize),
}

/// Lock ownership table.
#[derive(Debug, Default)]
pub struct LockTable {
    held: HashMap<LockId, usize>,
    acquisitions: u64,
    contended_attempts: u64,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Attempts to acquire `lock` for `thread`.
    pub fn acquire(&mut self, lock: LockId, thread: usize) -> LockAttempt {
        match self.held.get(&lock) {
            Some(&owner) => {
                self.contended_attempts += 1;
                LockAttempt::Contended(owner)
            }
            None => {
                self.held.insert(lock, thread);
                self.acquisitions += 1;
                LockAttempt::Acquired
            }
        }
    }

    /// Releases `lock`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` does not hold the lock — that is an application
    /// bug the workload generators never produce.
    pub fn release(&mut self, lock: LockId, thread: usize) {
        let owner = self.held.remove(&lock);
        assert_eq!(
            owner,
            Some(thread),
            "unlock of {lock:?} by non-owner {thread}"
        );
    }

    /// Current owner of `lock`, if held.
    pub fn owner(&self, lock: LockId) -> Option<usize> {
        self.held.get(&lock).copied()
    }

    /// Successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Failed (contended) attempts so far.
    pub fn contended_attempts(&self) -> u64 {
        self.contended_attempts
    }
}

/// What a thread should do after arriving at a barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierOutcome {
    /// Not everyone has arrived; wait for the release flag.
    Wait,
    /// This thread is the last arrival and must perform the release.
    Release,
}

/// State of the application's barriers.
#[derive(Debug)]
pub struct BarrierTable {
    participants: usize,
    arrived: HashMap<BarrierId, Vec<usize>>,
    generation: HashMap<BarrierId, u64>,
}

impl BarrierTable {
    /// Creates a table for `participants` threads per barrier.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        BarrierTable {
            participants,
            arrived: HashMap::new(),
            generation: HashMap::new(),
        }
    }

    /// Registers `thread`'s arrival at `barrier`.
    ///
    /// # Panics
    ///
    /// Panics on double arrival within one generation.
    pub fn arrive(&mut self, barrier: BarrierId, thread: usize) -> BarrierOutcome {
        let list = self.arrived.entry(barrier).or_default();
        assert!(
            !list.contains(&thread),
            "double arrival of {thread} at {barrier:?}"
        );
        list.push(thread);
        if list.len() == self.participants {
            BarrierOutcome::Release
        } else {
            BarrierOutcome::Wait
        }
    }

    /// Threads currently waiting at `barrier` (including the releaser until
    /// [`BarrierTable::release`] is called).
    pub fn waiting(&self, barrier: BarrierId) -> &[usize] {
        self.arrived.get(&barrier).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Completes the barrier: clears arrivals and bumps the generation.
    /// Returns the threads that were released.
    pub fn release(&mut self, barrier: BarrierId) -> Vec<usize> {
        *self.generation.entry(barrier).or_insert(0) += 1;
        self.arrived.remove(&barrier).unwrap_or_default()
    }

    /// How many times `barrier` has completed.
    pub fn generation(&self, barrier: BarrierId) -> u64 {
        self.generation.get(&barrier).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_acquire_release_cycle() {
        let mut t = LockTable::new();
        let l = LockId(1);
        assert_eq!(t.acquire(l, 0), LockAttempt::Acquired);
        assert_eq!(t.acquire(l, 1), LockAttempt::Contended(0));
        assert_eq!(t.owner(l), Some(0));
        t.release(l, 0);
        assert_eq!(t.acquire(l, 1), LockAttempt::Acquired);
        assert_eq!(t.acquisitions(), 2);
        assert_eq!(t.contended_attempts(), 1);
    }

    #[test]
    #[should_panic(expected = "non-owner")]
    fn unlock_by_non_owner_panics() {
        let mut t = LockTable::new();
        t.acquire(LockId(1), 0);
        t.release(LockId(1), 1);
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = BarrierTable::new(3);
        let id = BarrierId(0);
        assert_eq!(b.arrive(id, 0), BarrierOutcome::Wait);
        assert_eq!(b.arrive(id, 1), BarrierOutcome::Wait);
        assert_eq!(b.waiting(id), &[0, 1]);
        assert_eq!(b.arrive(id, 2), BarrierOutcome::Release);
        let released = b.release(id);
        assert_eq!(released, vec![0, 1, 2]);
        assert_eq!(b.generation(id), 1);
        assert!(b.waiting(id).is_empty());
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let mut b = BarrierTable::new(2);
        let id = BarrierId(7);
        b.arrive(id, 0);
        assert_eq!(b.arrive(id, 1), BarrierOutcome::Release);
        b.release(id);
        assert_eq!(b.arrive(id, 0), BarrierOutcome::Wait);
        assert_eq!(b.arrive(id, 1), BarrierOutcome::Release);
        b.release(id);
        assert_eq!(b.generation(id), 2);
    }

    #[test]
    fn sync_words_do_not_collide() {
        let l = lock_word(LockId(5));
        let s = barrier_slot(BarrierId(3), 7);
        let f = barrier_flag(BarrierId(3));
        assert_ne!(l / 64, s / 64);
        assert_ne!(s / 64, f / 64);
        assert_ne!(l / 64, f / 64);
        // Distinct threads get distinct cache lines.
        assert_ne!(
            barrier_slot(BarrierId(3), 0) / 64,
            barrier_slot(BarrierId(3), 1) / 64
        );
    }

    #[test]
    #[should_panic(expected = "double arrival")]
    fn double_arrival_panics() {
        let mut b = BarrierTable::new(2);
        b.arrive(BarrierId(0), 1);
        b.arrive(BarrierId(0), 1);
    }
}
