//! The shared-memory system: private L1s, shared inclusive L2, and an
//! invalidation-based (MESI-flavoured) directory that doubles as the
//! order-capturing substrate.
//!
//! Following FDR/RTR (§5.1), every L1 line carries the record id of its
//! core's last access/write; when an access by core *c* forces a coherence
//! action at a remote core *o* (invalidation or dirty downgrade), the
//! acknowledgement carries *o*'s timestamp back to *c*, where it surfaces as
//! a [`RemoteTouch`] — the raw material for dependence arcs. Silent L1
//! evictions lose the per-line timestamp; the directory keeps a conservative
//! fallback so no ordering is ever missed (arcs may only be conservative,
//! never absent).

use crate::cache::{LineInfo, SetAssocCache};
use crate::config::MachineConfig;
use paralog_events::{blocks_of, AccessKind, Addr, ArcKind, BlockId, Rid};
use std::collections::HashMap;

/// A coherence action some remote core suffered because of a local access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteTouch {
    /// The remote core whose copy was invalidated or downgraded.
    pub remote_core: usize,
    /// The block involved.
    pub block: BlockId,
    /// The conflict type (RAW: we read their dirty data; WAR: we invalidated
    /// a block they read; WAW: we invalidated a block they wrote).
    pub kind: ArcKind,
    /// FDR-style per-block timestamp: the remote core's last access (for
    /// WAR/WAW) or last write (for RAW) to the block, as carried by the
    /// coherence acknowledgement.
    pub block_rid: Rid,
    /// The remote core's last *write* to the block ([`Rid::ZERO`] if it never
    /// wrote it). Lets TSO reversal keep the write-after-write ordering even
    /// when the read-after part is versioned away (§5.5).
    pub block_write_rid: Rid,
    /// The remote core's *current* retirement counter — the conservative
    /// timestamp used by the reduced-hardware capture alternative (§5.1).
    pub core_rid: Rid,
}

/// Result of one memory access through the hierarchy.
#[derive(Debug, Clone, Default)]
pub struct AccessResult {
    /// Cycles the access takes.
    pub latency: u64,
    /// Remote coherence actions the access caused.
    pub touches: Vec<RemoteTouch>,
}

/// Directory state for one block.
#[derive(Debug, Clone, Default)]
struct BlockDir {
    /// Sharer cores and the rid of their last directory-visible read.
    readers: Vec<(usize, Rid)>,
    /// Owning core (Modified) and the rid of its last directory-visible write.
    writer: Option<(usize, Rid)>,
    /// The block's most recent writer ever, kept after downgrades: FDR
    /// attaches the write timestamp to the data, so *every* new reader —
    /// not just the one that forced the downgrade — receives the RAW
    /// ordering when it pulls the block in.
    last_writer: Option<(usize, Rid)>,
}

/// Per-core counters of coherence activity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoherenceStats {
    /// Invalidations this core's accesses sent to remote L1s.
    pub invalidations_caused: u64,
    /// Dirty-line downgrades this core's reads forced.
    pub downgrades_caused: u64,
    /// Invalidations this core's L1 suffered.
    pub invalidations_suffered: u64,
}

/// The full memory system of the simulated CMP.
#[derive(Debug)]
pub struct MemorySystem {
    l1: Vec<SetAssocCache>,
    l2: SetAssocCache,
    dir: HashMap<BlockId, BlockDir>,
    /// Latest retirement counter per core, used for the conservative capture
    /// policy and for directory fallback timestamps.
    core_rid: Vec<Rid>,
    stats: Vec<CoherenceStats>,
    config: MachineConfig,
}

impl MemorySystem {
    /// Builds the hierarchy for `config`.
    pub fn new(config: &MachineConfig) -> Self {
        MemorySystem {
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(&config.l1d))
                .collect(),
            l2: SetAssocCache::new(&config.l2),
            dir: HashMap::new(),
            core_rid: vec![Rid::ZERO; config.cores],
            stats: vec![CoherenceStats::default(); config.cores],
            config: *config,
        }
    }

    /// The machine configuration this system models.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Publishes core `c`'s current retirement counter (called by the core at
    /// every retirement; feeds the conservative capture policy).
    pub fn set_core_rid(&mut self, core: usize, rid: Rid) {
        self.core_rid[core] = rid;
    }

    /// L1 statistics for `core`.
    pub fn l1_stats(&self, core: usize) -> crate::cache::CacheStats {
        self.l1[core].stats()
    }

    /// Shared L2 statistics.
    pub fn l2_stats(&self) -> crate::cache::CacheStats {
        self.l2.stats()
    }

    /// Coherence statistics for `core`.
    pub fn coherence_stats(&self, core: usize) -> CoherenceStats {
        self.stats[core]
    }

    /// Performs a memory access by `core` for record `rid`, covering every
    /// block the access spans.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(
        &mut self,
        core: usize,
        rid: Rid,
        addr: Addr,
        size: u64,
        kind: AccessKind,
    ) -> AccessResult {
        assert!(core < self.l1.len(), "core {core} out of range");
        let mut result = AccessResult::default();
        for block in blocks_of(addr, size) {
            self.access_block(core, rid, block, kind, &mut result);
        }
        result
    }

    fn access_block(
        &mut self,
        core: usize,
        rid: Rid,
        block: BlockId,
        kind: AccessKind,
        result: &mut AccessResult,
    ) {
        let writes = kind.writes();
        let reads = kind.reads();

        // --- Directory actions & remote touches -------------------------
        let dir = self.dir.entry(block).or_default();
        let mut needs_remote = false;

        if writes {
            // Collect WAR touches from remote sharers and a WAW/RAW touch
            // from a remote owner, then invalidate all remote copies.
            //
            // Timestamps are monotone: under TSO a store *drains* with a rid
            // older than reads the same core retired meanwhile, so every
            // update below takes the maximum of old and new rids.
            let readers = std::mem::take(&mut dir.readers);
            let writer = dir.writer.take();
            // The core's own reader entry survives its write (its rid may be
            // a younger load that must stay visible to later invalidation
            // acks); writer rids stay write-only so WAW arcs follow the
            // total drain order.
            let mut own_reads = Rid::ZERO;
            let mut touched = [false; 64];
            for (o, dir_rid) in &readers {
                if *o == core {
                    own_reads = own_reads.max(*dir_rid);
                    continue;
                }
                needs_remote = true;
                touched[*o] = true;
                let line = self.l1[*o].invalidate(block);
                let block_rid = line
                    .map(|l| l.last_access)
                    .unwrap_or(*dir_rid)
                    .max(*dir_rid);
                let mut block_write_rid = line.map(|l| l.last_write).unwrap_or(Rid::ZERO);
                if let Some((w, wrid)) = writer {
                    if w == *o {
                        block_write_rid = block_write_rid.max(wrid);
                    }
                }
                self.stats[core].invalidations_caused += 1;
                self.stats[*o].invalidations_suffered += 1;
                result.touches.push(RemoteTouch {
                    remote_core: *o,
                    block,
                    kind: ArcKind::War,
                    block_rid,
                    block_write_rid,
                    core_rid: self.core_rid[*o],
                });
            }
            if let Some((o, dir_rid)) = writer {
                // A core that is both owner and sharer was already touched
                // via the reader path; its `last_access` timestamp covers the
                // write as well.
                if o != core && !touched[o] {
                    needs_remote = true;
                    let line = self.l1[o].invalidate(block);
                    let block_rid = line.map(|l| l.last_access).unwrap_or(dir_rid).max(dir_rid);
                    let block_write_rid =
                        line.map(|l| l.last_write).unwrap_or(Rid::ZERO).max(dir_rid);
                    self.stats[core].invalidations_caused += 1;
                    self.stats[o].invalidations_suffered += 1;
                    // If the remote core also read the line after writing it,
                    // `last_access` covers that too; classify by its role.
                    result.touches.push(RemoteTouch {
                        remote_core: o,
                        block,
                        kind: ArcKind::Waw,
                        block_rid,
                        block_write_rid,
                        core_rid: self.core_rid[o],
                    });
                }
            }
            let own_prior_write = match writer {
                Some((o, wrid)) if o == core => wrid,
                _ => Rid::ZERO,
            };
            dir.writer = Some((core, rid.max(own_prior_write)));
            dir.last_writer = Some((core, rid.max(own_prior_write)));
            dir.readers.clear();
            let reader_rid = if reads { rid.max(own_reads) } else { own_reads };
            if reader_rid > Rid::ZERO {
                dir.readers.push((core, reader_rid));
            }
        } else {
            // Read: force a downgrade of a remote dirty owner (RAW), then
            // join the sharer set.
            let mut raw_touched = false;
            if let Some((o, dir_rid)) = dir.writer {
                if o != core {
                    needs_remote = true;
                    // Owner keeps a Shared copy; its line becomes clean.
                    let block_rid = match self.l1[o].peek_mut(block) {
                        Some(info) => {
                            info.dirty = false;
                            info.last_write.max(dir_rid)
                        }
                        None => dir_rid,
                    };
                    self.stats[core].downgrades_caused += 1;
                    raw_touched = true;
                    result.touches.push(RemoteTouch {
                        remote_core: o,
                        block,
                        kind: ArcKind::Raw,
                        block_rid,
                        block_write_rid: block_rid,
                        core_rid: self.core_rid[o],
                    });
                    dir.writer = None;
                    if !dir.readers.iter().any(|(r, _)| *r == o) {
                        dir.readers.push((o, dir_rid));
                    }
                } else {
                    // We own it dirty; nothing to do at the directory.
                }
            }
            // A new sharer of an already-downgraded block still receives the
            // last writer's timestamp with the data (FDR semantics): without
            // this, only the downgrading reader would be ordered after the
            // write.
            if !raw_touched && !self.l1[core].contains(block) {
                if let Some((w, wrid)) = dir.last_writer {
                    if w != core && wrid > Rid::ZERO {
                        result.touches.push(RemoteTouch {
                            remote_core: w,
                            block,
                            kind: ArcKind::Raw,
                            block_rid: wrid,
                            block_write_rid: wrid,
                            core_rid: self.core_rid[w],
                        });
                    }
                }
            }
            match dir.readers.iter_mut().find(|(r, _)| *r == core) {
                Some(entry) => entry.1 = entry.1.max(rid),
                None => dir.readers.push((core, rid)),
            }
        }

        // --- Latency & fills ---------------------------------------------
        let l1_hit = {
            let probe = self.l1[core].probe(block);
            match probe {
                Some(info) => {
                    info.last_access = info.last_access.max(rid);
                    if writes {
                        info.last_write = info.last_write.max(rid);
                        info.dirty = true;
                    }
                    true
                }
                None => false,
            }
        };

        if l1_hit {
            result.latency = result.latency.max(if writes && needs_remote {
                // Upgrade: had the line Shared, needed invalidations.
                self.config.l2.latency + self.config.coherence_latency
            } else {
                self.config.l1d.latency
            });
            return;
        }

        // L1 miss: consult L2.
        let l2_hit = self.l2.probe(block).is_some();
        let mut latency = if l2_hit {
            self.config.l2.latency
        } else {
            self.config.mem_latency
        };
        if needs_remote {
            latency += self.config.coherence_latency;
        }
        result.latency = result.latency.max(latency);

        if !l2_hit {
            if let Some((victim, _)) = self.l2.insert(block, LineInfo::default()) {
                // Inclusive L2: back-invalidate every L1 copy of the victim.
                self.back_invalidate(victim);
            }
        }
        let info = LineInfo {
            last_access: rid,
            last_write: if writes { rid } else { Rid::ZERO },
            dirty: writes,
        };
        if let Some((_victim, _vinfo)) = self.l1[core].insert(block, info) {
            // Dirty victims write back to L2; timestamps survive in the
            // directory, so nothing further to record.
        }
    }

    fn back_invalidate(&mut self, block: BlockId) {
        for l1 in &mut self.l1 {
            l1.invalidate(block);
        }
        // Sharer bookkeeping stays in the directory on purpose: its rids act
        // as the conservative fallback once line timestamps are gone.
    }

    /// Functionally warms the caches for an access, mirroring the paper's
    /// measurement methodology (§6: functional simulation warms caches
    /// before the timed window). Installs the block in `core`'s L1 and the
    /// shared L2 and updates directory membership with [`Rid::ZERO`]
    /// timestamps — which the order-capture layer treats as "no ordering
    /// information", so warming never fabricates dependence arcs. No latency
    /// is charged and hit/miss statistics are not touched.
    pub fn warm_access(&mut self, core: usize, addr: Addr, size: u64, kind: AccessKind) {
        for block in blocks_of(addr, size) {
            let dir = self.dir.entry(block).or_default();
            if kind.writes() {
                for (o, _) in std::mem::take(&mut dir.readers) {
                    if o != core {
                        self.l1[o].invalidate(block);
                    }
                }
                if let Some((o, _)) = dir.writer.take() {
                    if o != core {
                        self.l1[o].invalidate(block);
                    }
                }
                dir.writer = Some((core, Rid::ZERO));
                dir.last_writer = Some((core, Rid::ZERO));
            } else {
                if let Some((o, _)) = dir.writer {
                    if o != core {
                        dir.writer = None;
                        if !dir.readers.iter().any(|(r, _)| *r == o) {
                            dir.readers.push((o, Rid::ZERO));
                        }
                    }
                }
                if !dir.readers.iter().any(|(r, _)| *r == core) {
                    dir.readers.push((core, Rid::ZERO));
                }
            }
            if !self.l2.contains(block) {
                if let Some((victim, _)) = self.l2.insert(block, LineInfo::default()) {
                    self.back_invalidate(victim);
                }
            }
            if !self.l1[core].contains(block) {
                self.l1[core].insert(
                    block,
                    LineInfo {
                        last_access: Rid::ZERO,
                        last_write: Rid::ZERO,
                        dirty: kind.writes(),
                    },
                );
            }
        }
    }

    /// Raises the last-access timestamp of `core`'s resident lines covering
    /// the access, without coherence traffic or latency — used for
    /// store-to-load forwarding, which never reaches the cache but must be
    /// visible to later invalidation acknowledgements (§5.5).
    pub fn bump_line_access(&mut self, core: usize, addr: Addr, size: u64, rid: Rid) {
        for block in blocks_of(addr, size) {
            if let Some(info) = self.l1[core].peek_mut(block) {
                info.last_access = info.last_access.max(rid);
            }
        }
    }

    /// Test/diagnostic helper: current sharers of a block (directory view).
    pub fn sharers(&self, block: BlockId) -> Vec<usize> {
        match self.dir.get(&block) {
            Some(d) => {
                let mut v: Vec<usize> = d.readers.iter().map(|(c, _)| *c).collect();
                if let Some((o, _)) = d.writer {
                    if !v.contains(&o) {
                        v.push(o);
                    }
                }
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(cores: usize) -> MemorySystem {
        MemorySystem::new(&MachineConfig::paper(cores))
    }

    #[test]
    fn cold_miss_costs_memory_latency() {
        let mut m = machine(2);
        let r = m.access(0, Rid(1), 0x1000, 4, AccessKind::Read);
        assert_eq!(r.latency, 90);
        assert!(r.touches.is_empty());
        // Second access is an L1 hit.
        let r2 = m.access(0, Rid(2), 0x1000, 4, AccessKind::Read);
        assert_eq!(r2.latency, 2);
    }

    #[test]
    fn l2_hit_after_remote_fill() {
        let mut m = machine(2);
        m.access(0, Rid(1), 0x1000, 4, AccessKind::Read);
        // Core 1 misses L1 but hits the shared L2.
        let r = m.access(1, Rid(1), 0x1000, 4, AccessKind::Read);
        assert_eq!(r.latency, 6);
        assert!(r.touches.is_empty(), "read-read sharing produces no arcs");
    }

    #[test]
    fn raw_touch_on_reading_dirty_remote() {
        let mut m = machine(2);
        m.access(0, Rid(5), 0x1000, 4, AccessKind::Write);
        let r = m.access(1, Rid(2), 0x1000, 4, AccessKind::Read);
        assert_eq!(r.touches.len(), 1);
        let t = r.touches[0];
        assert_eq!(t.remote_core, 0);
        assert_eq!(t.kind, ArcKind::Raw);
        assert_eq!(t.block_rid, Rid(5));
        assert!(r.latency >= 6 + 4, "downgrade adds coherence latency");
    }

    #[test]
    fn war_touch_on_writing_shared() {
        let mut m = machine(4);
        m.access(0, Rid(3), 0x2000, 4, AccessKind::Read);
        m.access(1, Rid(8), 0x2000, 4, AccessKind::Read);
        let r = m.access(2, Rid(1), 0x2000, 4, AccessKind::Write);
        let mut remotes: Vec<_> = r
            .touches
            .iter()
            .map(|t| (t.remote_core, t.block_rid))
            .collect();
        remotes.sort_unstable();
        assert_eq!(remotes, vec![(0, Rid(3)), (1, Rid(8))]);
        assert!(r.touches.iter().all(|t| t.kind == ArcKind::War));
        // Both remote copies are gone.
        assert_eq!(m.sharers(BlockId::containing(0x2000)), vec![2]);
    }

    #[test]
    fn waw_touch_on_overwriting_dirty_remote() {
        let mut m = machine(2);
        m.access(0, Rid(4), 0x3000, 8, AccessKind::Write);
        let r = m.access(1, Rid(9), 0x3000, 8, AccessKind::Write);
        assert_eq!(r.touches.len(), 1);
        assert_eq!(r.touches[0].kind, ArcKind::Waw);
        assert_eq!(r.touches[0].block_rid, Rid(4));
    }

    #[test]
    fn owner_later_read_extends_war_window() {
        // Owner writes at rid 4, reads again at rid 9 (L1 hit, silent to the
        // directory); a remote write must see block_rid = 9 via the line
        // timestamp carried in the invalidation ack.
        let mut m = machine(2);
        m.access(0, Rid(4), 0x3000, 8, AccessKind::Write);
        m.access(0, Rid(9), 0x3000, 8, AccessKind::Read);
        let r = m.access(1, Rid(1), 0x3000, 8, AccessKind::Write);
        assert_eq!(r.touches.len(), 1);
        assert_eq!(r.touches[0].block_rid, Rid(9));
    }

    #[test]
    fn rmw_touches_both_owner_and_sharers() {
        let mut m = machine(3);
        m.access(0, Rid(2), 0x4000, 4, AccessKind::Write);
        m.access(1, Rid(6), 0x4000, 4, AccessKind::Read);
        // Core 1's read downgraded core 0; now core 2 RMWs: WAR from core 1,
        // WAW from... core 0 is only a sharer now (downgraded), so WAR from
        // both, with core 0's last access being its write at rid 2.
        let r = m.access(2, Rid(1), 0x4000, 4, AccessKind::Rmw);
        let mut seen: Vec<_> = r.touches.iter().map(|t| t.remote_core).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn conservative_core_rid_at_least_block_rid() {
        let mut m = machine(2);
        m.access(0, Rid(5), 0x1000, 4, AccessKind::Write);
        m.set_core_rid(0, Rid(12));
        let r = m.access(1, Rid(2), 0x1000, 4, AccessKind::Read);
        let t = r.touches[0];
        assert_eq!(t.block_rid, Rid(5));
        assert_eq!(t.core_rid, Rid(12));
        assert!(
            t.core_rid >= t.block_rid,
            "per-core counter is conservative"
        );
    }

    #[test]
    fn spanning_access_touches_two_blocks() {
        let mut m = machine(2);
        m.access(0, Rid(1), 0x1000, 4, AccessKind::Write); // block A
        m.access(0, Rid(2), 0x1040, 4, AccessKind::Write); // block B
        let r = m.access(1, Rid(1), 0x103c, 8, AccessKind::Write);
        assert_eq!(r.touches.len(), 2);
    }

    #[test]
    fn same_core_never_touches_itself() {
        let mut m = machine(2);
        m.access(0, Rid(1), 0x1000, 4, AccessKind::Write);
        let r = m.access(0, Rid(2), 0x1000, 4, AccessKind::Read);
        assert!(r.touches.is_empty());
        let r = m.access(0, Rid(3), 0x1000, 4, AccessKind::Write);
        assert!(r.touches.is_empty());
    }

    #[test]
    fn eviction_falls_back_to_directory_rid() {
        // Fill core 0's L1 set so the interesting block is evicted, then have
        // core 1 write it: the arc must still appear, with the directory rid.
        let mut m = machine(2);
        let sets = MachineConfig::paper(2).l1d.sets() as u64;
        m.access(0, Rid(7), 0x0, 4, AccessKind::Read);
        // Evict block 0 from core 0's L1 by filling its set (same set every
        // `sets` blocks; 4 ways).
        for i in 1..=4u64 {
            m.access(0, Rid(7 + i), i * sets * 64, 4, AccessKind::Read);
        }
        let r = m.access(1, Rid(1), 0x0, 4, AccessKind::Write);
        assert_eq!(
            r.touches.len(),
            1,
            "directory keeps sharer after silent eviction"
        );
        assert_eq!(r.touches[0].block_rid, Rid(7));
    }

    #[test]
    fn stats_track_invalidations() {
        let mut m = machine(2);
        m.access(0, Rid(1), 0x1000, 4, AccessKind::Read);
        m.access(1, Rid(1), 0x1000, 4, AccessKind::Write);
        assert_eq!(m.coherence_stats(1).invalidations_caused, 1);
        assert_eq!(m.coherence_stats(0).invalidations_suffered, 1);
        assert_eq!(m.coherence_stats(0).invalidations_caused, 0);
    }
}
