//! Deterministic discrete-event scheduling.
//!
//! The whole platform — application cores, lifeguard cores, store-buffer
//! drains — is simulated on one OS thread by always stepping the entity with
//! the smallest local clock (ties broken by entity index). Because shared
//! state is only touched by the globally-earliest entity, every run is
//! deterministic and the interleaving is a legal fine-grained schedule of the
//! modeled machine.

/// Tracks per-entity local clocks and picks the next entity to step.
#[derive(Debug, Clone)]
pub struct Scheduler {
    clocks: Vec<u64>,
    done: Vec<bool>,
    steps: u64,
}

impl Scheduler {
    /// Creates a scheduler for `entities` entities, all at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `entities` is zero.
    pub fn new(entities: usize) -> Self {
        assert!(entities > 0, "scheduler needs at least one entity");
        Scheduler {
            clocks: vec![0; entities],
            done: vec![false; entities],
            steps: 0,
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Whether no entities exist (never true; see [`Scheduler::new`]).
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Local clock of `entity`.
    pub fn clock(&self, entity: usize) -> u64 {
        self.clocks[entity]
    }

    /// Advances `entity`'s clock by `cycles`.
    pub fn advance(&mut self, entity: usize, cycles: u64) {
        self.clocks[entity] += cycles;
    }

    /// Moves `entity`'s clock forward to at least `time` (no-op if already
    /// past it).
    pub fn advance_to(&mut self, entity: usize, time: u64) {
        if self.clocks[entity] < time {
            self.clocks[entity] = time;
        }
    }

    /// Marks `entity` as finished; it will not be picked again.
    pub fn finish(&mut self, entity: usize) {
        self.done[entity] = true;
    }

    /// Whether `entity` has finished.
    pub fn is_finished(&self, entity: usize) -> bool {
        self.done[entity]
    }

    /// Whether every entity has finished.
    pub fn all_finished(&self) -> bool {
        self.done.iter().all(|&d| d)
    }

    /// Picks the unfinished entity with the smallest clock (smallest index on
    /// ties) and counts the step. Returns `None` when all are finished.
    pub fn pick_next(&mut self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, (&t, &d)) in self.clocks.iter().zip(self.done.iter()).enumerate() {
            if d {
                continue;
            }
            match best {
                Some(b) if self.clocks[b] <= t => {}
                _ => best = Some(i),
            }
        }
        if best.is_some() {
            self.steps += 1;
        }
        best
    }

    /// Total steps taken.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The largest clock over all entities — the run's execution time once
    /// everything has finished.
    pub fn max_clock(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_min_clock_with_index_tiebreak() {
        let mut s = Scheduler::new(3);
        s.advance(0, 10);
        s.advance(1, 5);
        s.advance(2, 5);
        assert_eq!(s.pick_next(), Some(1), "smaller index wins ties");
        s.advance(1, 1);
        assert_eq!(s.pick_next(), Some(2));
    }

    #[test]
    fn finished_entities_are_skipped() {
        let mut s = Scheduler::new(2);
        s.finish(0);
        assert_eq!(s.pick_next(), Some(1));
        s.finish(1);
        assert_eq!(s.pick_next(), None);
        assert!(s.all_finished());
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut s = Scheduler::new(1);
        s.advance(0, 50);
        s.advance_to(0, 30);
        assert_eq!(s.clock(0), 50);
        s.advance_to(0, 80);
        assert_eq!(s.clock(0), 80);
    }

    #[test]
    fn max_clock_reports_execution_time() {
        let mut s = Scheduler::new(2);
        s.advance(0, 7);
        s.advance(1, 19);
        assert_eq!(s.max_clock(), 19);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_scheduler_rejected() {
        let _ = Scheduler::new(0);
    }
}
