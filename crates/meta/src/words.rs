//! Deprecated home of the word-granular atomic table.
//!
//! The substrate moved into [`crate::table`], where it is one half of the
//! generic [`WordTable`](crate::table::WordTable) API (packed fast path +
//! interned wide tier). This module survives as a thin re-export so
//! out-of-tree lifeguards keep compiling; new code should name
//! [`PackedWordTable`] — or, when it also
//! needs wide values, construct a full [`WordTable`](crate::table::WordTable).

pub use crate::table::PackedWordTable;

/// The pre-generalization name of [`PackedWordTable`].
#[deprecated(
    note = "renamed to `paralog_meta::PackedWordTable`; analyses needing the \
            wide tier should build a `paralog_meta::WordTable<V>` instead"
)]
pub type AtomicWordTable = PackedWordTable;
