//! Lock-free word-granular atomic metadata: one `AtomicU64` per key.
//!
//! [`AtomicShadow`](crate::AtomicShadow) gives concurrent lifeguards a
//! byte-per-application-byte shadow, which is enough for bit-lattice
//! analyses (taint, allocatedness, definedness). Analyses whose per-location
//! state does not fit a byte — LOCKSET's Eraser state machine packs a state
//! code, an owner thread and an *interned lockset id* into one word — need
//! the same lazily-grown, hot-path-index-free layout at `u64` granularity,
//! plus a compare-exchange so a §5.3 fast path can publish a state
//! transition without any lock: that is [`AtomicWordTable`].
//!
//! The layout mirrors `AtomicShadow`: a flat first level of
//! [`OnceLock`] chunk slots covering the dense key span (initialized
//! race-free by whichever thread touches a chunk first) and a
//! mutex-protected spill map for far outliers. Reads of untouched keys
//! return 0 without allocating, so a packed encoding must reserve the
//! all-zero word for its "never touched" state.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Keys per chunk (8192 × 8 bytes = 64 KiB per chunk).
const WORDS_PER_CHUNK: u64 = 1 << 13;

/// Dense first-level span: 2^18 chunks × 2^13 keys = 2^31 keys — a 4-byte
/// granule index over the same 8 GiB application span `AtomicShadow`'s
/// dense tier covers. Keys beyond it take the spill lock (rare sentinel
/// ranges only).
const DENSE_CHUNKS: u64 = 1 << 18;

/// A lock-free `key → AtomicU64` table with lazily materialized chunks.
///
/// Untouched keys read as 0. The hot path after first touch is a flat array
/// index plus one atomic access — no hashing, no locks. Writers publish new
/// values with [`compare_exchange`](Self::compare_exchange) (acquire/release
/// ordering), so a reader that observes a packed word also observes
/// everything the writer published before it.
#[derive(Debug)]
pub struct AtomicWordTable {
    /// First level: chunk index → chunk, initialized on first touch.
    dense: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Outlier chunks beyond the dense span. `Arc` lets an accessor clone a
    /// handle out of the lock and work without holding it.
    spill: Mutex<BTreeMap<u64, Arc<[AtomicU64]>>>,
}

impl Default for AtomicWordTable {
    fn default() -> Self {
        AtomicWordTable::new()
    }
}

fn new_chunk() -> Vec<AtomicU64> {
    (0..WORDS_PER_CHUNK).map(|_| AtomicU64::new(0)).collect()
}

impl AtomicWordTable {
    /// An empty table; chunks materialize on first non-zero write.
    pub fn new() -> Self {
        AtomicWordTable {
            dense: (0..DENSE_CHUNKS).map(|_| OnceLock::new()).collect(),
            spill: Mutex::new(BTreeMap::new()),
        }
    }

    /// Runs `f` over the chunk holding `key`. With `create` unset, untouched
    /// chunks are skipped (reads of clean keys must not allocate); otherwise
    /// the chunk is initialized race-free first.
    fn with_chunk<R>(&self, ci: u64, create: bool, f: impl FnOnce(&[AtomicU64]) -> R) -> Option<R> {
        if ci < DENSE_CHUNKS {
            let slot = &self.dense[ci as usize];
            return match (slot.get(), create) {
                (Some(chunk), _) => Some(f(chunk)),
                (None, true) => Some(f(slot.get_or_init(|| new_chunk().into_boxed_slice()))),
                (None, false) => None,
            };
        }
        let chunk: Arc<[AtomicU64]> = {
            let mut spill = self.spill.lock().expect("poisoned");
            match (spill.get(&ci), create) {
                (Some(chunk), _) => Arc::clone(chunk),
                (None, true) => {
                    let chunk: Arc<[AtomicU64]> = new_chunk().into();
                    spill.insert(ci, Arc::clone(&chunk));
                    chunk
                }
                (None, false) => return None,
            }
        };
        Some(f(&chunk))
    }

    /// Load-acquire of one key; untouched keys read 0 without allocating.
    pub fn load(&self, key: u64) -> u64 {
        self.with_chunk(key / WORDS_PER_CHUNK, false, |c| {
            c[(key % WORDS_PER_CHUNK) as usize].load(Ordering::Acquire)
        })
        .unwrap_or(0)
    }

    /// CAS-exchange on one key: publishes `new` iff the key still holds
    /// `current`. `Ok(current)` on success, `Err(actual)` on a lost race —
    /// the caller re-reads and recomputes its transition.
    ///
    /// Storing a non-zero value into an untouched chunk materializes it;
    /// the degenerate `0 → 0` exchange succeeds without allocating.
    pub fn compare_exchange(&self, key: u64, current: u64, new: u64) -> Result<u64, u64> {
        let create = current == 0 && new != 0;
        match self.with_chunk(key / WORDS_PER_CHUNK, create, |c| {
            c[(key % WORDS_PER_CHUNK) as usize].compare_exchange(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
        }) {
            Some(result) => result,
            // Chunk untouched and nothing to write: the key reads 0.
            None if current == 0 => Ok(0),
            None => Err(0),
        }
    }

    /// Calls `f(key, value)` for every key holding a non-zero word, in
    /// ascending chunk order (dense tier first, then spill).
    pub fn for_each_nonzero(&self, mut f: impl FnMut(u64, u64)) {
        let mut scan = |ci: u64, chunk: &[AtomicU64]| {
            let base = ci * WORDS_PER_CHUNK;
            for (off, word) in chunk.iter().enumerate() {
                let v = word.load(Ordering::Acquire);
                if v != 0 {
                    f(base + off as u64, v);
                }
            }
        };
        for (i, slot) in self.dense.iter().enumerate() {
            if let Some(chunk) = slot.get() {
                scan(i as u64, chunk);
            }
        }
        for (ci, chunk) in self.spill.lock().expect("poisoned").iter() {
            scan(*ci, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_keys_read_zero_without_allocating() {
        let t = AtomicWordTable::new();
        assert_eq!(t.load(0x1234), 0);
        assert!(t.dense[(0x1234 / WORDS_PER_CHUNK) as usize].get().is_none());
        // The degenerate 0 → 0 exchange also stays allocation-free.
        assert_eq!(t.compare_exchange(0x1234, 0, 0), Ok(0));
        assert!(t.dense[(0x1234 / WORDS_PER_CHUNK) as usize].get().is_none());
    }

    #[test]
    fn cas_publishes_and_detects_races() {
        let t = AtomicWordTable::new();
        assert_eq!(t.compare_exchange(7, 0, 42), Ok(0));
        assert_eq!(t.load(7), 42);
        // Stale expectation loses and reports the actual value.
        assert_eq!(t.compare_exchange(7, 0, 99), Err(42));
        assert_eq!(t.compare_exchange(7, 42, 99), Ok(42));
        assert_eq!(t.load(7), 99);
        // A non-zero expectation against an untouched chunk loses as 0.
        assert_eq!(t.compare_exchange(WORDS_PER_CHUNK * 50, 5, 6), Err(0));
    }

    #[test]
    fn spill_tier_covers_far_keys() {
        let t = AtomicWordTable::new();
        let far = DENSE_CHUNKS * WORDS_PER_CHUNK + 17;
        assert_eq!(t.load(far), 0);
        assert_eq!(t.compare_exchange(far, 0, 3), Ok(0));
        assert_eq!(t.load(far), 3);
        let mut seen = Vec::new();
        t.for_each_nonzero(|k, v| seen.push((k, v)));
        assert_eq!(seen, vec![(far, 3)]);
    }

    #[test]
    fn concurrent_cas_exactly_one_winner_per_transition() {
        let t = AtomicWordTable::new();
        let wins: Vec<u64> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|me| {
                    let t = &t;
                    scope.spawn(move || {
                        let mut won = 0u64;
                        for _ in 0..256 {
                            loop {
                                let cur = t.load(9);
                                match t.compare_exchange(9, cur, cur + (1 << me)) {
                                    Ok(_) => {
                                        won += 1;
                                        break;
                                    }
                                    Err(_) => continue,
                                }
                            }
                        }
                        won
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        // Every increment landed exactly once despite the races.
        assert_eq!(wins, vec![256; 4]);
        assert_eq!(t.load(9), 256 * 0b1111);
    }
}
