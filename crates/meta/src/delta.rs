//! Private shadow deltas for delta-merge replay.
//!
//! CAS-per-access replay pays one synchronizing atomic op per monitored
//! access; under heavy inter-thread sharing that is cache-line ping-pong on
//! the shared metadata. Delta-merge replay instead buffers a worker's
//! metadata writes in a *private* overlay and publishes them into the shared
//! [`AtomicShadow`]/[`AtomicWordTable`](crate::AtomicWordTable) only at the
//! points where the §5.2 ordering machinery already forces synchronization
//! (dependence-arc waits, ConflictAlert gates, version produce points,
//! batch boundaries). Reads that cross an unmet arc consult merged state by
//! construction, so the overlay is invisible to every other thread's
//! ordered view.
//!
//! Two overlay shapes live here:
//!
//! * [`ShadowDelta`] — a sparse, chunk-indexed byte overlay over an
//!   [`AtomicShadow`], tracking exactly which bytes the owner wrote (a
//!   written bitmask per chunk) so unwritten bytes still read through to
//!   the shared shadow;
//! * [`WordDelta`] — a sorted `key → V` map for word-granular analyses
//!   (LockSet) whose per-location delta state is analysis-defined.
//!
//! Both are single-owner types: the replay worker that owns a delta is the
//! only mutator, so no interior atomics are needed. Publishing is the
//! owner's job (see [`ShadowDelta::flush_into`]).

use crate::atomic::AtomicShadow;
use std::cell::UnsafeCell;

/// A per-lane slot for one replay worker's private delta state.
///
/// Delta-merge state is single-owner by protocol: only the worker currently
/// replaying thread `t` touches slot `t`, and lane hand-off between pool
/// threads is ordered by the backend's own synchronization. A `Mutex` here
/// costs two locked RMW ops per record on x86 — more than the plain-mov
/// shadow stores the overlay exists to batch — so the slot is an
/// [`UnsafeCell`] with the ownership contract on [`with`](Self::with),
/// checked at runtime in debug builds.
#[derive(Debug, Default)]
pub struct LaneCell<T> {
    value: UnsafeCell<T>,
    #[cfg(debug_assertions)]
    entered: std::sync::atomic::AtomicBool,
}

// SAFETY: cross-thread access is confined to one owner at a time by the
// delta-merge protocol (see `with`); the cell itself adds no sharing.
unsafe impl<T: Send> Sync for LaneCell<T> {}

impl<T> LaneCell<T> {
    /// Wraps `value` in a lane slot.
    pub fn new(value: T) -> Self {
        LaneCell {
            value: UnsafeCell::new(value),
            #[cfg(debug_assertions)]
            entered: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Runs `f` with exclusive access to the slot.
    ///
    /// # Safety
    ///
    /// The caller must be the slot's current owner: no other call to `with`
    /// on this slot may overlap this one, and any hand-off of ownership
    /// between threads must happen-before the new owner's first call. The
    /// replay backends uphold this by construction (one worker or lane per
    /// replayed thread; migrations ordered by the scheduler).
    pub unsafe fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        #[cfg(debug_assertions)]
        {
            use std::sync::atomic::Ordering;
            assert!(
                !self.entered.swap(true, Ordering::Acquire),
                "LaneCell entered concurrently — single-owner contract violated"
            );
        }
        // SAFETY: exclusivity is the caller's contract, stated above.
        let out = f(unsafe { &mut *self.value.get() });
        #[cfg(debug_assertions)]
        self.entered
            .store(false, std::sync::atomic::Ordering::Release);
        out
    }
}

/// Application bytes per delta chunk. Smaller than `AtomicShadow`'s 64 KiB
/// chunks: a delta holds one batch's write footprint, not a whole address
/// space.
const DELTA_CHUNK: u64 = 4096;
const MASK_WORDS: usize = (DELTA_CHUNK / 64) as usize;

/// One materialized delta chunk: a written-byte bitmask plus the bytes.
struct DeltaChunk {
    written: [u64; MASK_WORDS],
    data: [u8; DELTA_CHUNK as usize],
}

impl DeltaChunk {
    fn new() -> Box<DeltaChunk> {
        Box::new(DeltaChunk {
            written: [0; MASK_WORDS],
            data: [0; DELTA_CHUNK as usize],
        })
    }

    #[inline]
    fn is_written(&self, off: usize) -> bool {
        self.written[off / 64] & (1u64 << (off % 64)) != 0
    }

    /// One `u64` covering bits `lo..hi` of a mask word (`hi <= 64`).
    #[inline]
    fn word_mask(lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi <= 64);
        if hi - lo == 64 {
            !0
        } else {
            ((1u64 << (hi - lo)) - 1) << lo
        }
    }

    /// Applies `f(word index, bit mask)` for each mask word overlapping
    /// byte offsets `lo..hi`. An aligned 8-byte access touches exactly one
    /// word, so the common shape is a single masked `u64` op.
    #[inline]
    fn for_mask_words(lo: usize, hi: usize, mut f: impl FnMut(usize, u64)) {
        debug_assert!(lo < hi && hi <= DELTA_CHUNK as usize);
        let (w0, w1) = (lo / 64, (hi - 1) / 64);
        if w0 == w1 {
            f(w0, Self::word_mask(lo % 64, (hi - 1) % 64 + 1));
            return;
        }
        f(w0, Self::word_mask(lo % 64, 64));
        for w in w0 + 1..w1 {
            f(w, !0);
        }
        f(w1, Self::word_mask(0, (hi - 1) % 64 + 1));
    }

    /// Marks byte offsets `lo..hi` written (word-wide ORs).
    #[inline]
    fn mark_written(&mut self, lo: usize, hi: usize) {
        Self::for_mask_words(lo, hi, |w, m| self.written[w] |= m);
    }

    /// Whether every byte offset in `lo..hi` is written.
    #[inline]
    fn all_written(&self, lo: usize, hi: usize) -> bool {
        let mut all = true;
        Self::for_mask_words(lo, hi, |w, m| all &= self.written[w] & m == m);
        all
    }

    /// Whether no byte offset in `lo..hi` is written.
    #[inline]
    fn none_written(&self, lo: usize, hi: usize) -> bool {
        let mut none = true;
        Self::for_mask_words(lo, hi, |w, m| none &= self.written[w] & m == 0);
        none
    }
}

impl std::fmt::Debug for DeltaChunk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let bytes: u32 = self.written.iter().map(|w| w.count_ones()).sum();
        f.debug_struct("DeltaChunk")
            .field("written_bytes", &bytes)
            .finish()
    }
}

/// A private byte-granular write overlay over an [`AtomicShadow`].
///
/// The owner records metadata stores with [`set_range`](Self::set_range)
/// and resolves reads with [`get`](Self::get) /
/// [`join_over`](Self::join_over) (own pending writes win; unwritten bytes
/// read through to the shared shadow). At a flush point,
/// [`flush_into`](Self::flush_into) publishes the overlay as coalesced
/// equal-value runs via [`AtomicShadow::fill_range`] and empties it.
///
/// Last-writer-wins semantics: the overlay keeps only the newest value per
/// byte, which is sound exactly because conflicting cross-thread writes are
/// ordered by dependence arcs — within one thread's unflushed window there
/// is no concurrent writer to merge against.
///
/// This sits on the replay worker's per-access hot path, so the chunk set
/// is a flat vector fronted by a small direct-mapped slot cache, not a
/// search tree: a window's writes hit a handful of chunks, each found with
/// one hash and one comparison. Mask maintenance is word-wide (one `u64`
/// OR covers a whole aligned access), and the all-written read fast path
/// folds the span without touching the shared shadow at all — the point
/// where the overlay becomes cheaper than the 8 atomic byte ops it
/// replaces.
#[derive(Debug)]
pub struct ShadowDelta {
    /// `(chunk index, chunk)` in insertion order (stable, so `map` slots
    /// stay valid). Flush sorts by index so publishing still walks
    /// ascending addresses. Chunks are *retained* across flushes with only
    /// their masks cleared: a window's footprint repeats, and re-zeroing
    /// 4 KiB of data (plus the allocator round-trip) per chunk per window
    /// costs more than the whole publish.
    chunks: Vec<(u64, Box<DeltaChunk>)>,
    /// Direct-mapped cache: Fibonacci hash of chunk index → position+1 in
    /// `chunks` (0 = empty). A collision merely falls back to the linear
    /// scan.
    map: [u16; CHUNK_MAP_WAYS],
    /// Whether any byte is pending since the last flush/clear.
    pending: bool,
}

/// Slot-cache ways (power of two; indexed by the top bits of a Fibonacci
/// hash of the chunk index).
const CHUNK_MAP_WAYS: usize = 32;

/// Retained-chunk cap: a footprint larger than this drops its overlay
/// storage wholesale at the next flush instead of retaining it, bounding
/// idle memory at ~[`DELTA_CHUNK`]·64 per worker.
const MAX_RETAINED_CHUNKS: usize = 64;

impl Default for ShadowDelta {
    fn default() -> Self {
        ShadowDelta {
            chunks: Vec::new(),
            map: [0; CHUNK_MAP_WAYS],
            pending: false,
        }
    }
}

impl ShadowDelta {
    /// An empty overlay.
    pub fn new() -> Self {
        ShadowDelta::default()
    }

    /// Whether the overlay holds no pending writes.
    pub fn is_empty(&self) -> bool {
        !self.pending
    }

    /// Clears every retained chunk's written mask (data bytes may stay
    /// stale — unwritten offsets are never read); an oversized footprint
    /// is dropped wholesale instead.
    fn reset(&mut self) {
        if self.chunks.len() > MAX_RETAINED_CHUNKS {
            self.chunks.clear();
            self.map = [0; CHUNK_MAP_WAYS];
        } else {
            for (_, chunk) in &mut self.chunks {
                chunk.written = [0; MASK_WORDS];
            }
        }
        self.pending = false;
    }

    /// Slot-cache index for a chunk index.
    #[inline]
    fn map_slot(ci: u64) -> usize {
        debug_assert!(CHUNK_MAP_WAYS.is_power_of_two());
        (ci.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - CHUNK_MAP_WAYS.trailing_zeros())) as usize
    }

    /// The chunk for index `ci` (created if absent).
    #[inline]
    fn chunk_mut(&mut self, ci: u64) -> &mut DeltaChunk {
        let h = Self::map_slot(ci);
        let cached = self.map[h] as usize;
        if cached != 0 && self.chunks[cached - 1].0 == ci {
            return &mut self.chunks[cached - 1].1;
        }
        let pos = match self.chunks.iter().position(|(i, _)| *i == ci) {
            Some(pos) => pos,
            None => {
                self.chunks.push((ci, DeltaChunk::new()));
                self.chunks.len() - 1
            }
        };
        if pos < u16::MAX as usize {
            self.map[h] = (pos + 1) as u16;
        }
        &mut self.chunks[pos].1
    }

    /// The chunk for index `ci`, if materialized.
    #[inline]
    fn chunk(&self, ci: u64) -> Option<&DeltaChunk> {
        let cached = self.map[Self::map_slot(ci)] as usize;
        if cached != 0 && self.chunks[cached - 1].0 == ci {
            return Some(&self.chunks[cached - 1].1);
        }
        self.chunks
            .iter()
            .find_map(|(i, c)| (*i == ci).then_some(&**c))
    }

    /// Records a store of `v` over every byte of `addr..addr+len`.
    pub fn set_range(&mut self, addr: u64, len: u64, v: u8) {
        if len == 0 {
            return;
        }
        self.pending = true;
        // Fast path: the span sits inside one 64-byte mask word (every
        // aligned access up to 8 bytes does) — one chunk lookup, one data
        // write, one mask OR, no segment loop.
        if addr >> 6 == (addr + len - 1) >> 6 {
            let lo = (addr % DELTA_CHUNK) as usize;
            let mask = (!0u64 >> (64 - len)) << (lo % 64);
            let chunk = self.chunk_mut(addr / DELTA_CHUNK);
            if len == 8 {
                chunk.data[lo..lo + 8].copy_from_slice(&[v; 8]);
            } else {
                chunk.data[lo..lo + len as usize].fill(v);
            }
            chunk.written[lo / 64] |= mask;
            return;
        }
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / DELTA_CHUNK + 1) * DELTA_CHUNK);
            let lo = (a % DELTA_CHUNK) as usize;
            let hi = lo + (seg_end - a) as usize;
            let chunk = self.chunk_mut(a / DELTA_CHUNK);
            if hi - lo == 8 {
                // Constant-length copy: one unaligned 8-byte store instead
                // of a runtime-length memset call (most accesses are words).
                chunk.data[lo..hi].copy_from_slice(&[v; 8]);
            } else {
                chunk.data[lo..hi].fill(v);
            }
            chunk.mark_written(lo, hi);
            a = seg_end;
        }
    }

    /// The pending value for one byte, if the owner wrote it.
    pub fn get(&self, addr: u64) -> Option<u8> {
        if !self.pending {
            return None;
        }
        let chunk = self.chunk(addr / DELTA_CHUNK)?;
        let off = (addr % DELTA_CHUNK) as usize;
        chunk.is_written(off).then(|| chunk.data[off])
    }

    /// Bitwise-OR join over a range, with pending bytes taking precedence
    /// over `shared`. Equivalent to flushing and then calling
    /// [`AtomicShadow::join_range`], without publishing anything.
    pub fn join_over(&self, addr: u64, len: u64, shared: &AtomicShadow) -> u8 {
        if !self.pending || len == 0 {
            return shared.join_range(addr, len);
        }
        // Fast path mirroring `set_range`: a span inside one mask word
        // resolves with one lookup and one mask test — all-pending folds
        // the owner's bytes, none-pending reads straight through, and only
        // the rare mixed case falls to the general walk.
        if addr >> 6 == (addr + len - 1) >> 6 {
            let Some(chunk) = self.chunk(addr / DELTA_CHUNK) else {
                return shared.join_range(addr, len);
            };
            let lo = (addr % DELTA_CHUNK) as usize;
            let mask = (!0u64 >> (64 - len)) << (lo % 64);
            let written = chunk.written[lo / 64] & mask;
            if written == 0 {
                return shared.join_range(addr, len);
            }
            if written == mask {
                return if len == 8 {
                    let w =
                        u64::from_ne_bytes(chunk.data[lo..lo + 8].try_into().expect("8-byte span"));
                    let w = w | (w >> 32);
                    let w = w | (w >> 16);
                    (w | (w >> 8)) as u8
                } else {
                    chunk.data[lo..lo + len as usize]
                        .iter()
                        .fold(0, |x, b| x | b)
                };
            }
        }
        let mut acc = 0u8;
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / DELTA_CHUNK + 1) * DELTA_CHUNK);
            match self.chunk(a / DELTA_CHUNK) {
                None => acc |= shared.join_range(a, seg_end - a),
                Some(chunk) => {
                    let lo = (a % DELTA_CHUNK) as usize;
                    let hi = lo + (seg_end - a) as usize;
                    if chunk.none_written(lo, hi) {
                        // Retained chunk with nothing pending in this span:
                        // pure read-through, one shared walk.
                        acc |= shared.join_range(a, seg_end - a);
                        a = seg_end;
                        continue;
                    }
                    if chunk.all_written(lo, hi) {
                        // Fully-pending span: fold the owner's bytes and
                        // skip the shared shadow entirely — the hot case
                        // once a window has touched its working set.
                        acc |= if hi - lo == 8 {
                            let w = u64::from_ne_bytes(
                                chunk.data[lo..hi].try_into().expect("8-byte span"),
                            );
                            let w = w | (w >> 32);
                            let w = w | (w >> 16);
                            (w | (w >> 8)) as u8
                        } else {
                            chunk.data[lo..hi].iter().fold(0, |x, b| x | b)
                        };
                        a = seg_end;
                        continue;
                    }
                    // Coalesce read-through bytes into runs so the shared
                    // shadow is walked per run, not per byte.
                    let mut through_start = None;
                    for b in a..seg_end {
                        let off = (b % DELTA_CHUNK) as usize;
                        if chunk.is_written(off) {
                            if let Some(start) = through_start.take() {
                                acc |= shared.join_range(start, b - start);
                            }
                            acc |= chunk.data[off];
                        } else if through_start.is_none() {
                            through_start = Some(b);
                        }
                    }
                    if let Some(start) = through_start {
                        acc |= shared.join_range(start, seg_end - start);
                    }
                }
            }
            a = seg_end;
        }
        acc
    }

    /// Calls `f(addr, len, v)` for every maximal run of pending bytes that
    /// share one value, in ascending address order. Runs never span chunk
    /// boundaries (two calls at a seam are harmless — the consumer is
    /// [`AtomicShadow::fill_range`]).
    pub fn for_each_run(&self, mut f: impl FnMut(u64, u64, u8)) {
        if !self.pending {
            return;
        }
        let mut order: Vec<&(u64, Box<DeltaChunk>)> = self.chunks.iter().collect();
        order.sort_unstable_by_key(|(i, _)| *i);
        for &(ci, ref chunk) in order {
            let base = ci * DELTA_CHUNK;
            let mut run: Option<(u64, u64, u8)> = None;
            let mut off = 0usize;
            while off < DELTA_CHUNK as usize {
                // Skip whole untouched 64-byte mask words.
                if off.is_multiple_of(64) && chunk.written[off / 64] == 0 {
                    if let Some((start, len, v)) = run.take() {
                        f(start, len, v);
                    }
                    off += 64;
                    continue;
                }
                if !chunk.is_written(off) {
                    if let Some((start, len, v)) = run.take() {
                        f(start, len, v);
                    }
                    off += 1;
                    continue;
                }
                let v = chunk.data[off];
                match &mut run {
                    Some((start, len, rv)) if *rv == v && *start + *len == base + off as u64 => {
                        *len += 1;
                    }
                    other => {
                        if let Some((start, len, rv)) = other.take() {
                            f(start, len, rv);
                        }
                        run = Some((base + off as u64, 1, v));
                    }
                }
                off += 1;
            }
            if let Some((start, len, v)) = run {
                f(start, len, v);
            }
        }
    }

    /// Publishes every pending byte into `shared` (release stores via
    /// [`AtomicShadow::fill_range`], one call per equal-value run) and
    /// empties the overlay.
    pub fn flush_into(&mut self, shared: &AtomicShadow) {
        if !self.pending {
            return;
        }
        // Publish maximal written *spans*, extracted from the mask words by
        // bit scanning — no per-byte value inspection. Adjacent runs merge
        // across mask-word boundaries, so a densely written region (the hot
        // head of a skewed footprint is contiguous) publishes as one bulk
        // store.
        let mut order: Vec<&(u64, Box<DeltaChunk>)> = self.chunks.iter().collect();
        order.sort_unstable_by_key(|(i, _)| *i);
        for &(ci, ref chunk) in order {
            let base = ci * DELTA_CHUNK;
            let mut span: Option<(usize, usize)> = None;
            for (w, &word) in chunk.written.iter().enumerate() {
                let mut m = word;
                while m != 0 {
                    let start = m.trailing_zeros() as usize;
                    let run = (m >> start).trailing_ones() as usize;
                    let off = w * 64 + start;
                    span = match span {
                        Some((so, sl)) if so + sl == off => Some((so, sl + run)),
                        Some((so, sl)) => {
                            shared.store_range(base + so as u64, &chunk.data[so..so + sl]);
                            Some((off, run))
                        }
                        None => Some((off, run)),
                    };
                    if start + run == 64 {
                        break;
                    }
                    m &= !(((1u64 << run) - 1) << start);
                }
            }
            if let Some((so, sl)) = span {
                shared.store_range(base + so as u64, &chunk.data[so..so + sl]);
            }
        }
        self.reset();
    }

    /// Drops every pending write without publishing.
    pub fn clear(&mut self) {
        self.reset();
    }
}

/// A private word-granular delta map for analyses whose per-location state
/// does not fit a shadow byte (LockSet). The value type is analysis-defined;
/// this is just the single-owner buffer with the same accumulate-then-drain
/// shape as [`ShadowDelta`].
///
/// Like the byte overlay, lookups sit on the per-access hot path, so the
/// backing store is an open-addressed Fibonacci-hashed table with linear
/// probing (entries are never removed between drains, so a probe can stop
/// at the first empty slot). The ascending-key drain contract is preserved
/// by sorting at drain time — ordering is only needed once per window, not
/// once per access.
#[derive(Debug)]
pub struct WordDelta<V> {
    /// Power-of-two slot table (empty until the first insert). Slots are
    /// `None` or a live `(key, state)` pair; there are no tombstones.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> Default for WordDelta<V> {
    fn default() -> Self {
        WordDelta {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<V> WordDelta<V> {
    /// An empty delta.
    pub fn new() -> Self {
        WordDelta::default()
    }

    /// Whether no keys are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending key count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Home slot for `key` (Fibonacci hashing: multiply and keep the high
    /// bits, which a power-of-two table indexes directly).
    #[inline]
    fn bucket(slots: usize, key: u64) -> usize {
        debug_assert!(slots.is_power_of_two());
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> (64 - slots.trailing_zeros())) as usize
    }

    /// The slot holding `key`, or the empty slot where it would go.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let n = self.slots.len();
        let mut i = Self::bucket(n, key);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k != key => i = (i + 1) & (n - 1),
                _ => return i,
            }
        }
    }

    /// Grows (or first allocates) the table, rehashing live entries.
    #[cold]
    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(64);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        for entry in old.into_iter().flatten() {
            let i = self.probe(entry.0);
            self.slots[i] = Some(entry);
        }
    }

    /// The pending state for `key`, if any.
    pub fn get(&self, key: u64) -> Option<&V> {
        if self.len == 0 {
            return None;
        }
        self.slots[self.probe(key)].as_ref().map(|(_, v)| v)
    }

    /// Mutable pending state for `key`, if any.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if self.len == 0 {
            return None;
        }
        let i = self.probe(key);
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// The pending state for `key`, created via `init` on first touch.
    pub fn get_or_insert_with(&mut self, key: u64, init: impl FnOnce() -> V) -> &mut V {
        // Keep load below 7/8 so probe chains stay short.
        if self.slots.len() < (self.len + 1) * 8 / 7 + 1 {
            self.grow();
        }
        let i = self.probe(key);
        let slot = &mut self.slots[i];
        if slot.is_none() {
            *slot = Some((key, init()));
            self.len += 1;
        }
        slot.as_mut().map(|(_, v)| v).expect("slot just filled")
    }

    /// Drains every pending `(key, state)` pair in ascending key order.
    /// The slot table keeps its capacity for the next window.
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, V)> + '_ {
        let mut pairs: Vec<(u64, V)> = self.slots.iter_mut().filter_map(Option::take).collect();
        pairs.sort_unstable_by_key(|(k, _)| *k);
        self.len = 0;
        pairs.into_iter()
    }

    /// Drops every pending entry.
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_wins_over_shared_and_reads_through_elsewhere() {
        let shared = AtomicShadow::new();
        shared.fill_range(0x1000, 8, 0b10);
        let mut delta = ShadowDelta::new();
        assert_eq!(delta.join_over(0x1000, 8, &shared), 0b10);
        delta.set_range(0x1002, 2, 0b01);
        assert_eq!(delta.get(0x1002), Some(0b01));
        assert_eq!(delta.get(0x1004), None);
        // Pending bytes mask the shared value; the rest reads through.
        assert_eq!(delta.join_over(0x1002, 2, &shared), 0b01);
        assert_eq!(delta.join_over(0x1000, 8, &shared), 0b11);
        // A pending zero masks shared state too (last-writer-wins).
        delta.set_range(0x1000, 8, 0);
        assert_eq!(delta.join_over(0x1000, 8, &shared), 0);
    }

    #[test]
    fn flush_publishes_runs_and_empties() {
        let shared = AtomicShadow::new();
        shared.fill_range(0x2000, 16, 3);
        let mut delta = ShadowDelta::new();
        delta.set_range(0x2000, 4, 1);
        delta.set_range(0x2008, 4, 0);
        let mut runs = Vec::new();
        delta.for_each_run(|a, l, v| runs.push((a, l, v)));
        assert_eq!(runs, vec![(0x2000, 4, 1), (0x2008, 4, 0)]);
        delta.flush_into(&shared);
        assert!(delta.is_empty());
        assert_eq!(shared.snapshot(0x2000, 16), {
            let mut want = vec![3u8; 16];
            want[..4].fill(1);
            want[8..12].fill(0);
            want
        });
    }

    #[test]
    fn runs_split_on_value_change_and_chunk_seams() {
        let mut delta = ShadowDelta::new();
        let seam = DELTA_CHUNK * 3;
        delta.set_range(seam - 2, 4, 7);
        delta.set_range(0x100, 2, 1);
        delta.set_range(0x102, 2, 2);
        let mut runs = Vec::new();
        delta.for_each_run(|a, l, v| runs.push((a, l, v)));
        assert_eq!(
            runs,
            vec![(0x100, 2, 1), (0x102, 2, 2), (seam - 2, 2, 7), (seam, 2, 7),]
        );
    }

    #[test]
    fn flush_equals_join_over_for_random_interleavings() {
        let shared = AtomicShadow::new();
        let mut delta = ShadowDelta::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let addr = 0x3000 + step() % 512;
            let len = 1 + step() % 9;
            let v = (step() % 4) as u8;
            if step() % 3 == 0 {
                shared.fill_range(addr, len, v);
            } else {
                delta.set_range(addr, len, v);
            }
        }
        let want: Vec<u8> = (0..600)
            .map(|i| {
                let a = 0x3000 + i;
                delta.get(a).unwrap_or_else(|| shared.join_range(a, 1))
            })
            .collect();
        for w in 0..600 - 8 {
            let expect = want[w as usize..w as usize + 8]
                .iter()
                .fold(0, |a, b| a | b);
            assert_eq!(delta.join_over(0x3000 + w, 8, &shared), expect, "at {w}");
        }
        delta.flush_into(&shared);
        for (i, w) in want.iter().enumerate() {
            assert_eq!(shared.join_range(0x3000 + i as u64, 1), *w);
        }
    }

    #[test]
    fn word_delta_accumulates_and_drains_sorted() {
        let mut d: WordDelta<u32> = WordDelta::new();
        assert!(d.is_empty());
        *d.get_or_insert_with(9, || 0) += 1;
        *d.get_or_insert_with(4, || 10) += 1;
        *d.get_or_insert_with(9, || 0) += 1;
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(9), Some(&2));
        assert_eq!(d.get_mut(4).map(|v| *v), Some(11));
        let drained: Vec<_> = d.drain().collect();
        assert_eq!(drained, vec![(4, 11), (9, 2)]);
        assert!(d.is_empty());
    }
}
