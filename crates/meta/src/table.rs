//! Generic wide-metadata word table: packed fast path + interned wide tier.
//!
//! [`AtomicShadow`](crate::AtomicShadow) covers analyses whose per-byte
//! state fits a shadow byte. One rung up, analyses like LOCKSET pack their
//! whole per-variable state into a single CAS-able `u64`. The next rung —
//! a happens-before race detector whose per-variable read state is a
//! *vector clock* — does not fit any fixed-width word at all. This module
//! generalizes the word substrate for that whole family:
//!
//! * [`PackedWordTable`] — the lock-free `key → AtomicU64` table (lazily
//!   materialized chunks, CAS publication). The **fast path**: analyses
//!   encode their common-case state directly in the word.
//! * [`WideInterner<V>`] — reference-counted, epoch-reclaimed interning of
//!   arbitrary wide values `V`. The **slow path**: when a state outgrows
//!   the packed encoding, the analysis interns the wide value and packs the
//!   returned dense id into the word instead.
//! * [`WordTable<V>`] — both halves under one roof, constructed together so
//!   the id lifecycle and the word lifecycle share one worker-quiescence
//!   clock.
//!
//! # The ref-transfer contract
//!
//! A table word that embeds a wide id *holds one reference* on that id.
//! Publishing a transition therefore follows a strict order: acquire the
//! new id ([`WideInterner::intern_acquire`]) **before** the CAS, release
//! the displaced id ([`WideInterner::release`]) **after** the CAS succeeds
//! (or release the acquired id if it fails). The CAS's release ordering is
//! what publishes the interned value to other workers: the value is written
//! into its slot before the id ever escapes the intern mutex, so a reader
//! that acquire-loads a word containing the id also observes the value.
//!
//! # Reclamation and quiescence
//!
//! Freed ids are reused, which makes slot rewrites possible while lock-free
//! readers exist. Safety comes from the same epoch discipline the rest of
//! the §5.3 machinery uses: a worker only dereferences ids obtained from
//! words it loaded *during its current batch*, and an id is only recycled
//! once every live worker has crossed a batch boundary
//! ([`WideInterner::boundary`]) after the release. Threads outside the
//! worker protocol (tests, end-of-run fingerprints) must use the
//! mutex-taking [`WideInterner::value_locked`] instead.
//!
//! On id exhaustion the interner **saturates**: it hands out the permanent
//! id 0, pre-interned to [`MetaWord::saturated`] — each analysis' "know
//! nothing, over-approximate" value. Degradation is latched for the
//! session-event surface; it can change precision, never soundness.

use std::cell::UnsafeCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Keys per chunk (8192 × 8 bytes = 64 KiB per chunk).
const WORDS_PER_CHUNK: u64 = 1 << 13;

/// Dense first-level span: 2^18 chunks × 2^13 keys = 2^31 keys — a 4-byte
/// granule index over the same 8 GiB application span `AtomicShadow`'s
/// dense tier covers. Keys beyond it take the spill lock (rare sentinel
/// ranges only).
const DENSE_CHUNKS: u64 = 1 << 18;

/// Distinct wide values live at once per interner. Real workloads stay far
/// below this (lockset masks are intersections of ≤ 64-lock sets; read
/// vector clocks collapse back to epochs on every write); adversarial ones
/// saturate gracefully instead of dying.
pub const MAX_WIDE_IDS: usize = 1 << 16;

/// A value storable in a [`WordTable`]'s wide tier.
///
/// `Eq + Hash` drive interning (structurally equal values share an id).
/// [`saturated`](Self::saturated) is the conservative value the interner
/// degrades to when its id space is exhausted: it must over-approximate
/// every other value in whatever direction keeps the analysis sound
/// (LOCKSET: the full candidate mask, which can only *suppress* reports;
/// happens-before: the unknown-order sentinel, which can only *add* them).
pub trait MetaWord: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static {
    /// The sound over-approximation handed out on id exhaustion.
    fn saturated() -> Self;
}

/// Lock masks (LOCKSET's wide value): the full set over-approximates every
/// candidate set and can only suppress reports — sound for a detector whose
/// alarm condition is "candidates empty".
impl MetaWord for u64 {
    fn saturated() -> Self {
        u64::MAX
    }
}

/// A lock-free `key → AtomicU64` table with lazily materialized chunks.
///
/// Untouched keys read as 0. The hot path after first touch is a flat array
/// index plus one atomic access — no hashing, no locks. Writers publish new
/// values with [`compare_exchange`](Self::compare_exchange) (acquire/release
/// ordering), so a reader that observes a packed word also observes
/// everything the writer published before it. The all-zero word is reserved
/// for "never touched", so packed encodings keep 0 out of their live states.
#[derive(Debug)]
pub struct PackedWordTable {
    /// First level: chunk index → chunk, initialized on first touch.
    dense: Box<[OnceLock<Box<[AtomicU64]>>]>,
    /// Outlier chunks beyond the dense span. `Arc` lets an accessor clone a
    /// handle out of the lock and work without holding it.
    spill: Mutex<BTreeMap<u64, Arc<[AtomicU64]>>>,
}

impl Default for PackedWordTable {
    fn default() -> Self {
        PackedWordTable::new()
    }
}

fn new_chunk() -> Vec<AtomicU64> {
    (0..WORDS_PER_CHUNK).map(|_| AtomicU64::new(0)).collect()
}

impl PackedWordTable {
    /// An empty table; chunks materialize on first non-zero write.
    pub fn new() -> Self {
        PackedWordTable {
            dense: (0..DENSE_CHUNKS).map(|_| OnceLock::new()).collect(),
            spill: Mutex::new(BTreeMap::new()),
        }
    }

    /// Runs `f` over the chunk holding `key`. With `create` unset, untouched
    /// chunks are skipped (reads of clean keys must not allocate); otherwise
    /// the chunk is initialized race-free first.
    fn with_chunk<R>(&self, ci: u64, create: bool, f: impl FnOnce(&[AtomicU64]) -> R) -> Option<R> {
        if ci < DENSE_CHUNKS {
            let slot = &self.dense[ci as usize];
            return match (slot.get(), create) {
                (Some(chunk), _) => Some(f(chunk)),
                (None, true) => Some(f(slot.get_or_init(|| new_chunk().into_boxed_slice()))),
                (None, false) => None,
            };
        }
        let chunk: Arc<[AtomicU64]> = {
            let mut spill = self.spill.lock().expect("poisoned");
            match (spill.get(&ci), create) {
                (Some(chunk), _) => Arc::clone(chunk),
                (None, true) => {
                    let chunk: Arc<[AtomicU64]> = new_chunk().into();
                    spill.insert(ci, Arc::clone(&chunk));
                    chunk
                }
                (None, false) => return None,
            }
        };
        Some(f(&chunk))
    }

    /// Load-acquire of one key; untouched keys read 0 without allocating.
    pub fn load(&self, key: u64) -> u64 {
        self.with_chunk(key / WORDS_PER_CHUNK, false, |c| {
            c[(key % WORDS_PER_CHUNK) as usize].load(Ordering::Acquire)
        })
        .unwrap_or(0)
    }

    /// CAS-exchange on one key: publishes `new` iff the key still holds
    /// `current`. `Ok(current)` on success, `Err(actual)` on a lost race —
    /// the caller re-reads and recomputes its transition.
    ///
    /// Storing a non-zero value into an untouched chunk materializes it;
    /// the degenerate `0 → 0` exchange succeeds without allocating.
    pub fn compare_exchange(&self, key: u64, current: u64, new: u64) -> Result<u64, u64> {
        let create = current == 0 && new != 0;
        match self.with_chunk(key / WORDS_PER_CHUNK, create, |c| {
            c[(key % WORDS_PER_CHUNK) as usize].compare_exchange(
                current,
                new,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
        }) {
            Some(result) => result,
            // Chunk untouched and nothing to write: the key reads 0.
            None if current == 0 => Ok(0),
            None => Err(0),
        }
    }

    /// Calls `f(key, value)` for every key holding a non-zero word, in
    /// ascending chunk order (dense tier first, then spill).
    pub fn for_each_nonzero(&self, mut f: impl FnMut(u64, u64)) {
        let mut scan = |ci: u64, chunk: &[AtomicU64]| {
            let base = ci * WORDS_PER_CHUNK;
            for (off, word) in chunk.iter().enumerate() {
                let v = word.load(Ordering::Acquire);
                if v != 0 {
                    f(base + off as u64, v);
                }
            }
        };
        for (i, slot) in self.dense.iter().enumerate() {
            if let Some(chunk) = slot.get() {
                scan(i as u64, chunk);
            }
        }
        for (ci, chunk) in self.spill.lock().expect("poisoned").iter() {
            scan(*ci, chunk);
        }
    }
}

/// Interns wide metadata values into dense u32 ids so one packed
/// [`PackedWordTable`] word can reference state that outgrew it.
///
/// Interning is the §5.3 **slow path** — it runs only when an access
/// actually produces a new wide value (a metadata write) — while `id →
/// value` resolution ([`value`](Self::value)) is a lock-free read the fast
/// path may take on every access. Id 0 is pre-interned to
/// [`MetaWord::saturated`], permanent and never refcounted.
///
/// # Reclamation and degradation (unbounded uptime)
///
/// Ids are **reference-counted and reusable**: every table entry embedding
/// an id holds one reference, moved by the entry CAS (acquire the new id
/// before publishing, release the old one after). An id whose count reaches
/// zero is queued, stamped with the current epoch, and freed only once
/// every live worker has crossed a later batch boundary
/// ([`boundary`](Self::boundary)) — the quiescence gate that makes id reuse
/// safe against mid-record readers holding a stale entry word: such a
/// reader's slot cannot be rewritten under it, and its CAS necessarily
/// fails anyway (the entry changed when the id was released). Acquisition
/// happens *inside* the intern mutex, so the free-time `refs == 0` re-check
/// cannot race a revival.
///
/// When the id space is genuinely full — [`MAX_WIDE_IDS`] values all still
/// referenced — [`intern_acquire`](Self::intern_acquire) **saturates** to
/// id 0 instead of failing. The degradation is latched
/// ([`is_saturated`](Self::is_saturated)) for the session-event surface.
pub struct WideInterner<V: MetaWord> {
    /// id → value; valid while the id is live, rewritten on reuse. Written
    /// only under the state mutex; read lock-free under the quiescence
    /// contract (see [`value`](Self::value)).
    slots: Box<[UnsafeCell<Option<V>>]>,
    /// id → number of table entries currently holding the id. Id 0 is
    /// permanent and never counted.
    refs: Box<[AtomicU32]>,
    /// value → id map, allocation state, and the pending-free queue, behind
    /// the slow-path lock.
    state: Mutex<InternerState<V>>,
    /// The global quiescence clock, bumped by every worker boundary.
    epoch: AtomicU64,
    /// Per-worker epoch at its last batch boundary (`u64::MAX` once the
    /// worker's stream ended: it holds no stale reads and must not gate
    /// frees forever).
    worker_epochs: Box<[AtomicU64]>,
    /// Latched on first saturation; read by the session-event surface.
    saturated: AtomicBool,
}

// SAFETY: the `UnsafeCell` slots are written only under the `state` mutex,
// and cross-thread reads are governed by the happens-before edges the
// module docs lay out (release-CAS of the embedding word before a reader's
// acquire-load; worker-epoch release/acquire before a slot rewrite). `V` is
// `Send + Sync` by the `MetaWord` bound.
unsafe impl<V: MetaWord> Sync for WideInterner<V> {}

impl<V: MetaWord> fmt::Debug for WideInterner<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WideInterner")
            .field("workers", &self.worker_epochs.len())
            .field("saturated", &self.saturated)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct InternerState<V> {
    map: HashMap<V, u32>,
    /// Next never-used id; allocation prefers the free list.
    next: u32,
    free: Vec<u32>,
    /// (id, epoch it was queued in): freeable once every live worker's
    /// epoch exceeds the stamp and the count is still zero.
    pending: Vec<(u32, u64)>,
    /// id → already in `pending` (bounds queue growth under churn).
    queued: Vec<bool>,
    /// High-water mark of live ids (soak diagnostics).
    peak_live: usize,
}

impl<V: MetaWord> WideInterner<V> {
    /// An interner gated by `workers` replay lanes (at least one).
    pub fn new(workers: usize) -> Self {
        let mut map = HashMap::new();
        map.insert(V::saturated(), 0u32);
        let slots: Box<[UnsafeCell<Option<V>>]> =
            (0..MAX_WIDE_IDS).map(|_| UnsafeCell::new(None)).collect();
        // Slot 0 is written before the interner is shared: no readers yet.
        unsafe { *slots[0].get() = Some(V::saturated()) };
        WideInterner {
            slots,
            refs: (0..MAX_WIDE_IDS).map(|_| AtomicU32::new(0)).collect(),
            state: Mutex::new(InternerState {
                map,
                next: 1,
                free: Vec::new(),
                pending: Vec::new(),
                queued: vec![false; MAX_WIDE_IDS],
                peak_live: 1,
            }),
            epoch: AtomicU64::new(0),
            worker_epochs: (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect(),
            saturated: AtomicBool::new(false),
        }
    }

    /// The value behind a live id, read lock-free.
    ///
    /// # Safety
    ///
    /// The caller must be a replay worker inside the quiescence protocol,
    /// resolving an id it obtained from a word it acquire-loaded during its
    /// current batch (between [`boundary`](Self::boundary) calls on its own
    /// lane). That is what guarantees the slot is not rewritten mid-read:
    /// reuse requires a release *plus* a later boundary on every live lane.
    /// Any thread outside the worker protocol must use
    /// [`value_locked`](Self::value_locked).
    pub unsafe fn value(&self, id: u32) -> V {
        (*self.slots[id as usize].get())
            .as_ref()
            .expect("live id has a value")
            .clone()
    }

    /// The value behind a live id, taking the intern mutex — safe from any
    /// thread (fingerprints, status surfaces, tests), at slow-path cost.
    pub fn value_locked(&self, id: u32) -> V {
        let _state = self.state.lock().expect("poisoned");
        // SAFETY: slot writes only happen under the mutex we hold.
        unsafe {
            (*self.slots[id as usize].get())
                .as_ref()
                .expect("live id has a value")
                .clone()
        }
    }

    /// The id for `value` with one reference acquired for the caller, who
    /// must either publish it into a table entry or
    /// [`release`](Self::release) it. Interns the value if new; saturates
    /// to id 0 when the id space is exhausted.
    pub fn intern_acquire(&self, value: V) -> u32 {
        let mut state = self.state.lock().expect("poisoned");
        if let Some(&id) = state.map.get(&value) {
            if id != 0 {
                self.refs[id as usize].fetch_add(1, Ordering::Relaxed);
            }
            return id;
        }
        let Some(id) = state.free.pop().or_else(|| {
            ((state.next as usize) < MAX_WIDE_IDS).then(|| {
                state.next += 1;
                state.next - 1
            })
        }) else {
            // Exhausted: over-approximate with the saturated value. Sound
            // by the `MetaWord` contract, latched for the session-event
            // surface.
            self.saturated.store(true, Ordering::Release);
            return 0;
        };
        // Write the slot *before* the id escapes the lock; the caller's
        // release-CAS of the embedding word is the publication edge that
        // makes this write visible to lock-free `value()` readers.
        // SAFETY: we hold the mutex; the id is fresh or fully quiesced
        // (freed ids reach `free` only via `process_pending`).
        unsafe { *self.slots[id as usize].get() = Some(value.clone()) };
        self.refs[id as usize].store(1, Ordering::Relaxed);
        state.map.insert(value, id);
        state.peak_live = state.peak_live.max(state.map.len());
        id
    }

    /// Drops one reference on `id`; a count that reaches zero queues the id
    /// for an epoch-gated free.
    pub fn release(&self, id: u32) {
        if id == 0 {
            return;
        }
        if self.refs[id as usize].fetch_sub(1, Ordering::Release) != 1 {
            return;
        }
        let mut state = self.state.lock().expect("poisoned");
        // Re-check under the mutex: a concurrent intern_acquire may have
        // revived the id between our decrement and the lock.
        if !state.queued[id as usize] && self.refs[id as usize].load(Ordering::Relaxed) == 0 {
            state.queued[id as usize] = true;
            let epoch = self.epoch.load(Ordering::Relaxed);
            state.pending.push((id, epoch));
        }
    }

    /// Worker `w` crossed a stream batch boundary: no record application is
    /// in flight on it, so any entry word it read earlier is stale by
    /// contract. Advances the quiescence clock and frees every pending id
    /// all live workers have quiesced past.
    pub fn boundary(&self, w: usize) {
        let now = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(slot) = self.worker_epochs.get(w) {
            slot.store(now, Ordering::Release);
        }
        self.process_pending();
    }

    /// Worker `w`'s stream ended: it will never read another entry, so it
    /// must not gate reclamation.
    pub fn retire_worker(&self, w: usize) {
        if let Some(slot) = self.worker_epochs.get(w) {
            slot.store(u64::MAX, Ordering::Release);
        }
        self.process_pending();
    }

    fn process_pending(&self) {
        let min_active = self
            .worker_epochs
            .iter()
            .map(|e| e.load(Ordering::Acquire))
            .min()
            .unwrap_or(u64::MAX);
        let mut state = self.state.lock().expect("poisoned");
        let mut keep = Vec::new();
        for (id, stamped) in std::mem::take(&mut state.pending) {
            if stamped >= min_active {
                keep.push((id, stamped));
                continue;
            }
            state.queued[id as usize] = false;
            if self.refs[id as usize].load(Ordering::Acquire) == 0 {
                // SAFETY: mutex held; every lane quiesced past the release,
                // so no lock-free reader can still hold this id.
                let value = unsafe {
                    (*self.slots[id as usize].get())
                        .take()
                        .expect("pending id had a value")
                };
                let removed = state.map.remove(&value);
                debug_assert_eq!(removed, Some(id), "map/slot coherence");
                state.free.push(id);
            }
            // A non-zero count means the id was revived through the map; it
            // re-queues if it ever drops to zero again.
        }
        state.pending = keep;
    }

    /// Live interned values (including the permanent saturated one).
    pub fn live(&self) -> usize {
        self.state.lock().expect("poisoned").map.len()
    }

    /// High-water mark of [`live`](Self::live).
    pub fn peak_live(&self) -> usize {
        self.state.lock().expect("poisoned").peak_live
    }

    /// Whether the id space ever saturated.
    pub fn is_saturated(&self) -> bool {
        self.saturated.load(Ordering::Acquire)
    }
}

/// Packed fast path and interned wide tier under one roof: the metadata
/// substrate for word-granular concurrent lifeguards.
///
/// The packed half behaves exactly like a bare [`PackedWordTable`]; the
/// analysis owns the bit layout and decides when a state spills to the wide
/// tier (packing the interned id into the word under the ref-transfer
/// contract in the module docs). Constructing both together ties the id
/// lifecycle to the worker-quiescence clock the embedding words are read
/// under.
#[derive(Debug)]
pub struct WordTable<V: MetaWord> {
    packed: PackedWordTable,
    wide: WideInterner<V>,
}

impl<V: MetaWord> WordTable<V> {
    /// An empty table whose wide tier is gated by `workers` replay lanes.
    pub fn new(workers: usize) -> Self {
        WordTable {
            packed: PackedWordTable::new(),
            wide: WideInterner::new(workers),
        }
    }

    /// Load-acquire of one key; untouched keys read 0 without allocating.
    pub fn load(&self, key: u64) -> u64 {
        self.packed.load(key)
    }

    /// CAS-exchange on one key (see [`PackedWordTable::compare_exchange`]).
    pub fn compare_exchange(&self, key: u64, current: u64, new: u64) -> Result<u64, u64> {
        self.packed.compare_exchange(key, current, new)
    }

    /// Calls `f(key, value)` for every key holding a non-zero word.
    pub fn for_each_nonzero(&self, f: impl FnMut(u64, u64)) {
        self.packed.for_each_nonzero(f)
    }

    /// The wide tier.
    pub fn wide(&self) -> &WideInterner<V> {
        &self.wide
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_keys_read_zero_without_allocating() {
        let t = PackedWordTable::new();
        assert_eq!(t.load(0x1234), 0);
        assert!(t.dense[(0x1234 / WORDS_PER_CHUNK) as usize].get().is_none());
        // The degenerate 0 → 0 exchange also stays allocation-free.
        assert_eq!(t.compare_exchange(0x1234, 0, 0), Ok(0));
        assert!(t.dense[(0x1234 / WORDS_PER_CHUNK) as usize].get().is_none());
    }

    #[test]
    fn cas_publishes_and_detects_races() {
        let t = PackedWordTable::new();
        assert_eq!(t.compare_exchange(7, 0, 42), Ok(0));
        assert_eq!(t.load(7), 42);
        // Stale expectation loses and reports the actual value.
        assert_eq!(t.compare_exchange(7, 0, 99), Err(42));
        assert_eq!(t.compare_exchange(7, 42, 99), Ok(42));
        assert_eq!(t.load(7), 99);
        // A non-zero expectation against an untouched chunk loses as 0.
        assert_eq!(t.compare_exchange(WORDS_PER_CHUNK * 50, 5, 6), Err(0));
    }

    #[test]
    fn spill_tier_covers_far_keys() {
        let t = PackedWordTable::new();
        let far = DENSE_CHUNKS * WORDS_PER_CHUNK + 17;
        assert_eq!(t.load(far), 0);
        assert_eq!(t.compare_exchange(far, 0, 3), Ok(0));
        assert_eq!(t.load(far), 3);
        let mut seen = Vec::new();
        t.for_each_nonzero(|k, v| seen.push((k, v)));
        assert_eq!(seen, vec![(far, 3)]);
    }

    #[test]
    fn concurrent_cas_exactly_one_winner_per_transition() {
        let t = PackedWordTable::new();
        let wins: Vec<u64> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|me| {
                    let t = &t;
                    scope.spawn(move || {
                        let mut won = 0u64;
                        for _ in 0..256 {
                            loop {
                                let cur = t.load(9);
                                match t.compare_exchange(9, cur, cur + (1 << me)) {
                                    Ok(_) => {
                                        won += 1;
                                        break;
                                    }
                                    Err(_) => continue,
                                }
                            }
                        }
                        won
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .collect()
        });
        // Every increment landed exactly once despite the races.
        assert_eq!(wins, vec![256; 4]);
        assert_eq!(t.load(9), 256 * 0b1111);
    }

    /// A toy wide value exercising the non-`u64` path (vector-clock shaped).
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct Vc(Vec<(u16, u32)>);

    impl MetaWord for Vc {
        fn saturated() -> Self {
            Vc(vec![(u16::MAX, u32::MAX)])
        }
    }

    #[test]
    fn interner_dedups_and_recycles_after_quiescence() {
        let it: WideInterner<Vc> = WideInterner::new(2);
        let a = it.intern_acquire(Vc(vec![(0, 1)]));
        let b = it.intern_acquire(Vc(vec![(0, 1)]));
        assert_eq!(a, b, "structural equality shares an id");
        assert_ne!(a, 0);
        assert_eq!(it.value_locked(a), Vc(vec![(0, 1)]));
        let c = it.intern_acquire(Vc(vec![(1, 7)]));
        assert_ne!(c, a);
        assert_eq!(it.live(), 3);

        // Two releases drop `a` to zero; it frees only after both lanes
        // cross a boundary past the release.
        it.release(a);
        it.release(b);
        assert_eq!(it.live(), 3, "queued, not yet freed");
        it.boundary(0);
        assert_eq!(it.live(), 3, "one lane still unquiesced");
        it.boundary(1);
        it.boundary(0);
        assert_eq!(it.live(), 2, "freed after full quiescence");

        // The freed id is reused for a fresh value.
        let d = it.intern_acquire(Vc(vec![(2, 9)]));
        assert_eq!(d, a, "free list reuses the quiesced id");
        assert_eq!(it.value_locked(d), Vc(vec![(2, 9)]));
        assert_eq!(it.peak_live(), 3);
        assert!(!it.is_saturated());
    }

    #[test]
    fn interner_saturates_to_id_zero_when_full() {
        let it: WideInterner<u64> = WideInterner::new(1);
        assert_eq!(it.value_locked(0), u64::MAX, "id 0 is the saturated value");
        for v in 0..(MAX_WIDE_IDS as u64 - 1) {
            assert_ne!(it.intern_acquire(v), 0, "distinct live values get ids");
        }
        assert!(!it.is_saturated());
        let overflow = it.intern_acquire(u64::MAX - 1);
        assert_eq!(overflow, 0, "exhaustion saturates to id 0");
        assert!(it.is_saturated());
        // Releasing the saturated id is a no-op.
        it.release(0);
        assert_eq!(it.value_locked(0), u64::MAX);
    }

    #[test]
    fn revived_id_is_not_freed() {
        let it: WideInterner<u64> = WideInterner::new(1);
        let a = it.intern_acquire(42);
        it.release(a);
        // Revive through the map before quiescence.
        let b = it.intern_acquire(42);
        assert_eq!(a, b);
        it.boundary(0);
        it.boundary(0);
        assert_eq!(it.live(), 2, "revived id survives the pending sweep");
        assert_eq!(it.value_locked(b), 42);
    }

    #[test]
    fn word_table_combines_packed_and_wide_tiers() {
        let t: WordTable<Vc> = WordTable::new(1);
        let id = t.wide().intern_acquire(Vc(vec![(3, 5)]));
        assert_eq!(t.compare_exchange(11, 0, u64::from(id) << 32 | 1), Ok(0));
        let word = t.load(11);
        assert_eq!(t.wide().value_locked((word >> 32) as u32), Vc(vec![(3, 5)]));
        t.wide().retire_worker(0);
    }
}
