//! Two-level bit-packed shadow memory.
//!
//! §6 of the paper: both evaluated lifeguards organize metadata as a
//! two-level structure — a first-level pointer array indexed by the high bits
//! of the application address, pointing to lazily-allocated second-level
//! chunks indexed by the low bits. TAINTCHECK keeps 2 metadata bits per
//! application byte, ADDRCHECK 1 bit.
//!
//! The mapping from application bytes to metadata bytes is what makes the
//! §5.3 *bit-manipulation data race* argument go through: with `B` metadata
//! bits per application byte, one metadata byte covers `8/B` application
//! bytes — always fewer than a cache line — so two application addresses
//! whose metadata share a byte always share an application cache line, and
//! any write conflict between them is already ordered by captured arcs
//! (condition 3).

use paralog_events::{Addr, AddrRange};
use std::collections::HashMap;

/// Base virtual address of the metadata space (far above application space).
pub const META_BASE: Addr = 0x4000_0000_0000;

/// Application bytes covered by one second-level chunk.
pub const CHUNK_APP_BYTES: u64 = 64 * 1024;

/// A sparse, bit-packed shadow of the application address space.
///
/// `bits_per_byte` metadata bits (1, 2, 4 or 8) shadow each application
/// byte. Values are small unsigned integers in `0 .. 2^bits`.
#[derive(Debug, Clone)]
pub struct ShadowMemory {
    bits: u32,
    /// First level: chunk index → packed second-level chunk.
    chunks: HashMap<u64, Box<[u8]>>,
    /// Lazily-allocated chunk count (monitors metadata footprint).
    allocated_chunks: u64,
}

impl ShadowMemory {
    /// Creates a shadow with `bits_per_byte` metadata bits per application
    /// byte.
    ///
    /// # Panics
    ///
    /// Panics unless `bits_per_byte` is 1, 2, 4 or 8.
    pub fn new(bits_per_byte: u32) -> Self {
        assert!(
            matches!(bits_per_byte, 1 | 2 | 4 | 8),
            "unsupported metadata width: {bits_per_byte} bits/byte"
        );
        ShadowMemory { bits: bits_per_byte, chunks: HashMap::new(), allocated_chunks: 0 }
    }

    /// Metadata bits per application byte.
    pub fn bits_per_byte(&self) -> u32 {
        self.bits
    }

    /// Number of second-level chunks allocated so far.
    pub fn allocated_chunks(&self) -> u64 {
        self.allocated_chunks
    }

    /// Largest representable metadata value.
    pub fn max_value(&self) -> u8 {
        ((1u16 << self.bits) - 1) as u8
    }

    fn chunk_bytes(&self) -> usize {
        (CHUNK_APP_BYTES * self.bits as u64 / 8) as usize
    }

    fn locate(addr: Addr, bits: u32) -> (u64, usize, u32) {
        let chunk = addr / CHUNK_APP_BYTES;
        let offset = addr % CHUNK_APP_BYTES;
        let bit_offset = offset * bits as u64;
        ((chunk), (bit_offset / 8) as usize, (bit_offset % 8) as u32)
    }

    /// Reads the metadata value of one application byte (clean = 0 if never
    /// written).
    pub fn get(&self, addr: Addr) -> u8 {
        let (chunk, byte, shift) = Self::locate(addr, self.bits);
        match self.chunks.get(&chunk) {
            Some(data) => (data[byte] >> shift) & self.max_value(),
            None => 0,
        }
    }

    /// Writes the metadata value of one application byte.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the metadata width.
    pub fn set(&mut self, addr: Addr, value: u8) {
        assert!(value <= self.max_value(), "metadata value {value} out of range");
        let bits = self.bits;
        let chunk_bytes = self.chunk_bytes();
        let (chunk, byte, shift) = Self::locate(addr, bits);
        let allocated = &mut self.allocated_chunks;
        let data = self.chunks.entry(chunk).or_insert_with(|| {
            *allocated += 1;
            vec![0u8; chunk_bytes].into_boxed_slice()
        });
        let mask = ((1u16 << bits) - 1) as u8;
        data[byte] = (data[byte] & !(mask << shift)) | (value << shift);
    }

    /// Joins (bitwise-ORs) the metadata of every byte in `range` — the
    /// "taintedness of a multi-byte operand" operation.
    pub fn join_range(&self, range: AddrRange) -> u8 {
        let mut acc = 0;
        for a in range.start..range.end() {
            acc |= self.get(a);
        }
        acc
    }

    /// Sets every byte of `range` to `value`.
    pub fn set_range(&mut self, range: AddrRange, value: u8) {
        for a in range.start..range.end() {
            self.set(a, value);
        }
    }

    /// Copies metadata byte-for-byte from `src` to `dst` (`len` bytes) —
    /// the memory-to-memory propagation IT coalesces into one event.
    pub fn copy_range(&mut self, dst: Addr, src: Addr, len: u64) {
        for i in 0..len {
            let v = self.get(src + i);
            self.set(dst + i, v);
        }
    }

    /// Reads the packed metadata values of `range` (one `u8` per application
    /// byte) — used to snapshot versioned metadata under TSO.
    pub fn snapshot(&self, range: AddrRange) -> Vec<u8> {
        (range.start..range.end()).map(|a| self.get(a)).collect()
    }

    /// Restores a snapshot produced by [`ShadowMemory::snapshot`].
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the range.
    pub fn restore(&mut self, range: AddrRange, snapshot: &[u8]) {
        assert_eq!(snapshot.len() as u64, range.len, "snapshot length mismatch");
        for (i, &v) in snapshot.iter().enumerate() {
            self.set(range.start + i as u64, v);
        }
    }

    /// The metadata virtual address shadowing `app_addr` — what the M-TLB
    /// computes in hardware and handler code computes in software via the
    /// two-level walk.
    pub fn meta_addr(&self, app_addr: Addr) -> Addr {
        META_BASE + app_addr * self.bits as u64 / 8
    }

    /// The metadata addresses (first and last byte) touched when shadowing an
    /// access of `size` bytes at `app_addr`; feeds the lifeguard-core cache
    /// model.
    pub fn meta_footprint(&self, app_addr: Addr, size: u64) -> AddrRange {
        let first = self.meta_addr(app_addr);
        let last = self.meta_addr(app_addr + size.max(1) - 1);
        AddrRange::new(first, last - first + 1)
    }

    /// Iterates `(application address, value)` pairs for every byte with
    /// non-clean metadata. Chunk iteration order is unspecified; callers that
    /// need determinism must combine results order-insensitively.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Addr, u8)> + '_ {
        let bits = self.bits;
        let max = self.max_value();
        self.chunks.iter().flat_map(move |(chunk, data)| {
            let base = chunk * CHUNK_APP_BYTES;
            (0..CHUNK_APP_BYTES).filter_map(move |off| {
                let bit_offset = off * bits as u64;
                let v = (data[(bit_offset / 8) as usize] >> (bit_offset % 8)) & max;
                if v != 0 {
                    Some((base + off, v))
                } else {
                    None
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let s = ShadowMemory::new(2);
        assert_eq!(s.get(0x1234), 0);
        assert_eq!(s.join_range(AddrRange::new(0, 1024)), 0);
        assert_eq!(s.allocated_chunks(), 0, "reads never allocate");
    }

    #[test]
    fn set_get_roundtrip_all_widths() {
        for bits in [1u32, 2, 4, 8] {
            let mut s = ShadowMemory::new(bits);
            let max = s.max_value();
            for addr in [0u64, 1, 7, 63, 64, CHUNK_APP_BYTES - 1, CHUNK_APP_BYTES + 5] {
                s.set(addr, max);
                assert_eq!(s.get(addr), max, "bits={bits} addr={addr}");
                s.set(addr, 0);
                assert_eq!(s.get(addr), 0);
            }
        }
    }

    #[test]
    fn neighbours_do_not_clobber() {
        let mut s = ShadowMemory::new(2);
        s.set(100, 0b11);
        s.set(101, 0b01);
        s.set(102, 0b10);
        assert_eq!(s.get(100), 0b11);
        assert_eq!(s.get(101), 0b01);
        assert_eq!(s.get(102), 0b10);
        s.set(101, 0);
        assert_eq!(s.get(100), 0b11);
        assert_eq!(s.get(102), 0b10);
    }

    #[test]
    fn join_range_ors_values() {
        let mut s = ShadowMemory::new(2);
        s.set(10, 0b01);
        s.set(13, 0b10);
        assert_eq!(s.join_range(AddrRange::new(10, 4)), 0b11);
        assert_eq!(s.join_range(AddrRange::new(11, 2)), 0);
    }

    #[test]
    fn copy_range_propagates() {
        let mut s = ShadowMemory::new(2);
        s.set_range(AddrRange::new(0x100, 4), 0b11);
        s.copy_range(0x200, 0x100, 4);
        assert_eq!(s.join_range(AddrRange::new(0x200, 4)), 0b11);
        // Copy of clean over tainted cleans.
        s.copy_range(0x200, 0x300, 4);
        assert_eq!(s.join_range(AddrRange::new(0x200, 4)), 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ShadowMemory::new(1);
        let r = AddrRange::new(0x40, 8);
        s.set(0x41, 1);
        s.set(0x46, 1);
        let snap = s.snapshot(r);
        s.set_range(r, 0);
        s.restore(r, &snap);
        assert_eq!(s.get(0x41), 1);
        assert_eq!(s.get(0x46), 1);
        assert_eq!(s.get(0x40), 0);
    }

    #[test]
    fn meta_addr_mapping() {
        let taint = ShadowMemory::new(2); // 1 meta byte per 4 app bytes
        assert_eq!(taint.meta_addr(0), META_BASE);
        assert_eq!(taint.meta_addr(4), META_BASE + 1);
        let addrcheck = ShadowMemory::new(1); // 1 meta byte per 8 app bytes
        assert_eq!(addrcheck.meta_addr(8), META_BASE + 1);
        // Footprint of an aligned 4-byte access in 2-bit shadow = 1 metadata
        // byte; unaligned accesses straddle two.
        assert_eq!(taint.meta_footprint(0, 4).len, 1);
        assert_eq!(taint.meta_footprint(4, 4).len, 1);
        assert_eq!(taint.meta_footprint(2, 4).len, 2);
    }

    #[test]
    fn bit_manipulation_race_condition_three() {
        // Two app addresses whose metadata share a byte must share an app
        // cache line (64B) — §5.3 condition 3.
        let s = ShadowMemory::new(2);
        for a in 0u64..256 {
            for b in (a + 1)..256 {
                if s.meta_addr(a) == s.meta_addr(b) {
                    assert_eq!(a / 64, b / 64, "addrs {a},{b} share meta byte across lines");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_value_rejected() {
        let mut s = ShadowMemory::new(1);
        s.set(0, 2);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_width_rejected() {
        let _ = ShadowMemory::new(3);
    }
}
