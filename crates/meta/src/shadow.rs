//! Flat two-level bit-packed shadow memory.
//!
//! §6 of the paper: both evaluated lifeguards organize metadata as a
//! two-level structure — a **first-level pointer array indexed directly by
//! the high bits of the application address**, pointing to lazily-allocated
//! second-level chunks indexed by the low bits. TAINTCHECK keeps 2 metadata
//! bits per application byte, ADDRCHECK 1 bit.
//!
//! # Layout
//!
//! This module implements that design literally:
//!
//! * **First level** — a dense `Vec<Option<Box<[u8]>>>` indexed by
//!   `addr / CHUNK_APP_BYTES` (the high address bits). The table grows on
//!   demand to the highest chunk ever written, so lookups are a single
//!   bounds-checked array index — no hashing, no probing. Reads beyond the
//!   table (and reads of unallocated chunks) return clean metadata without
//!   allocating.
//! * **Second level** — one bit-packed chunk of
//!   `CHUNK_APP_BYTES * bits / 8` metadata bytes per allocated first-level
//!   slot, shadowing 64 KiB of application space.
//! * **Last-chunk cache** — a one-entry cache of the most recently touched
//!   *dense chunk index*, mirroring the paper's observation that
//!   consecutive events overwhelmingly hit the same second-level chunk. No
//!   pointer is cached — a hit re-indexes `l1` (skipping only the bounds
//!   and allocation checks), so `Clone` stays trivially sound. The index
//!   stays valid because dense chunks are never freed and the first level
//!   never shrinks; see the invariant on [`ShadowMemory`].
//!
//! # Word-wise range operations
//!
//! All range operations ([`ShadowMemory::join_range`],
//! [`ShadowMemory::set_range`], [`ShadowMemory::copy_range`],
//! [`ShadowMemory::snapshot`], [`ShadowMemory::restore`]) work on whole
//! packed metadata bytes with head/tail masks — an N-application-byte fill
//! touches `N·bits/8` metadata bytes via `memset`/`memcpy`-style loops (and
//! 8-byte words in the `join_range` scan), not N read-modify-write probes.
//! Writes of clean (zero) metadata to never-allocated chunks are skipped
//! entirely, preserving sparsity.
//!
//! The mapping from application bytes to metadata bytes is what makes the
//! §5.3 *bit-manipulation data race* argument go through: with `B` metadata
//! bits per application byte, one metadata byte covers `8/B` application
//! bytes — always fewer than a cache line — so two application addresses
//! whose metadata share a byte always share an application cache line, and
//! any write conflict between them is already ordered by captured arcs
//! (condition 3).

use paralog_events::{Addr, AddrRange};
use std::cell::Cell;

/// Base virtual address of the metadata space (far above application space).
pub const META_BASE: Addr = 0x4000_0000_0000;

/// Application bytes covered by one second-level chunk.
pub const CHUNK_APP_BYTES: u64 = 64 * 1024;

/// Chunk-index budget of the dense first level: 2^21 chunks = 128 GiB of
/// application space. Real working sets live far below this; the handful
/// of synthesized sentinel addresses beyond it (e.g. the simulator's
/// barrier slots near 16 TiB) fall into the sorted spill tier instead of
/// forcing a multi-gigabyte pointer table.
const DENSE_CHUNKS: u64 = 1 << 21;

/// Sentinel for "cache empty".
const NO_CHUNK: u64 = u64::MAX;

/// Stack-buffer window (in metadata bytes) used by `copy_range`.
const COPY_WINDOW: usize = 512;

/// A sparse, bit-packed shadow of the application address space.
///
/// `bits_per_byte` metadata bits (1, 2, 4 or 8) shadow each application
/// byte. Values are small unsigned integers in `0 .. 2^bits`.
///
/// # Cache invariant
///
/// `cache_idx` is either `NO_CHUNK` or the index of a first-level slot
/// known to be in bounds and allocated. Chunks are never freed and the
/// first level never shrinks, so the invariant is stable once established;
/// every cache hit re-borrows the chunk freshly (no pointers are retained
/// across calls, keeping the aliasing model happy).
#[derive(Debug, Clone)]
pub struct ShadowMemory {
    bits: u32,
    /// First level: dense chunk-index → packed second-level chunk, for
    /// chunk indices below [`DENSE_CHUNKS`].
    l1: Vec<Option<Box<[u8]>>>,
    /// Far-outlier chunks (sentinel addresses beyond the dense span);
    /// ordered so [`ShadowMemory::iter_nonzero`] stays sorted.
    spill: std::collections::BTreeMap<u64, Box<[u8]>>,
    /// Lazily-allocated chunk count (monitors metadata footprint).
    allocated_chunks: u64,
    /// One-entry last-chunk cache (see the invariant above).
    cache_idx: Cell<u64>,
}

impl ShadowMemory {
    /// Creates a shadow with `bits_per_byte` metadata bits per application
    /// byte.
    ///
    /// # Panics
    ///
    /// Panics unless `bits_per_byte` is 1, 2, 4 or 8.
    pub fn new(bits_per_byte: u32) -> Self {
        assert!(
            matches!(bits_per_byte, 1 | 2 | 4 | 8),
            "unsupported metadata width: {bits_per_byte} bits/byte"
        );
        ShadowMemory {
            bits: bits_per_byte,
            l1: Vec::new(),
            spill: std::collections::BTreeMap::new(),
            allocated_chunks: 0,
            cache_idx: Cell::new(NO_CHUNK),
        }
    }

    /// Metadata bits per application byte.
    pub fn bits_per_byte(&self) -> u32 {
        self.bits
    }

    /// Number of second-level chunks allocated so far.
    pub fn allocated_chunks(&self) -> u64 {
        self.allocated_chunks
    }

    /// Largest representable metadata value.
    pub fn max_value(&self) -> u8 {
        ((1u16 << self.bits) - 1) as u8
    }

    /// Application bytes sharing one packed metadata byte.
    #[inline]
    fn lanes_per_byte(&self) -> u64 {
        8 / self.bits as u64
    }

    /// The metadata value replicated across every lane of a byte.
    #[inline]
    fn pattern(&self, value: u8) -> u8 {
        let mut p = value;
        let mut width = self.bits;
        while width < 8 {
            p |= p << width;
            width *= 2;
        }
        p
    }

    fn chunk_bytes(&self) -> usize {
        (CHUNK_APP_BYTES * self.bits as u64 / 8) as usize
    }

    /// Read-only view of a chunk's packed bytes, if allocated.
    #[inline]
    fn chunk(&self, ci: u64) -> Option<&[u8]> {
        if ci < DENSE_CHUNKS {
            self.l1.get(ci as usize)?.as_deref()
        } else {
            self.spill.get(&ci).map(|b| &**b)
        }
    }

    /// First-level walk with allocation: grows the table (or the spill
    /// tier, for far outliers) and the chunk. Only dense chunks enter the
    /// one-entry cache, preserving the cache invariant.
    fn ensure_chunk(&mut self, ci: u64) -> &mut [u8] {
        let chunk_bytes = self.chunk_bytes();
        if ci < DENSE_CHUNKS {
            let idx = ci as usize;
            if idx >= self.l1.len() {
                self.l1.resize_with(idx + 1, || None);
            }
            let slot = &mut self.l1[idx];
            if slot.is_none() {
                *slot = Some(vec![0u8; chunk_bytes].into_boxed_slice());
                self.allocated_chunks += 1;
            }
            self.cache_idx.set(ci);
            self.l1[idx].as_deref_mut().expect("just ensured")
        } else {
            let allocated = &mut self.allocated_chunks;
            self.spill.entry(ci).or_insert_with(|| {
                *allocated += 1;
                vec![0u8; chunk_bytes].into_boxed_slice()
            })
        }
    }

    /// Calls back with `(chunk index, lo_bit, hi_bit)` for every
    /// chunk-resident segment of `range` — the one audited home of the
    /// chunk-split and bit-boundary math shared by the single-range
    /// word-wise walkers. (`copy_range` is the lone exception: it windows
    /// over *two* ranges at once, so it derives its splits inline.)
    #[inline]
    fn segments(range: AddrRange, bits: u64) -> impl Iterator<Item = (u64, u64, u64)> {
        let end = range.end();
        let mut a = range.start;
        std::iter::from_fn(move || {
            if a >= end {
                return None;
            }
            let ci = a / CHUNK_APP_BYTES;
            let seg_end = end.min((ci + 1) * CHUNK_APP_BYTES);
            let lo_bit = (a % CHUNK_APP_BYTES) * bits;
            let hi_bit = match seg_end % CHUNK_APP_BYTES {
                0 => CHUNK_APP_BYTES * bits,
                r => r * bits,
            };
            a = seg_end;
            Some((ci, lo_bit, hi_bit))
        })
    }

    /// Splits an application address into (chunk index, packed byte offset,
    /// in-byte bit shift).
    #[inline]
    fn locate(addr: Addr, bits: u32) -> (u64, usize, u32) {
        let chunk = addr / CHUNK_APP_BYTES;
        let offset = addr % CHUNK_APP_BYTES;
        let bit_offset = offset * bits as u64;
        (chunk, (bit_offset / 8) as usize, (bit_offset % 8) as u32)
    }

    /// Reads the metadata value of one application byte (clean = 0 if never
    /// written).
    #[inline]
    pub fn get(&self, addr: Addr) -> u8 {
        let (ci, byte, shift) = Self::locate(addr, self.bits);
        if self.cache_idx.get() == ci {
            // SAFETY: the cache invariant — slot `ci` is in bounds and
            // allocated — lets the hit path skip the first-level checks.
            let data = unsafe {
                self.l1
                    .get_unchecked(ci as usize)
                    .as_deref()
                    .unwrap_unchecked()
            };
            return (data[byte] >> shift) & self.max_value();
        }
        match self.chunk(ci) {
            Some(data) => {
                // Only dense chunks may enter the cache (see the invariant);
                // spill-tier hits always take this checked path.
                if ci < DENSE_CHUNKS {
                    self.cache_idx.set(ci);
                }
                (data[byte] >> shift) & self.max_value()
            }
            None => 0,
        }
    }

    /// Writes the metadata value of one application byte.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the metadata width.
    #[inline]
    pub fn set(&mut self, addr: Addr, value: u8) {
        assert!(
            value <= self.max_value(),
            "metadata value {value} out of range"
        );
        let mask = self.max_value();
        let (ci, byte, shift) = Self::locate(addr, self.bits);
        if self.cache_idx.get() == ci {
            // SAFETY: cache invariant as in `get`; the fresh `&mut`
            // reborrow keeps exclusive access properly scoped.
            let data = unsafe {
                self.l1
                    .get_unchecked_mut(ci as usize)
                    .as_deref_mut()
                    .unwrap_unchecked()
            };
            data[byte] = (data[byte] & !(mask << shift)) | (value << shift);
            return;
        }
        if value == 0 && self.chunk(ci).is_none() {
            // Clean write to a clean chunk: keep it unallocated.
            return;
        }
        let data = self.ensure_chunk(ci);
        data[byte] = (data[byte] & !(mask << shift)) | (value << shift);
    }

    /// Joins (bitwise-ORs) the metadata of every byte in `range` — the
    /// "taintedness of a multi-byte operand" operation.
    ///
    /// Word-wise: unallocated chunks are skipped whole, allocated spans are
    /// scanned as packed bytes (8 at a time), and only the partial head/tail
    /// bytes are masked down to the covered lanes.
    pub fn join_range(&self, range: AddrRange) -> u8 {
        if range.len == 0 {
            return 0;
        }
        let bits = self.bits as u64;
        let mut acc: u8 = 0;
        for (ci, lo_bit, hi_bit) in Self::segments(range, bits) {
            let Some(data) = self.chunk(ci) else {
                continue;
            };
            let (byte_lo, head_shift) = ((lo_bit / 8) as usize, (lo_bit % 8) as u32);
            let (byte_hi, tail_bits) = ((hi_bit / 8) as usize, (hi_bit % 8) as u32);
            if byte_lo == byte_hi {
                // Entirely within one packed byte.
                let mask = (((1u16 << (hi_bit - lo_bit)) - 1) as u8) << head_shift;
                acc |= data[byte_lo] & mask;
            } else {
                let mut b = byte_lo;
                if head_shift != 0 {
                    acc |= data[b] & (0xffu8 << head_shift);
                    b += 1;
                }
                // Full bytes, 8 at a time.
                let full = &data[b..byte_hi];
                let mut word_acc = 0u64;
                let mut chunks = full.chunks_exact(8);
                for w in &mut chunks {
                    word_acc |= u64::from_ne_bytes(w.try_into().expect("8-byte chunk"));
                }
                for &byte in chunks.remainder() {
                    acc |= byte;
                }
                let mut w = word_acc;
                w |= w >> 32;
                w |= w >> 16;
                w |= w >> 8;
                acc |= w as u8;
                if tail_bits != 0 {
                    acc |= data[byte_hi] & (((1u16 << tail_bits) - 1) as u8);
                }
            }
        }
        self.collapse_lanes(acc)
    }

    /// Whether every byte of `range` carries exactly `value` — the
    /// "all bytes inside a live allocation" check, word-wise: full packed
    /// bytes compare against the replicated pattern, head/tail bytes under
    /// a lane mask, and unallocated chunks short-circuit against zero.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the metadata width.
    pub fn eq_range(&self, range: AddrRange, value: u8) -> bool {
        assert!(
            value <= self.max_value(),
            "metadata value {value} out of range"
        );
        let bits = self.bits as u64;
        let pattern = self.pattern(value);
        for (ci, lo_bit, hi_bit) in Self::segments(range, bits) {
            let Some(data) = self.chunk(ci) else {
                if value != 0 {
                    return false;
                }
                continue;
            };
            let (byte_lo, head_shift) = ((lo_bit / 8) as usize, (lo_bit % 8) as u32);
            let (byte_hi, tail_bits) = ((hi_bit / 8) as usize, (hi_bit % 8) as u32);
            if byte_lo == byte_hi {
                let mask = (((1u16 << (hi_bit - lo_bit)) - 1) as u8) << head_shift;
                if (data[byte_lo] ^ pattern) & mask != 0 {
                    return false;
                }
            } else {
                let mut b = byte_lo;
                if head_shift != 0 {
                    if (data[b] ^ pattern) & (0xffu8 << head_shift) != 0 {
                        return false;
                    }
                    b += 1;
                }
                if data[b..byte_hi].iter().any(|&byte| byte != pattern) {
                    return false;
                }
                if tail_bits != 0
                    && (data[byte_hi] ^ pattern) & (((1u16 << tail_bits) - 1) as u8) != 0
                {
                    return false;
                }
            }
        }
        true
    }

    /// ORs every lane of a packed byte into a single metadata value.
    #[inline]
    fn collapse_lanes(&self, mut b: u8) -> u8 {
        if self.bits <= 4 {
            b |= b >> 4;
        }
        if self.bits <= 2 {
            b |= b >> 2;
        }
        if self.bits == 1 {
            b |= b >> 1;
        }
        b & self.max_value()
    }

    /// Sets every byte of `range` to `value`.
    ///
    /// Word-wise: the value is replicated into a fill pattern and written
    /// with a `memset` per chunk segment, masking only the partial head and
    /// tail bytes. Zero fills skip unallocated chunks entirely.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in the metadata width.
    pub fn set_range(&mut self, range: AddrRange, value: u8) {
        assert!(
            value <= self.max_value(),
            "metadata value {value} out of range"
        );
        let bits = self.bits as u64;
        let pattern = self.pattern(value);
        for (ci, lo_bit, hi_bit) in Self::segments(range, bits) {
            if value == 0 && self.chunk(ci).is_none() {
                continue;
            }
            let data = self.ensure_chunk(ci);
            write_pattern(data, lo_bit, hi_bit, pattern);
        }
    }

    /// Copies metadata byte-for-byte from `src` to `dst` (`len` bytes) —
    /// the memory-to-memory propagation IT coalesces into one event.
    ///
    /// Disjoint ranges take a packed-byte `memcpy` path (windowed through a
    /// stack buffer, head/tail lanes masked); overlapping ranges keep the
    /// ascending per-byte semantics of the scalar loop, which deliberately
    /// re-reads freshly written bytes (`memcpy`, not `memmove`, semantics —
    /// matching a lifeguard replaying per-byte propagation in order).
    pub fn copy_range(&mut self, dst: Addr, src: Addr, len: u64) {
        if len == 0 || dst == src {
            return;
        }
        let overlaps = src.abs_diff(dst) < len;
        let lpb = self.lanes_per_byte();
        if overlaps || src % lpb != dst % lpb {
            // Overlap (rare) keeps exact ascending-order semantics;
            // lane-phase mismatch (src and dst straddle packed bytes
            // differently) would need a bit-shifted copy — also rare.
            for i in 0..len {
                let v = self.get(src + i);
                self.set(dst + i, v);
            }
            return;
        }
        let bits = self.bits as u64;
        let mut buf = [0u8; COPY_WINDOW];
        let mut done = 0u64;
        while done < len {
            let s = src + done;
            let d = dst + done;
            let sci = s / CHUNK_APP_BYTES;
            let dci = d / CHUNK_APP_BYTES;
            // One window: bounded by both chunk boundaries and the buffer.
            let room = (len - done)
                .min((sci + 1) * CHUNK_APP_BYTES - s)
                .min((dci + 1) * CHUNK_APP_BYTES - d)
                .min(COPY_WINDOW as u64 * lpb - (s % lpb));
            let lo_bit = (s % CHUNK_APP_BYTES) * bits;
            let hi_bit = lo_bit + room * bits;
            let byte_lo = (lo_bit / 8) as usize;
            let byte_hi_incl = ((hi_bit - 1) / 8) as usize;
            let n = byte_hi_incl - byte_lo + 1;
            match self.chunk(sci) {
                Some(data) => buf[..n].copy_from_slice(&data[byte_lo..byte_lo + n]),
                None => buf[..n].fill(0),
            }
            // Mask away neighbor lanes outside the copied range: the write
            // path masks them anyway, and the clean-copy skip below must
            // judge only the bytes actually being copied.
            buf[0] &= 0xffu8 << (lo_bit % 8);
            let tail = (hi_bit % 8) as u32;
            if tail != 0 {
                buf[n - 1] &= ((1u16 << tail) - 1) as u8;
            }
            let dst_lo_bit = (d % CHUNK_APP_BYTES) * bits;
            let dst_hi_bit = dst_lo_bit + room * bits;
            if buf[..n].iter().all(|&b| b == 0) && self.chunk(dci).is_none() {
                done += room;
                continue;
            }
            let ddata = self.ensure_chunk(dci);
            write_bytes_masked(ddata, dst_lo_bit, dst_hi_bit, &buf[..n]);
            done += room;
        }
    }

    /// Reads the packed metadata values of `range` (one `u8` per application
    /// byte) — used to snapshot versioned metadata under TSO.
    ///
    /// Word-wise: each packed metadata byte is read once and its covered
    /// lanes unpacked, instead of one two-level walk per application byte.
    pub fn snapshot(&self, range: AddrRange) -> Vec<u8> {
        let mut out = Vec::with_capacity(range.len as usize);
        let bits = self.bits;
        let lpb = self.lanes_per_byte();
        let max = self.max_value();
        for (ci, lo_bit, hi_bit) in Self::segments(range, bits as u64) {
            let seg_len = (hi_bit - lo_bit) / bits as u64;
            match self.chunk(ci) {
                None => out.resize(out.len() + seg_len as usize, 0),
                Some(data) => {
                    let mut off = lo_bit / bits as u64;
                    let seg_end = off + seg_len;
                    while off < seg_end {
                        let byte = data[(off * bits as u64 / 8) as usize];
                        let lane0 = off % lpb;
                        let lanes = (lpb - lane0).min(seg_end - off);
                        for l in lane0..lane0 + lanes {
                            out.push((byte >> (l as u32 * bits)) & max);
                        }
                        off += lanes;
                    }
                }
            }
        }
        out
    }

    /// Restores a snapshot produced by [`ShadowMemory::snapshot`].
    ///
    /// Word-wise: lanes are packed eight-at-a-time (for 1-bit metadata) into
    /// whole bytes and merged under a lane mask, one write per packed byte.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the range, or if a
    /// snapshot value does not fit in the metadata width.
    pub fn restore(&mut self, range: AddrRange, snapshot: &[u8]) {
        assert_eq!(snapshot.len() as u64, range.len, "snapshot length mismatch");
        let bits = self.bits;
        let lpb = self.lanes_per_byte();
        let max = self.max_value();
        let mut i = 0usize;
        for (ci, lo_bit, hi_bit) in Self::segments(range, bits as u64) {
            let seg_len = ((hi_bit - lo_bit) / bits as u64) as usize;
            let seg_vals = &snapshot[i..i + seg_len];
            i += seg_len;
            if seg_vals.iter().all(|&v| v == 0) && self.chunk(ci).is_none() {
                continue;
            }
            let data = self.ensure_chunk(ci);
            let mut off = lo_bit / bits as u64;
            let seg_end = off + seg_len as u64;
            let mut vi = 0usize;
            while off < seg_end {
                let bidx = (off * bits as u64 / 8) as usize;
                let lane0 = off % lpb;
                let lanes = (lpb - lane0).min(seg_end - off);
                let mut new_bits = 0u8;
                let mut mask = 0u8;
                for l in lane0..lane0 + lanes {
                    let v = seg_vals[vi];
                    vi += 1;
                    assert!(v <= max, "snapshot value {v} out of range");
                    new_bits |= v << (l as u32 * bits);
                    mask |= max << (l as u32 * bits);
                }
                data[bidx] = (data[bidx] & !mask) | new_bits;
                off += lanes;
            }
        }
    }

    /// The metadata virtual address shadowing `app_addr` — what the M-TLB
    /// computes in hardware and handler code computes in software via the
    /// two-level walk.
    pub fn meta_addr(&self, app_addr: Addr) -> Addr {
        META_BASE + app_addr * self.bits as u64 / 8
    }

    /// The metadata addresses (first and last byte) touched when shadowing an
    /// access of `size` bytes at `app_addr`; feeds the lifeguard-core cache
    /// model.
    pub fn meta_footprint(&self, app_addr: Addr, size: u64) -> AddrRange {
        let first = self.meta_addr(app_addr);
        let last = self.meta_addr(app_addr + size.max(1) - 1);
        AddrRange::new(first, last - first + 1)
    }

    /// Iterates `(application address, value)` pairs for every byte with
    /// non-clean metadata, in ascending address order (the flat first level
    /// makes iteration deterministic).
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Addr, u8)> + '_ {
        let bits = self.bits;
        let max = self.max_value();
        let lpb = self.lanes_per_byte();
        self.l1
            .iter()
            .enumerate()
            .filter_map(|(ci, slot)| slot.as_deref().map(|data| (ci as u64, data)))
            .chain(self.spill.iter().map(|(&ci, data)| (ci, &**data)))
            .flat_map(move |(ci, data)| {
                let base = ci * CHUNK_APP_BYTES;
                data.iter()
                    .enumerate()
                    // Clean packed bytes are skipped whole — one read covers
                    // all their lanes.
                    .filter(|&(_, &byte)| byte != 0)
                    .flat_map(move |(bidx, &byte)| {
                        (0..lpb).filter_map(move |lane| {
                            let v = (byte >> (lane as u32 * bits)) & max;
                            (v != 0).then_some((base + bidx as u64 * lpb + lane, v))
                        })
                    })
            })
    }
}

/// Writes `pattern` into the packed bit range `[lo_bit, hi_bit)` of a chunk,
/// masking partial head/tail bytes and `memset`ting the full middle.
fn write_pattern(data: &mut [u8], lo_bit: u64, hi_bit: u64, pattern: u8) {
    let (byte_lo, head_shift) = ((lo_bit / 8) as usize, (lo_bit % 8) as u32);
    let (byte_hi, tail_bits) = ((hi_bit / 8) as usize, (hi_bit % 8) as u32);
    if byte_lo == byte_hi {
        let mask = (((1u16 << (hi_bit - lo_bit)) - 1) as u8) << head_shift;
        data[byte_lo] = (data[byte_lo] & !mask) | (pattern & mask);
        return;
    }
    let mut b = byte_lo;
    if head_shift != 0 {
        let mask = 0xffu8 << head_shift;
        data[b] = (data[b] & !mask) | (pattern & mask);
        b += 1;
    }
    data[b..byte_hi].fill(pattern);
    if tail_bits != 0 {
        let mask = ((1u16 << tail_bits) - 1) as u8;
        data[byte_hi] = (data[byte_hi] & !mask) | (pattern & mask);
    }
}

/// Writes source bytes `src` over the packed bit range `[lo_bit, hi_bit)`,
/// masking partial head/tail bytes and `memcpy`ing the full middle. `src`
/// must carry the same in-byte alignment as the destination range.
fn write_bytes_masked(data: &mut [u8], lo_bit: u64, hi_bit: u64, src: &[u8]) {
    let (byte_lo, head_shift) = ((lo_bit / 8) as usize, (lo_bit % 8) as u32);
    let (byte_hi, tail_bits) = ((hi_bit / 8) as usize, (hi_bit % 8) as u32);
    if byte_lo == byte_hi {
        let mask = (((1u16 << (hi_bit - lo_bit)) - 1) as u8) << head_shift;
        data[byte_lo] = (data[byte_lo] & !mask) | (src[0] & mask);
        return;
    }
    let mut b = byte_lo;
    let mut s = 0usize;
    if head_shift != 0 {
        let mask = 0xffu8 << head_shift;
        data[b] = (data[b] & !mask) | (src[s] & mask);
        b += 1;
        s += 1;
    }
    let full = byte_hi - b;
    data[b..byte_hi].copy_from_slice(&src[s..s + full]);
    if tail_bits != 0 {
        let mask = ((1u16 << tail_bits) - 1) as u8;
        data[byte_hi] = (data[byte_hi] & !mask) | (src[s + full] & mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        let s = ShadowMemory::new(2);
        assert_eq!(s.get(0x1234), 0);
        assert_eq!(s.join_range(AddrRange::new(0, 1024)), 0);
        assert_eq!(s.allocated_chunks(), 0, "reads never allocate");
    }

    #[test]
    fn set_get_roundtrip_all_widths() {
        for bits in [1u32, 2, 4, 8] {
            let mut s = ShadowMemory::new(bits);
            let max = s.max_value();
            for addr in [0u64, 1, 7, 63, 64, CHUNK_APP_BYTES - 1, CHUNK_APP_BYTES + 5] {
                s.set(addr, max);
                assert_eq!(s.get(addr), max, "bits={bits} addr={addr}");
                s.set(addr, 0);
                assert_eq!(s.get(addr), 0);
            }
        }
    }

    #[test]
    fn neighbours_do_not_clobber() {
        let mut s = ShadowMemory::new(2);
        s.set(100, 0b11);
        s.set(101, 0b01);
        s.set(102, 0b10);
        assert_eq!(s.get(100), 0b11);
        assert_eq!(s.get(101), 0b01);
        assert_eq!(s.get(102), 0b10);
        s.set(101, 0);
        assert_eq!(s.get(100), 0b11);
        assert_eq!(s.get(102), 0b10);
    }

    #[test]
    fn join_range_ors_values() {
        let mut s = ShadowMemory::new(2);
        s.set(10, 0b01);
        s.set(13, 0b10);
        assert_eq!(s.join_range(AddrRange::new(10, 4)), 0b11);
        assert_eq!(s.join_range(AddrRange::new(11, 2)), 0);
    }

    #[test]
    fn copy_range_propagates() {
        let mut s = ShadowMemory::new(2);
        s.set_range(AddrRange::new(0x100, 4), 0b11);
        s.copy_range(0x200, 0x100, 4);
        assert_eq!(s.join_range(AddrRange::new(0x200, 4)), 0b11);
        // Copy of clean over tainted cleans.
        s.copy_range(0x200, 0x300, 4);
        assert_eq!(s.join_range(AddrRange::new(0x200, 4)), 0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = ShadowMemory::new(1);
        let r = AddrRange::new(0x40, 8);
        s.set(0x41, 1);
        s.set(0x46, 1);
        let snap = s.snapshot(r);
        s.set_range(r, 0);
        s.restore(r, &snap);
        assert_eq!(s.get(0x41), 1);
        assert_eq!(s.get(0x46), 1);
        assert_eq!(s.get(0x40), 0);
    }

    #[test]
    fn meta_addr_mapping() {
        let taint = ShadowMemory::new(2); // 1 meta byte per 4 app bytes
        assert_eq!(taint.meta_addr(0), META_BASE);
        assert_eq!(taint.meta_addr(4), META_BASE + 1);
        let addrcheck = ShadowMemory::new(1); // 1 meta byte per 8 app bytes
        assert_eq!(addrcheck.meta_addr(8), META_BASE + 1);
        // Footprint of an aligned 4-byte access in 2-bit shadow = 1 metadata
        // byte; unaligned accesses straddle two.
        assert_eq!(taint.meta_footprint(0, 4).len, 1);
        assert_eq!(taint.meta_footprint(4, 4).len, 1);
        assert_eq!(taint.meta_footprint(2, 4).len, 2);
    }

    #[test]
    fn bit_manipulation_race_condition_three() {
        // Two app addresses whose metadata share a byte must share an app
        // cache line (64B) — §5.3 condition 3.
        let s = ShadowMemory::new(2);
        for a in 0u64..256 {
            for b in (a + 1)..256 {
                if s.meta_addr(a) == s.meta_addr(b) {
                    assert_eq!(a / 64, b / 64, "addrs {a},{b} share meta byte across lines");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_value_rejected() {
        let mut s = ShadowMemory::new(1);
        s.set(0, 2);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn unsupported_width_rejected() {
        let _ = ShadowMemory::new(3);
    }

    // --- flat-layout and word-wise specific coverage ---------------------

    /// Bit-exact reference model for differential checks.
    fn naive_set_range(model: &mut std::collections::BTreeMap<u64, u8>, r: AddrRange, v: u8) {
        for a in r.start..r.end() {
            if v == 0 {
                model.remove(&a);
            } else {
                model.insert(a, v);
            }
        }
    }

    #[test]
    fn range_ops_match_model_across_alignments() {
        for bits in [1u32, 2, 4, 8] {
            let mut s = ShadowMemory::new(bits);
            let mut model = std::collections::BTreeMap::new();
            let max = s.max_value();
            // Misaligned starts/lengths around chunk and byte boundaries.
            let cases = [
                (3u64, 1u64),
                (5, 7),
                (0, 64),
                (61, 9),
                (CHUNK_APP_BYTES - 3, 6),
                (CHUNK_APP_BYTES * 2 - 10, CHUNK_APP_BYTES + 20),
                (1, 4096),
            ];
            for (i, &(start, len)) in cases.iter().enumerate() {
                let v = (i as u8 % max.max(1)).max(1).min(max);
                let r = AddrRange::new(start, len);
                s.set_range(r, v);
                naive_set_range(&mut model, r, v);
            }
            // Clear one window back to zero.
            let clear = AddrRange::new(30, 40);
            s.set_range(clear, 0);
            naive_set_range(&mut model, clear, 0);
            for a in 0..(CHUNK_APP_BYTES * 3 + 64) {
                assert_eq!(
                    s.get(a),
                    model.get(&a).copied().unwrap_or(0),
                    "bits={bits} addr={a}"
                );
            }
            let expect = model
                .range(0..CHUNK_APP_BYTES * 4)
                .fold(0u8, |acc, (_, v)| acc | v);
            assert_eq!(s.join_range(AddrRange::new(0, CHUNK_APP_BYTES * 4)), expect);
        }
    }

    #[test]
    fn cross_chunk_copy_and_snapshot() {
        for bits in [1u32, 2, 4, 8] {
            let mut s = ShadowMemory::new(bits);
            let max = s.max_value();
            let src = CHUNK_APP_BYTES - 17;
            let len = 40;
            for i in 0..len {
                s.set(src + i, (i as u8 % max.max(1)).min(max));
            }
            // Same lane phase far away, crossing a chunk boundary on write.
            let dst = CHUNK_APP_BYTES * 3 - 17;
            s.copy_range(dst, src, len);
            for i in 0..len {
                assert_eq!(s.get(dst + i), s.get(src + i), "bits={bits} i={i}");
            }
            let snap = s.snapshot(AddrRange::new(src, len));
            let mut t = ShadowMemory::new(bits);
            t.restore(AddrRange::new(src, len), &snap);
            for i in 0..len {
                assert_eq!(t.get(src + i), s.get(src + i), "restore bits={bits} i={i}");
            }
        }
    }

    #[test]
    fn overlapping_copy_keeps_ascending_semantics() {
        let mut s = ShadowMemory::new(2);
        s.set(0x100, 0b11);
        // Ascending per-byte copy smears the first byte forward.
        s.copy_range(0x101, 0x100, 4);
        for a in 0x100..0x105 {
            assert_eq!(s.get(a), 0b11, "addr {a:#x}");
        }
    }

    #[test]
    fn zero_fills_do_not_allocate() {
        let mut s = ShadowMemory::new(2);
        s.set_range(AddrRange::new(0, CHUNK_APP_BYTES * 4), 0);
        s.set(CHUNK_APP_BYTES * 7 + 3, 0);
        s.copy_range(0x9_0000, 0x5_0000, 256);
        assert_eq!(s.allocated_chunks(), 0, "clean writes keep chunks sparse");
    }

    #[test]
    fn far_outlier_addresses_use_spill_tier() {
        // The simulator synthesizes sentinel addresses near 16 TiB (e.g.
        // barrier slots); they must work without a giant dense table.
        let mut s = ShadowMemory::new(2);
        let far = 0xFFF_FFFF_F000u64;
        s.set(far, 0b10);
        assert_eq!(s.get(far), 0b10);
        s.set_range(AddrRange::new(far, 32), 0b01);
        assert_eq!(s.join_range(AddrRange::new(far, 32)), 0b01);
        assert!(s.eq_range(AddrRange::new(far, 32), 0b01));
        assert_eq!(s.allocated_chunks(), 1, "one spill chunk");
        // Nearby low address still lands in the dense tier, and iteration
        // stays sorted across the tier boundary.
        s.set(0x100, 0b11);
        let all: Vec<(u64, u8)> = s.iter_nonzero().collect();
        assert_eq!(all.first(), Some(&(0x100, 0b11)));
        assert_eq!(all.last(), Some(&(far + 31, 0b01)));
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "sorted");
    }

    #[test]
    fn spill_tier_addresses_never_enter_cache() {
        // Regression: a cache-miss read of a spill-tier chunk must not cache
        // its index — a later access would take the unsafe dense-tier hit
        // path and index `l1` out of bounds.
        let mut s = ShadowMemory::new(2);
        let far = 0xFFF_FFFF_F000u64;
        s.set(far, 1);
        assert_eq!(s.get(far), 1);
        assert_eq!(s.get(far), 1, "repeated spill read stays on checked path");
        s.set(far, 0b10);
        assert_eq!(s.get(far), 0b10, "spill write after read stays checked");
        // And a dense access afterwards still works and caches normally.
        s.set(0x40, 0b01);
        assert_eq!(s.get(0x40), 0b01);
        assert_eq!(s.get(far), 0b10);
    }

    #[test]
    fn clean_copy_next_to_dirty_lane_does_not_allocate() {
        // A nonzero *neighbor* lane sharing the source's packed head byte
        // must not defeat the clean-copy skip.
        let mut s = ShadowMemory::new(2);
        s.set(0, 0b11);
        let before = s.allocated_chunks();
        s.copy_range(CHUNK_APP_BYTES * 3 + 1, 1, 3);
        assert_eq!(s.allocated_chunks(), before, "copied bytes were all clean");
        assert_eq!(s.join_range(AddrRange::new(CHUNK_APP_BYTES * 3, 8)), 0);
    }

    #[test]
    fn iter_nonzero_is_sorted_and_exact() {
        let mut s = ShadowMemory::new(2);
        s.set(CHUNK_APP_BYTES + 5, 0b01);
        s.set(3, 0b10);
        s.set(CHUNK_APP_BYTES * 2, 0b11);
        let got: Vec<(u64, u8)> = s.iter_nonzero().collect();
        assert_eq!(
            got,
            vec![
                (3, 0b10),
                (CHUNK_APP_BYTES + 5, 0b01),
                (CHUNK_APP_BYTES * 2, 0b11)
            ]
        );
    }

    #[test]
    fn clone_is_independent_and_cache_safe() {
        let mut s = ShadowMemory::new(2);
        s.set(100, 0b11);
        let _ = s.get(100); // warm the cache
        let mut c = s.clone();
        c.set(100, 0b01);
        assert_eq!(s.get(100), 0b11, "clone must not alias the original");
        assert_eq!(c.get(100), 0b01);
    }

    #[test]
    fn large_fill_then_join_word_path() {
        let mut s = ShadowMemory::new(2);
        let r = AddrRange::new(0x1003, 4096);
        s.set_range(r, 0b10);
        assert_eq!(s.join_range(r), 0b10);
        assert_eq!(s.get(0x1002), 0);
        assert_eq!(s.get(0x1003 + 4096), 0);
        assert_eq!(s.join_range(AddrRange::new(0, 0x1003)), 0);
    }
}
