//! Lock-free atomic shadow memory for real-thread replay.
//!
//! The deterministic simulator establishes *that* the ordering design is
//! correct; the real-thread executor demonstrates it holds under genuine
//! concurrency, sharing this shadow without any locks on the hot path — the
//! §5.3 synchronization-free fast path, valid for lifeguards (like
//! TaintCheck) whose application reads map to metadata reads and whose
//! enforced arcs carry the release/acquire edges.
//!
//! Earlier revisions pre-scanned the whole captured streams to build the
//! chunk index up front. Streaming ingestion removed that option — a
//! replayed stream's footprint is unknown until its tail arrives — so the
//! index is now **lazily grown**: a flat first level of [`OnceLock`] slots
//! (one per 64 KiB application chunk) covering the dense application span,
//! initialized race-free by whichever worker touches a chunk first, plus a
//! mutex-protected spill map for far outliers. Hot-path accesses after the
//! first touch remain a plain array index and an atomic byte access — no
//! locks, no hashing.

use crate::fingerprint::Fingerprint;
use paralog_events::MemRef;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Application bytes per atomic shadow chunk.
const CHUNK: u64 = 64 * 1024;

/// Dense first-level span: 2^17 chunks × 64 KiB = 8 GiB of application
/// space — covering every address region the platform uses (heap, private,
/// shared, sync words) with a 2 MiB slot table. Addresses beyond it take
/// the spill lock (rare sentinel ranges only).
const DENSE_CHUNKS: u64 = 1 << 17;

/// A lock-free shadow memory: one `AtomicU8` per application byte behind a
/// flat, lazily initialized first-level chunk index. Mirroring
/// [`ShadowMemory`](crate::ShadowMemory)'s layout, a hot-path access is a
/// direct array index off the high address bits — no hashing — and
/// `join`/`fill` run chunk-resident slice loops instead of re-walking the
/// index per byte.
#[derive(Debug)]
pub struct AtomicShadow {
    /// First level: chunk index → chunk, initialized on first touch.
    dense: Box<[OnceLock<Box<[AtomicU8]>>]>,
    /// Outlier chunks beyond the dense span. `Arc` lets an accessor clone a
    /// handle out of the lock and run its slice loop without holding it.
    spill: Mutex<BTreeMap<u64, Arc<[AtomicU8]>>>,
}

impl Default for AtomicShadow {
    fn default() -> Self {
        AtomicShadow::new()
    }
}

fn new_chunk() -> Vec<AtomicU8> {
    (0..CHUNK).map(|_| AtomicU8::new(0)).collect()
}

impl AtomicShadow {
    /// An empty shadow; chunks materialize on first write.
    pub fn new() -> Self {
        AtomicShadow {
            dense: (0..DENSE_CHUNKS).map(|_| OnceLock::new()).collect(),
            spill: Mutex::new(BTreeMap::new()),
        }
    }

    /// Runs `f` over the chunk shadowing `a..`'s segment. With `create`
    /// unset, untouched chunks are skipped (reads of clean memory must not
    /// allocate); otherwise the chunk is initialized race-free first.
    fn with_chunk<R>(&self, ci: u64, create: bool, f: impl FnOnce(&[AtomicU8]) -> R) -> Option<R> {
        if ci < DENSE_CHUNKS {
            let slot = &self.dense[ci as usize];
            return match (slot.get(), create) {
                (Some(chunk), _) => Some(f(chunk)),
                (None, true) => Some(f(slot.get_or_init(|| new_chunk().into_boxed_slice()))),
                (None, false) => None,
            };
        }
        let chunk: Arc<[AtomicU8]> = {
            let mut spill = self.spill.lock().expect("poisoned");
            match (spill.get(&ci), create) {
                (Some(chunk), _) => Arc::clone(chunk),
                (None, true) => {
                    let chunk: Arc<[AtomicU8]> = new_chunk().into();
                    spill.insert(ci, Arc::clone(&chunk));
                    chunk
                }
                (None, false) => return None,
            }
        };
        Some(f(&chunk))
    }

    /// Chunk-resident ranged OR: one index walk per chunk segment, then a
    /// straight slice loop.
    pub fn join_range(&self, addr: u64, len: u64) -> u8 {
        let mut acc = 0;
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            let lo = (a % CHUNK) as usize;
            let hi = lo + (seg_end - a) as usize;
            if let Some(v) = self.with_chunk(a / CHUNK, false, |c| {
                c[lo..hi]
                    .iter()
                    .fold(0, |acc, byte| acc | byte.load(Ordering::Acquire))
            }) {
                acc |= v;
            }
            a = seg_end;
        }
        acc
    }

    /// Chunk-resident ranged store. Writing clean (zero) metadata to a
    /// never-touched chunk is skipped entirely, preserving sparsity.
    pub fn fill_range(&self, addr: u64, len: u64, v: u8) {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            let lo = (a % CHUNK) as usize;
            let hi = lo + (seg_end - a) as usize;
            self.with_chunk(a / CHUNK, v != 0, |c| {
                for byte in &c[lo..hi] {
                    byte.store(v, Ordering::Release);
                }
            });
            a = seg_end;
        }
    }

    /// Chunk-resident bulk store: publishes `bytes` over
    /// `addr..addr+bytes.len()`, one release store per byte. The
    /// delta-merge flush primitive: a worker's pending window publishes as
    /// written *spans* without inspecting values for equal-value runs.
    /// Mirrors [`fill_range`](Self::fill_range)'s sparsity rule: an
    /// all-zero span does not materialize a never-touched chunk (untouched
    /// reads as clean zero already).
    pub fn store_range(&self, addr: u64, bytes: &[u8]) {
        let mut a = addr;
        let end = addr + bytes.len() as u64;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            let lo = (a % CHUNK) as usize;
            let hi = lo + (seg_end - a) as usize;
            let src = &bytes[(a - addr) as usize..(seg_end - addr) as usize];
            let create = src.iter().any(|b| *b != 0);
            self.with_chunk(a / CHUNK, create, |c| {
                for (byte, v) in c[lo..hi].iter().zip(src) {
                    byte.store(*v, Ordering::Release);
                }
            });
            a = seg_end;
        }
    }

    /// Chunk-resident ranged equality: whether every byte of the range
    /// holds exactly `v`. Untouched chunks read as clean (all-zero), so a
    /// never-written range equals `v` iff `v == 0`.
    pub fn eq_range(&self, addr: u64, len: u64, v: u8) -> bool {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            let lo = (a % CHUNK) as usize;
            let hi = lo + (seg_end - a) as usize;
            let seg_eq = self
                .with_chunk(a / CHUNK, false, |c| {
                    c[lo..hi]
                        .iter()
                        .all(|byte| byte.load(Ordering::Acquire) == v)
                })
                .unwrap_or(v == 0);
            if !seg_eq {
                return false;
            }
            a = seg_end;
        }
        true
    }

    /// Copies the shadow of `addr..addr+len` out byte-wise (the §5.5
    /// produce-version snapshot). Untouched chunks contribute clean zeros
    /// without allocating.
    pub fn snapshot(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            let lo = (a % CHUNK) as usize;
            let hi = lo + (seg_end - a) as usize;
            let off = (a - addr) as usize;
            self.with_chunk(a / CHUNK, false, |c| {
                for (dst, byte) in out[off..off + (hi - lo)].iter_mut().zip(&c[lo..hi]) {
                    *dst = byte.load(Ordering::Acquire);
                }
            });
            a = seg_end;
        }
        out
    }

    /// Joins (bitwise-ORs) the shadow of one memory operand.
    pub fn join(&self, mem: MemRef) -> u8 {
        self.join_range(mem.addr, u64::from(mem.size))
    }

    /// Fills one memory operand's shadow with `v`.
    pub fn fill(&self, mem: MemRef, v: u8) {
        self.fill_range(mem.addr, u64::from(mem.size), v);
    }

    /// Order-insensitive fingerprint, compatible with the deterministic
    /// lifeguards' metadata fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        let mut mix_chunk = |ci: u64, data: &[AtomicU8]| {
            let chunk_base = ci * CHUNK;
            for (off, byte) in data.iter().enumerate() {
                let v = byte.load(Ordering::Acquire);
                if v != 0 {
                    fp.mix(chunk_base + off as u64, u64::from(v));
                }
            }
        };
        for (i, slot) in self.dense.iter().enumerate() {
            if let Some(data) = slot.get() {
                mix_chunk(i as u64, data);
            }
        }
        for (ci, data) in self.spill.lock().expect("poisoned").iter() {
            mix_chunk(*ci, data);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_chunks_cover_dense_and_spill() {
        let far = (DENSE_CHUNKS + 10) * CHUNK + 0x100;
        let shadow = AtomicShadow::new();
        shadow.fill_range(0x1000, 4, 3);
        shadow.fill_range(far, 4, 5);
        assert_eq!(shadow.join_range(0x1000, 4), 3);
        assert_eq!(shadow.join_range(far, 4), 5);
        // Untouched addresses read clean without allocating.
        assert_eq!(shadow.join_range(0x9999_0000, 8), 0);
        assert!(shadow.dense[0x9999_0000 / CHUNK as usize].get().is_none());
    }

    #[test]
    fn clean_fills_do_not_allocate() {
        let shadow = AtomicShadow::new();
        shadow.fill_range(0x4000, 64, 0);
        assert!(shadow.dense[(0x4000 / CHUNK) as usize].get().is_none());
    }

    #[test]
    fn ranges_crossing_chunks_stay_consistent() {
        let shadow = AtomicShadow::new();
        let boundary = CHUNK * 3;
        shadow.fill_range(boundary - 8, 16, 1);
        assert_eq!(shadow.join_range(boundary - 8, 16), 1);
        assert_eq!(shadow.join_range(boundary - 1, 2), 1);
        shadow.fill_range(boundary - 8, 16, 0);
        assert_eq!(shadow.join_range(boundary - 8, 16), 0);
    }

    #[test]
    fn eq_range_and_snapshot_cover_chunk_seams_and_clean_space() {
        let shadow = AtomicShadow::new();
        let boundary = CHUNK * 5;
        shadow.fill_range(boundary - 4, 8, 1);
        assert!(shadow.eq_range(boundary - 4, 8, 1));
        assert!(!shadow.eq_range(boundary - 5, 9, 1), "leading clean byte");
        assert!(shadow.eq_range(0x7000, 64, 0), "untouched space is clean");
        assert!(!shadow.eq_range(0x7000, 64, 1));
        let snap = shadow.snapshot(boundary - 6, 12);
        assert_eq!(snap, vec![0, 0, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0]);
        assert_eq!(shadow.snapshot(0x9000, 4), vec![0; 4], "clean snapshot");
    }

    #[test]
    fn fingerprint_tracks_nonzero_bytes() {
        let shadow = AtomicShadow::new();
        let before = shadow.fingerprint();
        shadow.fill(MemRef::new(0x2000, 4), 1);
        assert_ne!(shadow.fingerprint(), before);
        shadow.fill(MemRef::new(0x2000, 4), 0);
        assert_eq!(shadow.fingerprint(), before);
    }

    #[test]
    fn concurrent_first_touch_is_race_free() {
        let shadow = AtomicShadow::new();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let shadow = &shadow;
                scope.spawn(move || {
                    for i in 0..64 {
                        shadow.fill_range(CHUNK * 7 + t * 256 + i, 1, 1);
                    }
                });
            }
        });
        assert_eq!(shadow.join_range(CHUNK * 7, 4 * 256), 1);
    }
}
