//! Lock-free atomic shadow memory for real-thread replay.
//!
//! The deterministic simulator establishes *that* the ordering design is
//! correct; the real-thread executor demonstrates it holds under genuine
//! concurrency, sharing this shadow without any locks — the §5.3
//! synchronization-free fast path, valid for lifeguards (like TaintCheck)
//! whose application reads map to metadata reads and whose enforced arcs
//! carry the release/acquire edges.

use crate::fingerprint::Fingerprint;
use paralog_events::{EventPayload, EventRecord, MemRef};
use std::sync::atomic::{AtomicU8, Ordering};

/// Application bytes per atomic shadow chunk.
const CHUNK: u64 = 4096;

/// Chunk-index budget of the dense first level (2^21 chunks = 8 GiB of
/// application space at 4 KiB chunks — far more than any workload's working
/// set, yet only a 16 MiB pointer table).
const DENSE_LIMIT: u64 = 1 << 21;

/// A lock-free shadow memory: one `AtomicU8` per application byte, organized
/// behind a **flat first-level chunk index** pre-built from the streams'
/// footprint (the parallel phase performs lookups only, so the table is
/// shared immutably). Mirroring [`ShadowMemory`](crate::ShadowMemory)'s
/// layout, a hot-path access is a direct array index off the high address
/// bits — no hashing — and `join`/`fill` run chunk-resident slice loops
/// instead of re-walking the index per byte. The rare far outliers beyond
/// the dense span (a handful of sentinel addresses per run) live in a small
/// sorted side table found by binary search.
#[derive(Debug)]
pub struct AtomicShadow {
    /// First chunk index covered by `dense` (the footprint rarely starts
    /// at address zero, so the table is offset to stay compact).
    base: u64,
    /// First level: `chunk index - base` → chunk, `None` where untouched.
    dense: Vec<Option<Box<[AtomicU8]>>>,
    /// Outlier chunks beyond `base + DENSE_LIMIT`, sorted by chunk index.
    sparse: Vec<(u64, Box<[AtomicU8]>)>,
}

impl AtomicShadow {
    /// Pre-allocates chunks for every byte the streams may touch.
    pub fn for_streams(streams: &[Vec<EventRecord>]) -> Self {
        // Collect the touched chunk indices (bounded by stream length, not
        // by address span).
        let mut touched = std::collections::BTreeSet::new();
        for stream in streams {
            for rec in stream {
                let (addr, len) = match &rec.payload {
                    EventPayload::Instr(i) => match i.mem_access() {
                        Some((m, _)) => (m.addr, u64::from(m.size)),
                        None => continue,
                    },
                    EventPayload::Ca(ca) => match ca.range {
                        Some(r) => (r.start, r.len),
                        None => continue,
                    },
                };
                for c in (addr / CHUNK)..=((addr + len.max(1) - 1) / CHUNK) {
                    touched.insert(c);
                }
            }
        }
        let new_chunk = || {
            (0..CHUNK)
                .map(|_| AtomicU8::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        };
        let base = touched.first().copied().unwrap_or(0);
        let dense_len = touched
            .range(..base + DENSE_LIMIT)
            .next_back()
            .map_or(0, |&hi| hi - base + 1);
        let mut dense: Vec<Option<Box<[AtomicU8]>>> = Vec::new();
        dense.resize_with(dense_len as usize, || None);
        let mut sparse = Vec::new();
        for ci in touched {
            if ci < base + DENSE_LIMIT {
                dense[(ci - base) as usize] = Some(new_chunk());
            } else {
                sparse.push((ci, new_chunk()));
            }
        }
        AtomicShadow {
            base,
            dense,
            sparse,
        }
    }

    /// The chunk shadowing `addr`, if inside the pre-built footprint.
    #[inline]
    fn chunk(&self, addr: u64) -> Option<&[AtomicU8]> {
        let ci = addr / CHUNK;
        if let Some(idx) = ci.checked_sub(self.base) {
            if (idx as usize) < self.dense.len() {
                return self.dense[idx as usize].as_deref();
            }
        }
        self.sparse
            .binary_search_by_key(&ci, |(c, _)| *c)
            .ok()
            .map(|i| &*self.sparse[i].1)
    }

    /// Chunk-resident ranged OR: one index walk per chunk segment, then a
    /// straight slice loop.
    pub fn join_range(&self, addr: u64, len: u64) -> u8 {
        let mut acc = 0;
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            if let Some(c) = self.chunk(a) {
                let lo = (a % CHUNK) as usize;
                let hi = lo + (seg_end - a) as usize;
                for byte in &c[lo..hi] {
                    acc |= byte.load(Ordering::Acquire);
                }
            }
            a = seg_end;
        }
        acc
    }

    /// Chunk-resident ranged store.
    pub fn fill_range(&self, addr: u64, len: u64, v: u8) {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            if let Some(c) = self.chunk(a) {
                let lo = (a % CHUNK) as usize;
                let hi = lo + (seg_end - a) as usize;
                for byte in &c[lo..hi] {
                    byte.store(v, Ordering::Release);
                }
            }
            a = seg_end;
        }
    }

    /// Joins (bitwise-ORs) the shadow of one memory operand.
    pub fn join(&self, mem: MemRef) -> u8 {
        self.join_range(mem.addr, u64::from(mem.size))
    }

    /// Fills one memory operand's shadow with `v`.
    pub fn fill(&self, mem: MemRef, v: u8) {
        self.fill_range(mem.addr, u64::from(mem.size), v);
    }

    /// Order-insensitive fingerprint, compatible with the deterministic
    /// lifeguards' metadata fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        let mut mix_chunk = |ci: u64, data: &[AtomicU8]| {
            let chunk_base = ci * CHUNK;
            for (off, byte) in data.iter().enumerate() {
                let v = byte.load(Ordering::Acquire);
                if v != 0 {
                    fp.mix(chunk_base + off as u64, u64::from(v));
                }
            }
        };
        for (i, slot) in self.dense.iter().enumerate() {
            if let Some(data) = slot.as_deref() {
                mix_chunk(self.base + i as u64, data);
            }
        }
        for (ci, data) in &self.sparse {
            mix_chunk(*ci, data);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{Instr, Reg, Rid};

    fn stream_touching(addrs: &[u64]) -> Vec<Vec<EventRecord>> {
        vec![addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                EventRecord::instr(
                    Rid(i as u64 + 1),
                    Instr::Store {
                        dst: MemRef::new(a, 4),
                        src: Reg::new(0),
                    },
                )
            })
            .collect()]
    }

    #[test]
    fn footprint_prebuild_covers_dense_and_sparse() {
        let far = (DENSE_LIMIT + 10) * CHUNK + 0x100;
        let shadow = AtomicShadow::for_streams(&stream_touching(&[0x1000, far]));
        shadow.fill_range(0x1000, 4, 3);
        shadow.fill_range(far, 4, 5);
        assert_eq!(shadow.join_range(0x1000, 4), 3);
        assert_eq!(shadow.join_range(far, 4), 5);
        // Untouched (and un-prebuilt) addresses read clean.
        assert_eq!(shadow.join_range(0x9999_0000, 8), 0);
    }

    #[test]
    fn fingerprint_tracks_nonzero_bytes() {
        let shadow = AtomicShadow::for_streams(&stream_touching(&[0x2000]));
        let before = shadow.fingerprint();
        shadow.fill(MemRef::new(0x2000, 4), 1);
        assert_ne!(shadow.fingerprint(), before);
        shadow.fill(MemRef::new(0x2000, 4), 0);
        assert_eq!(shadow.fingerprint(), before);
    }
}
