//! Order-insensitive metadata fingerprints.
//!
//! Equivalence testing compares the final metadata of a parallel run against
//! a sequential reference (and of the real-thread executor against the
//! deterministic simulator). Metadata lives in hash-map-backed and
//! concurrently-updated structures whose iteration order is unstable, so the
//! fingerprint must be commutative across `(key, value)` pairs.

/// FNV-1a accumulator for metadata fingerprints.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    /// Creates the initial fingerprint state.
    pub fn new() -> Self {
        Fingerprint(0xcbf2_9ce4_8422_2325)
    }

    /// Mixes one `(key, value)` pair; commutative across pairs via xor-fold
    /// so iteration order of hash maps does not matter.
    pub fn mix(&mut self, key: u64, value: u64) {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in key.to_le_bytes().into_iter().chain(value.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.0 ^= h;
    }

    /// Final value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_insensitive() {
        let mut a = Fingerprint::new();
        a.mix(1, 10);
        a.mix(2, 20);
        let mut b = Fingerprint::new();
        b.mix(2, 20);
        b.mix(1, 10);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_distinguishes_values() {
        let mut a = Fingerprint::new();
        a.mix(1, 10);
        let mut b = Fingerprint::new();
        b.mix(1, 11);
        assert_ne!(a.finish(), b.finish());
    }
}
