//! Metadata substrate for ParaLog lifeguards.
//!
//! Lifeguards maintain *metadata* (shadow state) for every application memory
//! location (§2). This crate provides:
//!
//! * [`ShadowMemory`] — the two-level, bit-packed shadow structure both
//!   evaluated lifeguards use (2 bits/byte for TAINTCHECK, 1 bit/byte for
//!   ADDRCHECK), including the application→metadata address mapping that the
//!   Metadata TLB accelerates;
//! * [`AtomicShadow`] — the lock-free mirror of the same layout shared by
//!   the real-thread replay executor (§5.3 synchronization-free fast path);
//! * [`WordTable`] — the word-granular companion: one CAS-able `AtomicU64`
//!   per key (the packed fast path), plus a reference-counted
//!   [`WideInterner`] for per-location state that outgrows a single word
//!   (LockSet's candidate masks, HappensBefore's read vector clocks);
//! * [`ShadowDelta`] / [`WordDelta`] — private per-worker write overlays
//!   for delta-merge replay: buffer locally, publish into the shared
//!   structures only at dependence-arc and sync boundaries;
//! * [`VersionTable`] — the produce/consume table backing TSO versioned
//!   metadata (§5.5);
//! * [`Fingerprint`] — the order-insensitive metadata fingerprint
//!   equivalence tests compare across platforms and backends.
//!
//! # Example
//!
//! ```rust
//! use paralog_meta::ShadowMemory;
//! use paralog_events::AddrRange;
//!
//! let mut taint = ShadowMemory::new(2);
//! taint.set_range(AddrRange::new(0x1000, 4), 0b01); // taint a word
//! taint.copy_range(0x2000, 0x1000, 4);              // propagation
//! assert_eq!(taint.join_range(AddrRange::new(0x2000, 4)), 0b01);
//! ```

#![warn(missing_debug_implementations)]

pub mod atomic;
pub mod delta;
pub mod fingerprint;
pub mod shadow;
pub mod table;
pub mod versions;
pub mod words;

pub use atomic::AtomicShadow;
pub use delta::{LaneCell, ShadowDelta, WordDelta};
pub use fingerprint::Fingerprint;
pub use shadow::{ShadowMemory, CHUNK_APP_BYTES, META_BASE};
pub use table::{MetaWord, PackedWordTable, WideInterner, WordTable, MAX_WIDE_IDS};
pub use versions::{ConcurrentVersionTable, VersionTable};
#[allow(deprecated)]
pub use words::AtomicWordTable;
