//! Versioned metadata for TSO support (§5.5).
//!
//! When a load violates SC relative to a remote write, the R→W dependence is
//! *reversed*: the writer's lifeguard first *produces* a version — a copy of
//! the current metadata for the conflicting range — and the reader's
//! lifeguard *consumes* that version instead of waiting for (or racing with)
//! the writer. The version id combines the consuming thread's id with the
//! record id of its SC-violating load, so ids are unique per dynamic load.

use paralog_events::{AddrRange, VersionId};
use std::collections::HashMap;

/// Table of produced-but-not-yet-consumed metadata versions, shared by all
/// lifeguard threads.
#[derive(Debug, Default)]
pub struct VersionTable {
    entries: HashMap<VersionId, (AddrRange, Vec<u8>, u32)>,
    /// Consumers that proceeded before the version existed (the pre-store
    /// state was still current shadow, so no snapshot was needed).
    bypassed: HashMap<VersionId, u32>,
    produced: u64,
    consumed: u64,
    peak: usize,
}

impl VersionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VersionTable::default()
    }

    /// Publishes versioned metadata for `id` covering `range`, to be
    /// consumed by `consumers` reader records (several pre-drain loads of
    /// the same block may share one snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the id is already present (version ids are unique per
    /// dynamic conflict), `consumers` is zero, or the snapshot length
    /// mismatches the range.
    pub fn produce(&mut self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        assert_eq!(snapshot.len() as u64, range.len, "snapshot length mismatch");
        assert!(consumers > 0, "version without consumers");
        self.produced += 1;
        // Consumers that already passed read the live (still pre-store)
        // shadow; only the remainder need the snapshot.
        let already = self.bypassed.remove(&id).unwrap_or(0);
        let remaining = consumers.saturating_sub(already);
        if remaining == 0 {
            return;
        }
        let prev = self.entries.insert(id, (range, snapshot, remaining));
        assert!(prev.is_none(), "duplicate version {id}");
        self.peak = self.peak.max(self.entries.len());
    }

    /// Notes that a consumer of `id` proceeded before production: the
    /// producer had not applied its store, so the live shadow was still the
    /// correct pre-store state (§5.5 without the stall).
    pub fn bypass(&mut self, id: VersionId) {
        *self.bypassed.entry(id).or_insert(0) += 1;
        self.consumed += 1;
    }

    /// Whether `id` has been produced and not yet consumed.
    pub fn is_available(&self, id: VersionId) -> bool {
        self.entries.contains_key(&id)
    }

    /// Consumes the version (one reference), or `None` if the producer has
    /// not reached its produce point yet — the consumer must stall. The
    /// entry is retired when its last consumer takes it.
    pub fn consume(&mut self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let entry = self.entries.get_mut(&id)?;
        self.consumed += 1;
        entry.2 -= 1;
        if entry.2 == 0 {
            let (range, bytes, _) = self.entries.remove(&id).expect("present");
            Some((range, bytes))
        } else {
            Some((entry.0, entry.1.clone()))
        }
    }

    /// Versions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Versions consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Largest number of simultaneously outstanding versions — bounds the
    /// hardware table size this would need.
    pub fn peak_outstanding(&self) -> usize {
        self.peak
    }

    /// Versions currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{Rid, ThreadId};

    fn vid(t: u16, r: u64) -> VersionId {
        VersionId {
            consumer: ThreadId(t),
            consumer_rid: Rid(r),
        }
    }

    #[test]
    fn produce_then_consume() {
        let mut t = VersionTable::new();
        let id = vid(0, 2);
        let r = AddrRange::new(0x100, 4);
        assert!(!t.is_available(id));
        t.produce(id, r, vec![0b11, 0, 0, 0b01], 1);
        assert!(t.is_available(id));
        let (range, snap) = t.consume(id).expect("available");
        assert_eq!(range, r);
        assert_eq!(snap, vec![0b11, 0, 0, 0b01]);
        assert!(!t.is_available(id));
        assert_eq!(t.produced(), 1);
        assert_eq!(t.consumed(), 1);
    }

    #[test]
    fn consume_before_produce_stalls() {
        let mut t = VersionTable::new();
        assert!(t.consume(vid(1, 5)).is_none());
        assert_eq!(t.consumed(), 0);
    }

    #[test]
    fn peak_outstanding_tracks_high_water() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 2), AddrRange::new(8, 1), vec![1], 1);
        t.consume(vid(0, 1));
        t.produce(vid(1, 1), AddrRange::new(16, 1), vec![0], 1);
        assert_eq!(t.peak_outstanding(), 2);
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate version")]
    fn duplicate_produce_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_snapshot_length_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 4), vec![0], 1);
    }

    #[test]
    fn shared_version_consumed_by_each_reader() {
        let mut t = VersionTable::new();
        let id = vid(0, 9);
        t.produce(id, AddrRange::new(0, 2), vec![1, 0], 2);
        assert!(t.consume(id).is_some());
        assert!(t.is_available(id), "one consumer left");
        assert!(t.consume(id).is_some());
        assert!(!t.is_available(id), "retired after last consumer");
        assert_eq!(t.consumed(), 2);
    }
}
