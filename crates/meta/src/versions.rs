//! Versioned metadata for TSO support (§5.5).
//!
//! When a load violates SC relative to a remote write, the R→W dependence is
//! *reversed*: the writer's lifeguard first *produces* a version — a copy of
//! the current metadata for the conflicting range — and the reader's
//! lifeguard *consumes* that version instead of waiting for (or racing with)
//! the writer. The version id combines the consuming thread's id with the
//! record id of its SC-violating load, so ids are unique per dynamic load.
//!
//! # Layout
//!
//! A [`VersionId`] is `(consumer thread, consumer record id)` — and record
//! ids are *stream positions*, dense and monotonically increasing per
//! thread. The table therefore mirrors the flat two-level treatment that
//! replaced `ShadowMemory`'s hash map: per consumer thread, a dense
//! first-level array indexed by `rid / CHUNK_RIDS` points at lazily
//! allocated fixed-size chunks of slots indexed by the low rid bits. A
//! lookup is two array indexes — no hashing, no probing — and the hot
//! produce→consume window of a run keeps hitting the same one or two
//! resident chunks. Fully retired chunks are freed, so a long (streaming)
//! run's table residency tracks the *outstanding* window, not stream
//! length. Pathological far-future rids beyond the dense budget land in a
//! sorted spill tier instead of growing the first level without bound.
//!
//! # Concurrent form
//!
//! [`VersionTable`] is single-threaded — the shape both deterministic
//! delivery paths need. Real-thread replay (the threaded backend) instead
//! shares a [`ConcurrentVersionTable`]: the same two-level rid-chunk
//! layout, made safe across producer and consumer OS threads by mirroring
//! [`AtomicShadow`](crate::AtomicShadow)'s lazy-chunk design:
//!
//! * the table is **sharded by consumer thread** (a [`VersionId`] *is*
//!   `(consumer thread, consumer rid)`), so each shard is touched by
//!   exactly one consumer plus whichever producer threads publish versions
//!   for it — never by unrelated traffic;
//! * each shard's first level is a fixed ring of *cells* indexed by
//!   `chunk_index % CONC_DENSE_CHUNKS`, each a small mutex over an
//!   optional tagged chunk. All chunk work happens under the cell lock —
//!   which is what makes a drained chunk safe to *reclaim*: no thread can
//!   hold the chunk outside its lock. Two live windows that collide on a
//!   cell (rid ranges ≥ `CONC_DENSE_CHUNKS * CHUNK_RIDS` apart) park the
//!   newcomer in a mutex-protected spill map instead;
//! * reclamation is **epoch-deferred** (the quiescence scheme): when a
//!   chunk's last slot retires it is queued, stamped with the shard's
//!   current epoch, and the shard's consumer frees it at a later
//!   [`advance_epoch`](ConcurrentVersionTable::advance_epoch) call (the
//!   threaded backend invokes one per stream batch). A chunk is only freed
//!   if it drained in an *earlier* epoch and is still empty under its cell
//!   lock, so the hot window's drain→refill churn reuses resident chunks
//!   (plus a small per-shard spare pool) instead of thrashing the
//!   allocator, and a rid sweep over billions of records holds O(window)
//!   chunks instead of O(history);
//! * each chunk slot pairs a tiny per-slot mutex (guarding the snapshot
//!   payload hand-off) with an **atomic availability flag**, so the
//!   consumer-side poll ([`ConcurrentVersionTable::is_available`]) is two
//!   array indexes under the (uncontended in steady state) cell lock;
//! * a consumer whose version has not been produced yet does not spin: it
//!   **parks** on the shard's condvar
//!   ([`ConcurrentVersionTable::wait_available`]) and the producer wakes
//!   it right after flipping the flag — the §5.5 "reader waits for the
//!   writer's pre-store copy" hand-off on real threads.
//!
//! The §5.5 mapping differs between the two forms in one deliberate way:
//! the deterministic paths may **bypass** (a consumer that runs before its
//! producer reads the live shadow, which delivery order still guarantees
//! is pre-store), but on real threads that guarantee would race with the
//! producer's store, so the threaded backend always waits for the
//! produced snapshot instead. Both forms keep identical produce/consume
//! accounting, which is what the model-equivalence property tests pin.

use paralog_events::{AddrRange, VersionId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Slots per second-level chunk (covers 128 consecutive record ids).
const CHUNK_RIDS: u64 = 128;

/// First-level budget: rids below `DENSE_CHUNKS * CHUNK_RIDS` (≈ half a
/// billion records per thread) index the dense array directly; anything
/// beyond spills to the sorted side tier.
const DENSE_CHUNKS: u64 = 1 << 22;

/// One version's lifecycle state.
#[derive(Debug)]
enum Slot {
    /// Consumers that proceeded before the version existed (the pre-store
    /// state was still current shadow, so no snapshot was needed).
    Bypassed(u32),
    /// Produced and awaiting its remaining consumers.
    Live {
        range: AddrRange,
        snapshot: Vec<u8>,
        consumers: u32,
    },
}

/// A chunk of `CHUNK_RIDS` slots plus its occupancy count (for
/// reclamation).
#[derive(Debug)]
struct Chunk {
    occupied: u32,
    slots: Box<[Option<Slot>]>,
}

impl Chunk {
    fn new() -> Box<Chunk> {
        Box::new(Chunk {
            occupied: 0,
            slots: (0..CHUNK_RIDS).map(|_| None).collect(),
        })
    }
}

/// One consumer thread's chunked slot space.
#[derive(Debug, Default)]
struct ThreadVersions {
    dense: Vec<Option<Box<Chunk>>>,
    spill: BTreeMap<u64, Box<Chunk>>,
    /// One reclaimed chunk kept for reuse: the outstanding window crosses
    /// chunk boundaries constantly, and drain→refill churn must not turn
    /// into an allocation per window step.
    spare: Option<Box<Chunk>>,
}

impl ThreadVersions {
    /// A fresh (all-vacant) chunk, reusing the spare when one is parked.
    fn fresh_chunk(&mut self) -> Box<Chunk> {
        self.spare.take().unwrap_or_else(Chunk::new)
    }

    /// Parks a fully drained chunk for reuse (at most one is kept).
    fn park(&mut self, chunk: Box<Chunk>) {
        debug_assert!(chunk.occupied == 0);
        self.spare.get_or_insert(chunk);
    }
}

/// A structurally invalid produce: duplicate id, zero consumers, snapshot
/// length mismatch, or a consumer thread outside the table. Internally
/// generated traffic asserts these away via the panicking `produce`
/// wrappers; ingestion paths (replaying an externally captured wire
/// stream) call `try_produce` instead and surface the error as a malformed
/// stream, so corrupt input can never poison a lock or kill a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionError(pub String);

impl std::fmt::Display for VersionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for VersionError {}

/// Table of produced-but-not-yet-consumed metadata versions, shared by all
/// lifeguard threads.
#[derive(Debug, Default)]
pub struct VersionTable {
    threads: Vec<ThreadVersions>,
    produced: u64,
    consumed: u64,
    outstanding: usize,
    peak: usize,
}

impl VersionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VersionTable::default()
    }

    /// The slot for `id`, allocating its chunk (and growing the per-thread
    /// first level) when `create` is set; `None` when absent and not
    /// creating.
    fn slot_mut(&mut self, id: VersionId, create: bool) -> Option<&mut Option<Slot>> {
        let tid = id.consumer.index();
        if self.threads.len() <= tid {
            if !create {
                return None;
            }
            self.threads.resize_with(tid + 1, ThreadVersions::default);
        }
        let per = &mut self.threads[tid];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        let chunk = if ci < DENSE_CHUNKS {
            let ci = ci as usize;
            if per.dense.len() <= ci {
                if !create {
                    return None;
                }
                per.dense.resize_with(ci + 1, || None);
            }
            if per.dense[ci].is_none() {
                if !create {
                    return None;
                }
                let chunk = per.fresh_chunk();
                per.dense[ci] = Some(chunk);
            }
            per.dense[ci].as_mut().expect("just ensured")
        } else if per.spill.contains_key(&ci) {
            per.spill.get_mut(&ci).expect("just checked")
        } else if create {
            let chunk = per.fresh_chunk();
            per.spill.entry(ci).or_insert(chunk)
        } else {
            return None;
        };
        Some(&mut chunk.slots[si])
    }

    /// Vacates `id`'s slot and frees its chunk when that was the last
    /// occupied slot (the reclamation that keeps long streams bounded).
    fn vacate(&mut self, id: VersionId) {
        let per = &mut self.threads[id.consumer.index()];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        if ci < DENSE_CHUNKS {
            let chunk = per.dense[ci as usize].as_mut().expect("occupied chunk");
            chunk.slots[si] = None;
            chunk.occupied -= 1;
            if chunk.occupied == 0 {
                let chunk = per.dense[ci as usize].take().expect("present");
                per.park(chunk);
            }
        } else {
            let chunk = per.spill.get_mut(&ci).expect("occupied chunk");
            chunk.slots[si] = None;
            chunk.occupied -= 1;
            if chunk.occupied == 0 {
                let chunk = per.spill.remove(&ci).expect("present");
                per.park(chunk);
            }
        }
    }

    /// Bumps the occupancy of `id`'s (existing) chunk.
    fn note_occupied(&mut self, id: VersionId) {
        let per = &mut self.threads[id.consumer.index()];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let chunk = if ci < DENSE_CHUNKS {
            per.dense[ci as usize].as_mut().expect("just created")
        } else {
            per.spill.get_mut(&ci).expect("just created")
        };
        chunk.occupied += 1;
    }

    /// Publishes versioned metadata for `id` covering `range`, to be
    /// consumed by `consumers` reader records (several pre-drain loads of
    /// the same block may share one snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the id is already present (version ids are unique per
    /// dynamic conflict), `consumers` is zero, or the snapshot length
    /// mismatches the range.
    pub fn produce(&mut self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        self.try_produce(id, range, snapshot, consumers)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`produce`](Self::produce): structural violations
    /// (duplicate id, zero consumers, snapshot length mismatch) come back
    /// as a [`VersionError`] instead, for callers replaying untrusted
    /// streams.
    pub fn try_produce(
        &mut self,
        id: VersionId,
        range: AddrRange,
        snapshot: Vec<u8>,
        consumers: u32,
    ) -> Result<(), VersionError> {
        if snapshot.len() as u64 != range.len {
            return Err(VersionError(format!("snapshot length mismatch for {id}")));
        }
        if consumers == 0 {
            return Err(VersionError(format!("version without consumers: {id}")));
        }
        self.produced += 1;
        let slot = self.slot_mut(id, true).expect("created");
        // Consumers that already passed read the live (still pre-store)
        // shadow; only the remainder need the snapshot.
        let (already, was_occupied) = match slot {
            None => (0, false),
            Some(Slot::Bypassed(n)) => (*n, true),
            Some(Slot::Live { .. }) => return Err(VersionError(format!("duplicate version {id}"))),
        };
        let remaining = consumers.saturating_sub(already);
        if remaining == 0 {
            if was_occupied {
                self.vacate(id);
            }
            return Ok(());
        }
        *slot = Some(Slot::Live {
            range,
            snapshot,
            consumers: remaining,
        });
        if !was_occupied {
            self.note_occupied(id);
        }
        self.outstanding += 1;
        self.peak = self.peak.max(self.outstanding);
        Ok(())
    }

    /// Notes that a consumer of `id` proceeded before production: the
    /// producer had not applied its store, so the live shadow was still the
    /// correct pre-store state (§5.5 without the stall).
    pub fn bypass(&mut self, id: VersionId) {
        self.consumed += 1;
        let slot = self.slot_mut(id, true).expect("created");
        match slot {
            None => {
                *slot = Some(Slot::Bypassed(1));
                self.note_occupied(id);
            }
            Some(Slot::Bypassed(n)) => *n += 1,
            Some(Slot::Live { .. }) => unreachable!("bypass of an available version {id}"),
        }
    }

    /// Whether `id` has been produced and not yet consumed.
    pub fn is_available(&self, id: VersionId) -> bool {
        let Some(per) = self.threads.get(id.consumer.index()) else {
            return false;
        };
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        let chunk = if ci < DENSE_CHUNKS {
            per.dense.get(ci as usize).and_then(Option::as_ref)
        } else {
            per.spill.get(&ci)
        };
        matches!(chunk.map(|c| &c.slots[si]), Some(Some(Slot::Live { .. })))
    }

    /// Consumes the version (one reference), or `None` if the producer has
    /// not reached its produce point yet — the consumer must stall. The
    /// entry is retired when its last consumer takes it.
    pub fn consume(&mut self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let slot = self.slot_mut(id, false)?;
        let Some(Slot::Live {
            range,
            snapshot,
            consumers,
        }) = slot
        else {
            return None;
        };
        *consumers -= 1;
        let retired = *consumers == 0;
        let out = if retired {
            (*range, std::mem::take(snapshot))
        } else {
            (*range, snapshot.clone())
        };
        self.consumed += 1;
        if retired {
            self.outstanding -= 1;
            self.vacate(id);
        }
        Some(out)
    }

    /// Versions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Versions consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Largest number of simultaneously outstanding versions — bounds the
    /// hardware table size this would need.
    pub fn peak_outstanding(&self) -> usize {
        self.peak
    }

    /// Versions currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

/// Dense first-level cells of one concurrent shard. Chunk indexes map into
/// the ring modulo this count (covering ≈ 2 million in-flight records per
/// thread before two live windows can collide on a cell), so an unbounded
/// rid sweep keeps reusing the same cells instead of growing the first
/// level.
const CONC_DENSE_CHUNKS: u64 = 1 << 14;

/// Drained chunks parked per shard for reuse: the outstanding window
/// crosses chunk boundaries constantly, and drain→refill churn must not
/// turn into an allocation per window step.
const SPARE_CHUNKS: usize = 2;

/// One chunk of the concurrent table: per-slot payload mutexes plus the
/// lock-free availability flags the consumer-side poll reads.
#[derive(Debug)]
struct ConcChunk {
    /// 1 when the slot holds a produced, not-yet-retired version. Purely a
    /// polling accelerator — all payload hand-off happens under the slot
    /// mutex.
    avail: Box<[AtomicU8]>,
    /// Occupied (non-`None`) slots, maintained by the slot transitions;
    /// lets the spill tier reclaim a fully drained chunk.
    occupied: AtomicU32,
    slots: Box<[Mutex<Option<Slot>>]>,
}

impl ConcChunk {
    fn new() -> Self {
        ConcChunk {
            avail: (0..CHUNK_RIDS).map(|_| AtomicU8::new(0)).collect(),
            occupied: AtomicU32::new(0),
            slots: (0..CHUNK_RIDS).map(|_| Mutex::new(None)).collect(),
        }
    }
}

/// A dense cell's occupant: the chunk plus the full chunk index it serves
/// (the `tag` disambiguates window wraps that alias the same cell) and a
/// flag keeping the drained-chunk retire queue duplicate-free.
#[derive(Debug)]
struct DenseChunk {
    tag: u64,
    queued: bool,
    chunk: Box<ConcChunk>,
}

/// One consumer thread's shard: the dense cell ring, the collision spill
/// tier, the epoch/retire state, and the parked-consumer wakeup path.
#[derive(Debug)]
struct Shard {
    /// First level: `chunk index % CONC_DENSE_CHUNKS` → cell. Every access
    /// to a dense chunk happens under its cell lock, which is the whole
    /// reclamation-safety argument: a sweep that holds the cell lock and
    /// sees the chunk empty knows no other thread holds it at all.
    dense: Box<[Mutex<Option<DenseChunk>>]>,
    /// Chunks whose cell was occupied by a *different* live window when
    /// they were created (rid ranges ≥ the dense span apart). `Arc` only
    /// so the handle can be cloned out of the map borrow; all spill work
    /// still happens under the cell + spill locks.
    spill: Mutex<BTreeMap<u64, Arc<ConcChunk>>>,
    /// The shard's quiescence clock: advanced by its consumer at stream
    /// batch boundaries.
    epoch: AtomicU64,
    /// Fully drained dense chunks awaiting a later epoch's sweep, each
    /// stamped with the epoch it drained in.
    drained: Mutex<Vec<(u64, u64)>>,
    /// Reclaimed chunks parked for reuse. Boxed on purpose: a `ConcChunk`
    /// is ~`CHUNK_RIDS` mutexes wide, and the pool hands the same
    /// allocation back to the dense ring without moving it by value.
    #[allow(clippy::vec_box)]
    spare: Mutex<Vec<Box<ConcChunk>>>,
    /// Parking lot for the shard's consumer while its version is
    /// unproduced; producers notify after flipping the availability flag.
    park: Mutex<()>,
    wakeup: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            dense: (0..CONC_DENSE_CHUNKS).map(|_| Mutex::new(None)).collect(),
            spill: Mutex::new(BTreeMap::new()),
            epoch: AtomicU64::new(0),
            drained: Mutex::new(Vec::new()),
            spare: Mutex::new(Vec::new()),
            park: Mutex::new(()),
            wakeup: Condvar::new(),
        }
    }

    fn fresh_chunk(&self) -> Box<ConcChunk> {
        self.spare
            .lock()
            .expect("poisoned")
            .pop()
            .unwrap_or_else(|| Box::new(ConcChunk::new()))
    }
}

/// The `Send + Sync` version table shared by the threaded backend's
/// workers: same §5.5 semantics and accounting as [`VersionTable`], safe
/// across real producer/consumer threads. See the module docs for the
/// sharded-chunk + atomic-availability design.
#[derive(Debug)]
pub struct ConcurrentVersionTable {
    shards: Box<[Shard]>,
    /// Epoch-deferred dense-chunk reclamation (on by default); benches turn
    /// it off to measure the sweep's cost against the grow-only baseline.
    reclaim: bool,
    produced: AtomicU64,
    consumed: AtomicU64,
    outstanding: AtomicUsize,
    peak: AtomicUsize,
    dense_resident: AtomicUsize,
    dense_peak: AtomicUsize,
    reclaimed: AtomicU64,
}

impl ConcurrentVersionTable {
    /// Record ids per dense chunk — the granule at which the epoch sweep
    /// allocates and reclaims version storage.
    pub const CHUNK_RIDS: u64 = CHUNK_RIDS;

    /// Rid span of one full dense ring: rids this far apart alias the same
    /// cell (the window-wrap case the spill tier absorbs). Soaks that want
    /// to prove residency stays bounded sweep many multiples of this.
    pub const WINDOW_RIDS: u64 = CONC_DENSE_CHUNKS * CHUNK_RIDS;

    /// An empty table for `threads` monitored streams (version ids name
    /// their consumer thread, which must be below `threads`).
    pub fn new(threads: usize) -> Self {
        ConcurrentVersionTable {
            shards: (0..threads.max(1)).map(|_| Shard::new()).collect(),
            reclaim: true,
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            dense_resident: AtomicUsize::new(0),
            dense_peak: AtomicUsize::new(0),
            reclaimed: AtomicU64::new(0),
        }
    }

    /// Toggles epoch-based dense-chunk reclamation (on by default). With it
    /// off, drained dense chunks stay resident for the table's lifetime —
    /// the pre-reclamation behavior the benches compare against.
    pub fn with_reclamation(mut self, on: bool) -> Self {
        self.reclaim = on;
        self
    }

    fn split(id: VersionId) -> (u64, usize) {
        (
            id.consumer_rid.0 / CHUNK_RIDS,
            (id.consumer_rid.0 % CHUNK_RIDS) as usize,
        )
    }

    /// Runs `f` over the chunk holding chunk index `ci` of `shard`. With
    /// `create` unset, untouched chunks are skipped (availability polls of
    /// never-produced ids must not allocate).
    ///
    /// The cell lock (taken first, held throughout) is the linchpin: it
    /// serializes every accessor of this cell's chunk *and* the tier
    /// decision for aliasing chunk indexes, so the epoch sweep can free a
    /// drained chunk under the same lock without any hazard tracking, and
    /// a chunk index can never be live in the dense ring and the spill map
    /// at once.
    fn with_chunk<R>(
        &self,
        shard: &Shard,
        ci: u64,
        create: bool,
        f: impl FnOnce(&ConcChunk) -> R,
    ) -> Option<R> {
        let cell = &shard.dense[(ci % CONC_DENSE_CHUNKS) as usize];
        let mut guard = cell.lock().expect("poisoned");
        if matches!(&*guard, Some(d) if d.tag == ci) {
            let d = guard.as_mut().expect("just matched");
            let out = f(&d.chunk);
            let enqueue =
                self.reclaim && !d.queued && d.chunk.occupied.load(Ordering::Relaxed) == 0;
            if enqueue {
                d.queued = true;
            }
            // Lock order is cell → nothing: drop the cell guard before the
            // retire queue (the sweep takes queue → cell).
            drop(guard);
            if enqueue {
                let epoch = shard.epoch.load(Ordering::Relaxed);
                shard.drained.lock().expect("poisoned").push((ci, epoch));
            }
            return Some(out);
        }
        // Dense miss: the chunk may be parked in the spill tier (a window
        // wrap collided on this cell when it was created), be creatable, or
        // be absent. The cell guard stays held so the tier decision cannot
        // race another accessor of an aliasing chunk index.
        let vacant = guard.is_none();
        let mut spill = shard.spill.lock().expect("poisoned");
        if let Some(chunk) = spill.get(&ci).map(Arc::clone) {
            let out = f(&chunk);
            if chunk.occupied.load(Ordering::Relaxed) == 0 {
                spill.remove(&ci);
            }
            return Some(out);
        }
        if !create {
            return None;
        }
        if vacant {
            drop(spill);
            let now = self.dense_resident.fetch_add(1, Ordering::Relaxed) + 1;
            self.dense_peak.fetch_max(now, Ordering::Relaxed);
            let d = guard.insert(DenseChunk {
                tag: ci,
                queued: false,
                chunk: shard.fresh_chunk(),
            });
            let out = f(&d.chunk);
            let enqueue =
                self.reclaim && !d.queued && d.chunk.occupied.load(Ordering::Relaxed) == 0;
            if enqueue {
                d.queued = true;
            }
            drop(guard);
            if enqueue {
                let epoch = shard.epoch.load(Ordering::Relaxed);
                shard.drained.lock().expect("poisoned").push((ci, epoch));
            }
            return Some(out);
        }
        // Collision: an older live window owns the cell; park this chunk in
        // the spill tier (reclaimed the moment it drains, as above).
        let chunk = Arc::new(ConcChunk::new());
        let out = f(&chunk);
        if chunk.occupied.load(Ordering::Relaxed) != 0 {
            spill.insert(ci, chunk);
        }
        Some(out)
    }

    /// Advances `consumer`'s shard epoch and sweeps its retire queue: a
    /// dense chunk that fully drained in an *earlier* epoch and is still
    /// empty under its cell lock is freed to the shard's spare pool. The
    /// threaded backend calls this at every stream batch boundary (and once
    /// more when the stream ends), so residency tracks the outstanding
    /// window while the window's own churn never frees a chunk that is
    /// about to be refilled. A no-op when reclamation is off or `consumer`
    /// is outside the table.
    pub fn advance_epoch(&self, consumer: paralog_events::ThreadId) {
        if !self.reclaim {
            return;
        }
        let Some(shard) = self.shards.get(consumer.index()) else {
            return;
        };
        let now = shard.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let ready = {
            let mut queue = shard.drained.lock().expect("poisoned");
            let (ready, keep): (Vec<_>, Vec<_>) = std::mem::take(&mut *queue)
                .into_iter()
                .partition(|&(_, e)| e < now);
            *queue = keep;
            ready
        };
        for (ci, _) in ready {
            let cell = &shard.dense[(ci % CONC_DENSE_CHUNKS) as usize];
            let mut guard = cell.lock().expect("poisoned");
            let empty = matches!(
                &*guard,
                Some(d) if d.tag == ci && d.chunk.occupied.load(Ordering::Relaxed) == 0
            );
            if empty {
                let d = guard.take().expect("just matched");
                self.dense_resident.fetch_sub(1, Ordering::Relaxed);
                self.reclaimed.fetch_add(1, Ordering::Relaxed);
                let mut spare = shard.spare.lock().expect("poisoned");
                if spare.len() < SPARE_CHUNKS {
                    spare.push(d.chunk);
                }
            } else if let Some(d) = guard.as_mut().filter(|d| d.tag == ci) {
                // Refilled since it drained; it re-queues on its next
                // drain. (A vacated or superseded cell needs nothing.)
                d.queued = false;
            }
        }
    }

    /// Publishes versioned metadata for `id` covering `range` and wakes the
    /// shard's parked consumer, if any. Semantics (and panics) match
    /// [`VersionTable::produce`]: consumers that already bypassed are
    /// subtracted, and a fully pre-bypassed version retires immediately.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present, `consumers` is zero, or the
    /// snapshot length mismatches the range.
    pub fn produce(&self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        self.try_produce(id, range, snapshot, consumers)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Non-panicking [`produce`](Self::produce): structural violations
    /// (duplicate id, zero consumers, snapshot length mismatch, consumer
    /// thread outside the table) come back as a [`VersionError`] instead,
    /// so workers replaying untrusted streams can report a malformed
    /// stream rather than poison the table's locks.
    pub fn try_produce(
        &self,
        id: VersionId,
        range: AddrRange,
        snapshot: Vec<u8>,
        consumers: u32,
    ) -> Result<(), VersionError> {
        if snapshot.len() as u64 != range.len {
            return Err(VersionError(format!("snapshot length mismatch for {id}")));
        }
        if consumers == 0 {
            return Err(VersionError(format!("version without consumers: {id}")));
        }
        let Some(shard) = self.shards.get(id.consumer.index()) else {
            return Err(VersionError(format!(
                "version {id} names a consumer thread outside the {}-thread table",
                self.shards.len()
            )));
        };
        let (ci, si) = Self::split(id);
        let became_live = self
            .with_chunk(shard, ci, true, |chunk| {
                let mut slot = chunk.slots[si].lock().expect("poisoned");
                let already = match &*slot {
                    None => 0,
                    Some(Slot::Bypassed(n)) => *n,
                    Some(Slot::Live { .. }) => {
                        return Err(VersionError(format!("duplicate version {id}")));
                    }
                };
                let was_occupied = slot.is_some();
                let remaining = consumers.saturating_sub(already);
                if remaining == 0 {
                    // Every reader already bypassed: nothing to publish.
                    *slot = None;
                    if was_occupied {
                        chunk.occupied.fetch_sub(1, Ordering::Relaxed);
                    }
                    Ok(false)
                } else {
                    *slot = Some(Slot::Live {
                        range,
                        snapshot,
                        consumers: remaining,
                    });
                    if !was_occupied {
                        chunk.occupied.fetch_add(1, Ordering::Relaxed);
                    }
                    // Count the version outstanding *before* publishing its
                    // availability flag (both under the cell lock): once the
                    // flag is visible a consumer may retire the version and
                    // decrement, so incrementing after releasing the lock
                    // could observe the decrement first and wrap.
                    let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
                    self.peak.fetch_max(now, Ordering::Relaxed);
                    chunk.avail[si].store(1, Ordering::Release);
                    Ok(true)
                }
            })
            .expect("chunk created")?;
        self.produced.fetch_add(1, Ordering::Relaxed);
        if became_live {
            // Pairing the notify with a (briefly held) park lock closes the
            // check-then-wait race: a consumer that saw the flag clear is
            // either still holding the lock (will re-check) or already
            // waiting (will be woken).
            drop(shard.park.lock().expect("poisoned"));
            shard.wakeup.notify_all();
        }
        Ok(())
    }

    /// Notes that a consumer of `id` proceeded before production (the
    /// deterministic paths' §5.5-without-the-stall case; real-thread
    /// consumers wait instead — see the module docs).
    pub fn bypass(&self, id: VersionId) {
        self.consumed.fetch_add(1, Ordering::Relaxed);
        let shard = self
            .shards
            .get(id.consumer.index())
            .expect("version id's consumer thread is within the table's thread count");
        let (ci, si) = Self::split(id);
        self.with_chunk(shard, ci, true, |chunk| {
            let mut slot = chunk.slots[si].lock().expect("poisoned");
            match &mut *slot {
                None => {
                    *slot = Some(Slot::Bypassed(1));
                    chunk.occupied.fetch_add(1, Ordering::Relaxed);
                }
                Some(Slot::Bypassed(n)) => *n += 1,
                Some(Slot::Live { .. }) => unreachable!("bypass of an available version {id}"),
            }
        })
        .expect("chunk created");
    }

    /// Whether `id` has been produced and not yet retired — a two-index
    /// poll of the availability flag under the (steady-state uncontended)
    /// cell lock; the threaded consumer's fast path.
    pub fn is_available(&self, id: VersionId) -> bool {
        let Some(shard) = self.shards.get(id.consumer.index()) else {
            return false;
        };
        let (ci, si) = Self::split(id);
        self.with_chunk(shard, ci, false, |chunk| {
            chunk.avail[si].load(Ordering::Acquire) != 0
        })
        .unwrap_or(false)
    }

    /// Consumes one reference to `id`'s version, or `None` when the
    /// producer has not published it yet. The entry retires (and its flag
    /// clears) when the last consumer takes it.
    pub fn consume(&self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let shard = self.shards.get(id.consumer.index())?;
        let (ci, si) = Self::split(id);
        let (out, retired) = self.with_chunk(shard, ci, false, |chunk| {
            let mut slot = chunk.slots[si].lock().expect("poisoned");
            let Some(Slot::Live {
                range,
                snapshot,
                consumers,
            }) = &mut *slot
            else {
                return None;
            };
            *consumers -= 1;
            let retired = *consumers == 0;
            let out = if retired {
                (*range, std::mem::take(snapshot))
            } else {
                (*range, snapshot.clone())
            };
            if retired {
                chunk.avail[si].store(0, Ordering::Release);
                *slot = None;
                chunk.occupied.fetch_sub(1, Ordering::Relaxed);
            }
            Some((out, retired))
        })??;
        self.consumed.fetch_add(1, Ordering::Relaxed);
        if retired {
            self.outstanding.fetch_sub(1, Ordering::Relaxed);
        }
        Some(out)
    }

    /// Parks until `id` becomes available or `timeout` elapses; returns
    /// whether it is available now. Callers loop around this (re-checking
    /// their own abort/deadlock conditions between waits); the producer's
    /// [`produce`](Self::produce) wakes parked consumers immediately, so
    /// the timeout only bounds how often a starved consumer re-runs its
    /// liveness checks.
    pub fn wait_available(&self, id: VersionId, timeout: Duration) -> bool {
        if self.is_available(id) {
            return true;
        }
        let Some(shard) = self.shards.get(id.consumer.index()) else {
            return false;
        };
        let guard = shard.park.lock().expect("poisoned");
        // Re-check under the park lock: a produce between the first check
        // and the lock acquisition must not strand us in the wait.
        if self.is_available(id) {
            return true;
        }
        let _unused = shard.wakeup.wait_timeout(guard, timeout).expect("poisoned");
        self.is_available(id)
    }

    /// Versions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }

    /// Versions consumed so far (bypasses included, as in the sequential
    /// table).
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Largest number of simultaneously outstanding versions observed.
    pub fn peak_outstanding(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Versions currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Dense chunks currently resident across all shards — the quantity
    /// epoch reclamation bounds to the outstanding window.
    pub fn dense_resident(&self) -> usize {
        self.dense_resident.load(Ordering::Relaxed)
    }

    /// High-water mark of [`dense_resident`](Self::dense_resident).
    pub fn peak_dense_resident(&self) -> usize {
        self.dense_peak.load(Ordering::Relaxed)
    }

    /// Dense chunks freed by epoch sweeps so far.
    pub fn reclaimed_chunks(&self) -> u64 {
        self.reclaimed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{Rid, ThreadId};

    fn vid(t: u16, r: u64) -> VersionId {
        VersionId {
            consumer: ThreadId(t),
            consumer_rid: Rid(r),
        }
    }

    #[test]
    fn produce_then_consume() {
        let mut t = VersionTable::new();
        let id = vid(0, 2);
        let r = AddrRange::new(0x100, 4);
        assert!(!t.is_available(id));
        t.produce(id, r, vec![0b11, 0, 0, 0b01], 1);
        assert!(t.is_available(id));
        let (range, snap) = t.consume(id).expect("available");
        assert_eq!(range, r);
        assert_eq!(snap, vec![0b11, 0, 0, 0b01]);
        assert!(!t.is_available(id));
        assert_eq!(t.produced(), 1);
        assert_eq!(t.consumed(), 1);
    }

    #[test]
    fn consume_before_produce_stalls() {
        let mut t = VersionTable::new();
        assert!(t.consume(vid(1, 5)).is_none());
        assert_eq!(t.consumed(), 0);
    }

    #[test]
    fn peak_outstanding_tracks_high_water() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 2), AddrRange::new(8, 1), vec![1], 1);
        t.consume(vid(0, 1));
        t.produce(vid(1, 1), AddrRange::new(16, 1), vec![0], 1);
        assert_eq!(t.peak_outstanding(), 2);
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate version")]
    fn duplicate_produce_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_snapshot_length_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 4), vec![0], 1);
    }

    #[test]
    fn shared_version_consumed_by_each_reader() {
        let mut t = VersionTable::new();
        let id = vid(0, 9);
        t.produce(id, AddrRange::new(0, 2), vec![1, 0], 2);
        assert!(t.consume(id).is_some());
        assert!(t.is_available(id), "one consumer left");
        assert!(t.consume(id).is_some());
        assert!(!t.is_available(id), "retired after last consumer");
        assert_eq!(t.consumed(), 2);
    }

    #[test]
    fn bypass_then_produce_skips_satisfied_readers() {
        let mut t = VersionTable::new();
        let id = vid(2, 40);
        t.bypass(id);
        t.bypass(id);
        // Both readers already passed: the snapshot retires immediately.
        t.produce(id, AddrRange::new(0, 1), vec![7], 2);
        assert!(!t.is_available(id));
        assert_eq!(t.outstanding(), 0);
        // One of three readers passed early: two consumes drain it.
        let id2 = vid(2, 41);
        t.bypass(id2);
        t.produce(id2, AddrRange::new(0, 1), vec![7], 3);
        assert!(t.consume(id2).is_some());
        assert!(t.consume(id2).is_some());
        assert!(!t.is_available(id2));
    }

    #[test]
    fn drained_chunks_are_reclaimed() {
        let mut t = VersionTable::new();
        // Walk a long rid space, consuming as we go: residency must track
        // the outstanding window, not the rid high-water mark.
        for r in 1..=(CHUNK_RIDS * 8) {
            let id = vid(0, r);
            t.produce(id, AddrRange::new(0, 1), vec![1], 1);
            assert!(t.consume(id).is_some());
        }
        assert_eq!(t.outstanding(), 0);
        let live_chunks =
            t.threads[0].dense.iter().filter(|c| c.is_some()).count() + t.threads[0].spill.len();
        assert_eq!(live_chunks, 0, "fully retired chunks are freed");
    }

    #[test]
    fn far_future_rids_use_the_spill_tier() {
        let mut t = VersionTable::new();
        let far = vid(1, DENSE_CHUNKS * CHUNK_RIDS + 17);
        t.produce(far, AddrRange::new(0, 1), vec![3], 1);
        assert!(t.is_available(far));
        assert!(
            t.threads[1].dense.is_empty(),
            "outliers must not grow the dense first level"
        );
        assert_eq!(t.consume(far).map(|(_, s)| s), Some(vec![3]));
        assert!(t.threads[1].spill.is_empty(), "spill chunk reclaimed");
    }

    #[test]
    fn concurrent_produce_then_consume() {
        let t = ConcurrentVersionTable::new(2);
        let id = vid(0, 2);
        let r = AddrRange::new(0x100, 4);
        assert!(!t.is_available(id));
        assert!(t.consume(id).is_none(), "consume before produce misses");
        t.produce(id, r, vec![0b11, 0, 0, 0b01], 1);
        assert!(t.is_available(id));
        assert_eq!(t.consume(id), Some((r, vec![0b11, 0, 0, 0b01])));
        assert!(!t.is_available(id));
        assert_eq!((t.produced(), t.consumed(), t.outstanding()), (1, 1, 0));
        assert_eq!(t.peak_outstanding(), 1);
    }

    #[test]
    fn concurrent_shared_and_bypassed_versions_account_like_sequential() {
        let t = ConcurrentVersionTable::new(4);
        let id = vid(2, 40);
        t.bypass(id);
        t.bypass(id);
        // Both readers already passed: the snapshot retires immediately.
        t.produce(id, AddrRange::new(0, 1), vec![7], 2);
        assert!(!t.is_available(id));
        assert_eq!(t.outstanding(), 0);
        // One of three readers passed early: two consumes drain it.
        let id2 = vid(2, 41);
        t.bypass(id2);
        t.produce(id2, AddrRange::new(0, 1), vec![7], 3);
        assert!(t.consume(id2).is_some());
        assert!(t.is_available(id2), "one consumer left");
        assert!(t.consume(id2).is_some());
        assert!(!t.is_available(id2), "retired after last consumer");
        assert_eq!(t.consumed(), 5, "bypasses count as consumption");
    }

    #[test]
    #[should_panic(expected = "duplicate version")]
    fn concurrent_duplicate_produce_panics() {
        let t = ConcurrentVersionTable::new(1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
    }

    #[test]
    fn concurrent_window_wrap_collisions_use_the_spill_tier_and_reclaim() {
        let t = ConcurrentVersionTable::new(2);
        // A far-future rid aliases cell 17 of the ring; with the cell
        // vacant it lives densely like any other chunk.
        let far = vid(1, CONC_DENSE_CHUNKS * CHUNK_RIDS + 17 * CHUNK_RIDS);
        assert!(!t.is_available(far), "a miss polls without allocating");
        t.produce(far, AddrRange::new(0, 1), vec![3], 1);
        assert!(t.is_available(far));
        assert!(t.shards[1].spill.lock().unwrap().is_empty());
        // A *live* near rid aliasing the same cell collides and parks in
        // the spill tier instead of evicting the resident window.
        let near = vid(1, 17 * CHUNK_RIDS + 5);
        t.produce(near, AddrRange::new(8, 1), vec![9], 1);
        assert!(t.is_available(far) && t.is_available(near));
        assert_eq!(
            t.shards[1].spill.lock().unwrap().len(),
            1,
            "the colliding window must not displace the resident chunk"
        );
        assert_eq!(t.consume(near).map(|(_, s)| s), Some(vec![9]));
        assert!(
            t.shards[1].spill.lock().unwrap().is_empty(),
            "a drained spill chunk is reclaimed immediately"
        );
        assert_eq!(t.consume(far).map(|(_, s)| s), Some(vec![3]));
        // The spill entry is rebuilt transparently while the collision
        // persists.
        t.produce(far, AddrRange::new(0, 1), vec![4], 1);
        t.produce(near, AddrRange::new(8, 1), vec![5], 1);
        assert_eq!(t.consume(near).map(|(_, s)| s), Some(vec![5]));
        assert_eq!(t.consume(far).map(|(_, s)| s), Some(vec![4]));
        assert!(t.shards[1].spill.lock().unwrap().is_empty());
    }

    #[test]
    fn epoch_sweep_reclaims_drained_dense_chunks() {
        let t = ConcurrentVersionTable::new(1);
        let consumer = ThreadId(0);
        // Sweep a rid range 64 chunks long with a one-version window,
        // advancing the epoch every "batch" the way the threaded backend
        // does.
        for batch in 0..64u64 {
            for i in 0..CHUNK_RIDS {
                let id = vid(0, batch * CHUNK_RIDS + i);
                t.produce(id, AddrRange::new(0, 1), vec![1], 1);
                assert!(t.consume(id).is_some());
            }
            t.advance_epoch(consumer);
        }
        t.advance_epoch(consumer);
        assert!(
            t.dense_resident() <= 2,
            "residency must track the window, not the swept range (got {})",
            t.dense_resident()
        );
        assert!(t.peak_dense_resident() <= 3);
        assert!(t.reclaimed_chunks() >= 60, "sweeps must actually free");
        // The freed cells are reused transparently.
        let again = vid(0, 3 * CHUNK_RIDS + 1);
        t.produce(again, AddrRange::new(0, 1), vec![7], 1);
        assert_eq!(t.consume(again).map(|(_, s)| s), Some(vec![7]));
    }

    #[test]
    fn reclamation_toggle_keeps_dense_shells() {
        let t = ConcurrentVersionTable::new(1).with_reclamation(false);
        for batch in 0..8u64 {
            let id = vid(0, batch * CHUNK_RIDS);
            t.produce(id, AddrRange::new(0, 1), vec![1], 1);
            assert!(t.consume(id).is_some());
            t.advance_epoch(ThreadId(0));
        }
        assert_eq!(t.dense_resident(), 8, "off = grow-only baseline");
        assert_eq!(t.reclaimed_chunks(), 0);
    }

    #[test]
    fn epoch_sweep_spares_the_still_occupied_and_refilled() {
        let t = ConcurrentVersionTable::new(1);
        let held = vid(0, 5);
        t.produce(held, AddrRange::new(0, 1), vec![1], 1);
        // Drain a neighbor chunk, then refill it before the sweep runs.
        let churn = vid(0, CHUNK_RIDS + 3);
        t.produce(churn, AddrRange::new(0, 1), vec![2], 1);
        assert!(t.consume(churn).is_some());
        t.produce(churn, AddrRange::new(0, 1), vec![3], 1);
        t.advance_epoch(ThreadId(0));
        t.advance_epoch(ThreadId(0));
        assert_eq!(t.dense_resident(), 2, "occupied chunks are never freed");
        assert!(t.is_available(held) && t.is_available(churn));
        assert!(t.consume(held).is_some() && t.consume(churn).is_some());
    }

    #[test]
    fn concurrent_out_of_range_consumer_is_an_error_not_a_panic() {
        let t = ConcurrentVersionTable::new(2);
        let err = t
            .try_produce(vid(7, 1), AddrRange::new(0, 1), vec![0], 1)
            .expect_err("consumer thread 7 is outside a 2-thread table");
        assert!(err.to_string().contains("outside the 2-thread table"));
        assert!(!t.is_available(vid(7, 1)));
        assert!(t.consume(vid(7, 1)).is_none());
        assert_eq!(t.produced(), 0);
    }

    #[test]
    fn concurrent_duplicate_produce_is_an_error_via_try_produce() {
        let t = ConcurrentVersionTable::new(1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        let err = t
            .try_produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1)
            .expect_err("duplicate");
        assert!(err.to_string().contains("duplicate version"));
        // The table keeps working: the original version is intact.
        assert!(t.is_available(vid(0, 1)));
        assert!(t.consume(vid(0, 1)).is_some());
    }

    #[test]
    fn parked_consumer_is_woken_by_produce() {
        let t = ConcurrentVersionTable::new(2);
        let id = vid(0, 9);
        let r = AddrRange::new(0x40, 2);
        std::thread::scope(|scope| {
            let table = &t;
            scope.spawn(move || {
                // Park (bounded slices, as the backend does) until the
                // producer publishes, then take the version.
                while !table.wait_available(id, Duration::from_millis(50)) {}
                assert_eq!(table.consume(id), Some((r, vec![5, 6])));
            });
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                table.produce(id, r, vec![5, 6], 1);
            });
        });
        assert_eq!((t.outstanding(), t.consumed()), (0, 1));
    }

    #[test]
    fn concurrent_producers_race_distinct_ids_safely() {
        // Four producer threads publish disjoint id sets for two consumer
        // shards while both consumers drain with waits: every snapshot must
        // arrive intact and the accounting must balance.
        const PER_PRODUCER: u64 = 256;
        let t = ConcurrentVersionTable::new(2);
        std::thread::scope(|scope| {
            let table = &t;
            for p in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let consumer = (p % 2) as u16;
                        let rid = 1 + p / 2 * PER_PRODUCER + i;
                        let id = vid(consumer, rid);
                        table.produce(
                            id,
                            AddrRange::new(rid * 8, 8),
                            vec![(rid % 251) as u8; 8],
                            1,
                        );
                    }
                });
            }
            for consumer in 0..2u16 {
                scope.spawn(move || {
                    for rid in 1..=(2 * PER_PRODUCER) {
                        let id = vid(consumer, rid);
                        loop {
                            if let Some((range, snap)) = table.consume(id) {
                                assert_eq!(range, AddrRange::new(rid * 8, 8));
                                assert_eq!(snap, vec![(rid % 251) as u8; 8]);
                                break;
                            }
                            table.wait_available(id, Duration::from_millis(5));
                        }
                    }
                });
            }
        });
        assert_eq!(t.produced(), 4 * PER_PRODUCER);
        assert_eq!(t.consumed(), 4 * PER_PRODUCER);
        assert_eq!(t.outstanding(), 0);
        assert!(t.peak_outstanding() >= 1);
    }
}
