//! Versioned metadata for TSO support (§5.5).
//!
//! When a load violates SC relative to a remote write, the R→W dependence is
//! *reversed*: the writer's lifeguard first *produces* a version — a copy of
//! the current metadata for the conflicting range — and the reader's
//! lifeguard *consumes* that version instead of waiting for (or racing with)
//! the writer. The version id combines the consuming thread's id with the
//! record id of its SC-violating load, so ids are unique per dynamic load.
//!
//! # Layout
//!
//! A [`VersionId`] is `(consumer thread, consumer record id)` — and record
//! ids are *stream positions*, dense and monotonically increasing per
//! thread. The table therefore mirrors the flat two-level treatment that
//! replaced `ShadowMemory`'s hash map: per consumer thread, a dense
//! first-level array indexed by `rid / CHUNK_RIDS` points at lazily
//! allocated fixed-size chunks of slots indexed by the low rid bits. A
//! lookup is two array indexes — no hashing, no probing — and the hot
//! produce→consume window of a run keeps hitting the same one or two
//! resident chunks. Fully retired chunks are freed, so a long (streaming)
//! run's table residency tracks the *outstanding* window, not stream
//! length. Pathological far-future rids beyond the dense budget land in a
//! sorted spill tier instead of growing the first level without bound.
//!
//! # Concurrent form
//!
//! [`VersionTable`] is single-threaded — the shape both deterministic
//! delivery paths need. Real-thread replay (the threaded backend) instead
//! shares a [`ConcurrentVersionTable`]: the same two-level rid-chunk
//! layout, made safe across producer and consumer OS threads by mirroring
//! [`AtomicShadow`](crate::AtomicShadow)'s lazy-chunk design:
//!
//! * the table is **sharded by consumer thread** (a [`VersionId`] *is*
//!   `(consumer thread, consumer rid)`), so each shard is touched by
//!   exactly one consumer plus whichever producer threads publish versions
//!   for it — never by unrelated traffic;
//! * each shard's first level is a flat array of `OnceLock` chunk slots,
//!   initialized race-free by whichever side touches a chunk first (far
//!   outliers take a mutex-protected spill map, exactly like the shadow).
//!   Spill chunks do their slot work under that mutex and are reclaimed
//!   the moment their last slot drains; dense chunk shells persist
//!   (`OnceLock` cannot vacate), so dense residency tracks the touched
//!   rid range rather than the outstanding window — see ROADMAP for the
//!   epoch-reclamation follow-on;
//! * each chunk slot pairs a tiny per-slot mutex (guarding the snapshot
//!   payload hand-off) with an **atomic availability flag**, so the hot
//!   consumer-side poll ([`ConcurrentVersionTable::is_available`]) is a
//!   lock-free two-index load;
//! * a consumer whose version has not been produced yet does not spin: it
//!   **parks** on the shard's condvar
//!   ([`ConcurrentVersionTable::wait_available`]) and the producer wakes
//!   it right after flipping the flag — the §5.5 "reader waits for the
//!   writer's pre-store copy" hand-off on real threads.
//!
//! The §5.5 mapping differs between the two forms in one deliberate way:
//! the deterministic paths may **bypass** (a consumer that runs before its
//! producer reads the live shadow, which delivery order still guarantees
//! is pre-store), but on real threads that guarantee would race with the
//! producer's store, so the threaded backend always waits for the
//! produced snapshot instead. Both forms keep identical produce/consume
//! accounting, which is what the model-equivalence property tests pin.

use paralog_events::{AddrRange, VersionId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Slots per second-level chunk (covers 128 consecutive record ids).
const CHUNK_RIDS: u64 = 128;

/// First-level budget: rids below `DENSE_CHUNKS * CHUNK_RIDS` (≈ half a
/// billion records per thread) index the dense array directly; anything
/// beyond spills to the sorted side tier.
const DENSE_CHUNKS: u64 = 1 << 22;

/// One version's lifecycle state.
#[derive(Debug)]
enum Slot {
    /// Consumers that proceeded before the version existed (the pre-store
    /// state was still current shadow, so no snapshot was needed).
    Bypassed(u32),
    /// Produced and awaiting its remaining consumers.
    Live {
        range: AddrRange,
        snapshot: Vec<u8>,
        consumers: u32,
    },
}

/// A chunk of `CHUNK_RIDS` slots plus its occupancy count (for
/// reclamation).
#[derive(Debug)]
struct Chunk {
    occupied: u32,
    slots: Box<[Option<Slot>]>,
}

impl Chunk {
    fn new() -> Box<Chunk> {
        Box::new(Chunk {
            occupied: 0,
            slots: (0..CHUNK_RIDS).map(|_| None).collect(),
        })
    }
}

/// One consumer thread's chunked slot space.
#[derive(Debug, Default)]
struct ThreadVersions {
    dense: Vec<Option<Box<Chunk>>>,
    spill: BTreeMap<u64, Box<Chunk>>,
    /// One reclaimed chunk kept for reuse: the outstanding window crosses
    /// chunk boundaries constantly, and drain→refill churn must not turn
    /// into an allocation per window step.
    spare: Option<Box<Chunk>>,
}

impl ThreadVersions {
    /// A fresh (all-vacant) chunk, reusing the spare when one is parked.
    fn fresh_chunk(&mut self) -> Box<Chunk> {
        self.spare.take().unwrap_or_else(Chunk::new)
    }

    /// Parks a fully drained chunk for reuse (at most one is kept).
    fn park(&mut self, chunk: Box<Chunk>) {
        debug_assert!(chunk.occupied == 0);
        self.spare.get_or_insert(chunk);
    }
}

/// Table of produced-but-not-yet-consumed metadata versions, shared by all
/// lifeguard threads.
#[derive(Debug, Default)]
pub struct VersionTable {
    threads: Vec<ThreadVersions>,
    produced: u64,
    consumed: u64,
    outstanding: usize,
    peak: usize,
}

impl VersionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VersionTable::default()
    }

    /// The slot for `id`, allocating its chunk (and growing the per-thread
    /// first level) when `create` is set; `None` when absent and not
    /// creating.
    fn slot_mut(&mut self, id: VersionId, create: bool) -> Option<&mut Option<Slot>> {
        let tid = id.consumer.index();
        if self.threads.len() <= tid {
            if !create {
                return None;
            }
            self.threads.resize_with(tid + 1, ThreadVersions::default);
        }
        let per = &mut self.threads[tid];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        let chunk = if ci < DENSE_CHUNKS {
            let ci = ci as usize;
            if per.dense.len() <= ci {
                if !create {
                    return None;
                }
                per.dense.resize_with(ci + 1, || None);
            }
            if per.dense[ci].is_none() {
                if !create {
                    return None;
                }
                let chunk = per.fresh_chunk();
                per.dense[ci] = Some(chunk);
            }
            per.dense[ci].as_mut().expect("just ensured")
        } else if per.spill.contains_key(&ci) {
            per.spill.get_mut(&ci).expect("just checked")
        } else if create {
            let chunk = per.fresh_chunk();
            per.spill.entry(ci).or_insert(chunk)
        } else {
            return None;
        };
        Some(&mut chunk.slots[si])
    }

    /// Vacates `id`'s slot and frees its chunk when that was the last
    /// occupied slot (the reclamation that keeps long streams bounded).
    fn vacate(&mut self, id: VersionId) {
        let per = &mut self.threads[id.consumer.index()];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        if ci < DENSE_CHUNKS {
            let chunk = per.dense[ci as usize].as_mut().expect("occupied chunk");
            chunk.slots[si] = None;
            chunk.occupied -= 1;
            if chunk.occupied == 0 {
                let chunk = per.dense[ci as usize].take().expect("present");
                per.park(chunk);
            }
        } else {
            let chunk = per.spill.get_mut(&ci).expect("occupied chunk");
            chunk.slots[si] = None;
            chunk.occupied -= 1;
            if chunk.occupied == 0 {
                let chunk = per.spill.remove(&ci).expect("present");
                per.park(chunk);
            }
        }
    }

    /// Bumps the occupancy of `id`'s (existing) chunk.
    fn note_occupied(&mut self, id: VersionId) {
        let per = &mut self.threads[id.consumer.index()];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let chunk = if ci < DENSE_CHUNKS {
            per.dense[ci as usize].as_mut().expect("just created")
        } else {
            per.spill.get_mut(&ci).expect("just created")
        };
        chunk.occupied += 1;
    }

    /// Publishes versioned metadata for `id` covering `range`, to be
    /// consumed by `consumers` reader records (several pre-drain loads of
    /// the same block may share one snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the id is already present (version ids are unique per
    /// dynamic conflict), `consumers` is zero, or the snapshot length
    /// mismatches the range.
    pub fn produce(&mut self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        assert_eq!(snapshot.len() as u64, range.len, "snapshot length mismatch");
        assert!(consumers > 0, "version without consumers");
        self.produced += 1;
        let slot = self.slot_mut(id, true).expect("created");
        // Consumers that already passed read the live (still pre-store)
        // shadow; only the remainder need the snapshot.
        let (already, was_occupied) = match slot {
            None => (0, false),
            Some(Slot::Bypassed(n)) => (*n, true),
            Some(Slot::Live { .. }) => panic!("duplicate version {id}"),
        };
        let remaining = consumers.saturating_sub(already);
        if remaining == 0 {
            if was_occupied {
                self.vacate(id);
            }
            return;
        }
        *slot = Some(Slot::Live {
            range,
            snapshot,
            consumers: remaining,
        });
        if !was_occupied {
            self.note_occupied(id);
        }
        self.outstanding += 1;
        self.peak = self.peak.max(self.outstanding);
    }

    /// Notes that a consumer of `id` proceeded before production: the
    /// producer had not applied its store, so the live shadow was still the
    /// correct pre-store state (§5.5 without the stall).
    pub fn bypass(&mut self, id: VersionId) {
        self.consumed += 1;
        let slot = self.slot_mut(id, true).expect("created");
        match slot {
            None => {
                *slot = Some(Slot::Bypassed(1));
                self.note_occupied(id);
            }
            Some(Slot::Bypassed(n)) => *n += 1,
            Some(Slot::Live { .. }) => unreachable!("bypass of an available version {id}"),
        }
    }

    /// Whether `id` has been produced and not yet consumed.
    pub fn is_available(&self, id: VersionId) -> bool {
        let Some(per) = self.threads.get(id.consumer.index()) else {
            return false;
        };
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        let chunk = if ci < DENSE_CHUNKS {
            per.dense.get(ci as usize).and_then(Option::as_ref)
        } else {
            per.spill.get(&ci)
        };
        matches!(chunk.map(|c| &c.slots[si]), Some(Some(Slot::Live { .. })))
    }

    /// Consumes the version (one reference), or `None` if the producer has
    /// not reached its produce point yet — the consumer must stall. The
    /// entry is retired when its last consumer takes it.
    pub fn consume(&mut self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let slot = self.slot_mut(id, false)?;
        let Some(Slot::Live {
            range,
            snapshot,
            consumers,
        }) = slot
        else {
            return None;
        };
        *consumers -= 1;
        let retired = *consumers == 0;
        let out = if retired {
            (*range, std::mem::take(snapshot))
        } else {
            (*range, snapshot.clone())
        };
        self.consumed += 1;
        if retired {
            self.outstanding -= 1;
            self.vacate(id);
        }
        Some(out)
    }

    /// Versions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Versions consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Largest number of simultaneously outstanding versions — bounds the
    /// hardware table size this would need.
    pub fn peak_outstanding(&self) -> usize {
        self.peak
    }

    /// Versions currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

/// Dense first-level budget of one concurrent shard: rids below
/// `CONC_DENSE_CHUNKS * CHUNK_RIDS` (≈ 2 million records per thread) index
/// the flat `OnceLock` array directly; anything beyond spills to the
/// mutex-protected side map.
const CONC_DENSE_CHUNKS: u64 = 1 << 14;

/// One chunk of the concurrent table: per-slot payload mutexes plus the
/// lock-free availability flags the consumer-side poll reads.
#[derive(Debug)]
struct ConcChunk {
    /// 1 when the slot holds a produced, not-yet-retired version. Purely a
    /// polling accelerator — all payload hand-off happens under the slot
    /// mutex.
    avail: Box<[AtomicU8]>,
    /// Occupied (non-`None`) slots, maintained by the slot transitions;
    /// lets the spill tier reclaim a fully drained chunk.
    occupied: AtomicU32,
    slots: Box<[Mutex<Option<Slot>>]>,
}

impl ConcChunk {
    fn new() -> Self {
        ConcChunk {
            avail: (0..CHUNK_RIDS).map(|_| AtomicU8::new(0)).collect(),
            occupied: AtomicU32::new(0),
            slots: (0..CHUNK_RIDS).map(|_| Mutex::new(None)).collect(),
        }
    }
}

/// One consumer thread's shard: lazily initialized chunk index plus the
/// parked-consumer wakeup path.
#[derive(Debug)]
struct Shard {
    /// First level: chunk index → chunk, initialized race-free on first
    /// touch (mirrors `AtomicShadow`).
    dense: Box<[OnceLock<Box<ConcChunk>>]>,
    /// Outlier chunks beyond the dense span. `Arc` lets an accessor clone a
    /// handle out of the lock and work without holding it.
    spill: Mutex<BTreeMap<u64, Arc<ConcChunk>>>,
    /// Parking lot for the shard's consumer while its version is
    /// unproduced; producers notify after flipping the availability flag.
    park: Mutex<()>,
    wakeup: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            dense: (0..CONC_DENSE_CHUNKS).map(|_| OnceLock::new()).collect(),
            spill: Mutex::new(BTreeMap::new()),
            park: Mutex::new(()),
            wakeup: Condvar::new(),
        }
    }

    /// Runs `f` over the chunk holding chunk index `ci`. With `create`
    /// unset, untouched chunks are skipped (availability polls of never-
    /// produced ids must not allocate); otherwise the chunk is initialized
    /// race-free first.
    ///
    /// Dense chunks are accessed lock-free (and, `OnceLock` being
    /// irrevocable, never reclaimed). Spill chunks instead do all their
    /// work *under* the spill mutex — the tier exists for rare far-outlier
    /// rids — which is what makes it safe to reclaim a spill chunk the
    /// moment its last slot drains: no thread can hold the chunk outside
    /// the lock.
    fn with_chunk<R>(&self, ci: u64, create: bool, f: impl FnOnce(&ConcChunk) -> R) -> Option<R> {
        if ci < CONC_DENSE_CHUNKS {
            let slot = &self.dense[ci as usize];
            return match (slot.get(), create) {
                (Some(chunk), _) => Some(f(chunk)),
                (None, true) => Some(f(slot.get_or_init(|| Box::new(ConcChunk::new())))),
                (None, false) => None,
            };
        }
        let mut spill = self.spill.lock().expect("poisoned");
        let chunk = match spill.entry(ci) {
            std::collections::btree_map::Entry::Vacant(_) if !create => return None,
            entry => Arc::clone(entry.or_insert_with(|| Arc::new(ConcChunk::new()))),
        };
        let out = f(&chunk);
        if chunk.occupied.load(Ordering::Relaxed) == 0 {
            spill.remove(&ci);
        }
        Some(out)
    }
}

/// The `Send + Sync` version table shared by the threaded backend's
/// workers: same §5.5 semantics and accounting as [`VersionTable`], safe
/// across real producer/consumer threads. See the module docs for the
/// sharded-chunk + atomic-availability design.
#[derive(Debug)]
pub struct ConcurrentVersionTable {
    shards: Box<[Shard]>,
    produced: AtomicU64,
    consumed: AtomicU64,
    outstanding: AtomicUsize,
    peak: AtomicUsize,
}

impl ConcurrentVersionTable {
    /// An empty table for `threads` monitored streams (version ids name
    /// their consumer thread, which must be below `threads`).
    pub fn new(threads: usize) -> Self {
        ConcurrentVersionTable {
            shards: (0..threads.max(1)).map(|_| Shard::new()).collect(),
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    fn shard(&self, id: VersionId) -> &Shard {
        self.shards
            .get(id.consumer.index())
            .expect("version id's consumer thread is within the table's thread count")
    }

    fn split(id: VersionId) -> (u64, usize) {
        (
            id.consumer_rid.0 / CHUNK_RIDS,
            (id.consumer_rid.0 % CHUNK_RIDS) as usize,
        )
    }

    /// Publishes versioned metadata for `id` covering `range` and wakes the
    /// shard's parked consumer, if any. Semantics (and panics) match
    /// [`VersionTable::produce`]: consumers that already bypassed are
    /// subtracted, and a fully pre-bypassed version retires immediately.
    ///
    /// # Panics
    ///
    /// Panics if the id is already present, `consumers` is zero, or the
    /// snapshot length mismatches the range.
    pub fn produce(&self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        assert_eq!(snapshot.len() as u64, range.len, "snapshot length mismatch");
        assert!(consumers > 0, "version without consumers");
        self.produced.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(id);
        let (ci, si) = Self::split(id);
        let became_live = shard
            .with_chunk(ci, true, |chunk| {
                let mut slot = chunk.slots[si].lock().expect("poisoned");
                let already = match &*slot {
                    None => 0,
                    Some(Slot::Bypassed(n)) => *n,
                    Some(Slot::Live { .. }) => panic!("duplicate version {id}"),
                };
                let was_occupied = slot.is_some();
                let remaining = consumers.saturating_sub(already);
                if remaining == 0 {
                    // Every reader already bypassed: nothing to publish.
                    *slot = None;
                    if was_occupied {
                        chunk.occupied.fetch_sub(1, Ordering::Relaxed);
                    }
                    false
                } else {
                    *slot = Some(Slot::Live {
                        range,
                        snapshot,
                        consumers: remaining,
                    });
                    if !was_occupied {
                        chunk.occupied.fetch_add(1, Ordering::Relaxed);
                    }
                    chunk.avail[si].store(1, Ordering::Release);
                    true
                }
            })
            .expect("chunk created");
        if became_live {
            let now = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
            self.peak.fetch_max(now, Ordering::Relaxed);
            // Pairing the notify with a (briefly held) park lock closes the
            // check-then-wait race: a consumer that saw the flag clear is
            // either still holding the lock (will re-check) or already
            // waiting (will be woken).
            drop(shard.park.lock().expect("poisoned"));
            shard.wakeup.notify_all();
        }
    }

    /// Notes that a consumer of `id` proceeded before production (the
    /// deterministic paths' §5.5-without-the-stall case; real-thread
    /// consumers wait instead — see the module docs).
    pub fn bypass(&self, id: VersionId) {
        self.consumed.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(id);
        let (ci, si) = Self::split(id);
        shard
            .with_chunk(ci, true, |chunk| {
                let mut slot = chunk.slots[si].lock().expect("poisoned");
                match &mut *slot {
                    None => {
                        *slot = Some(Slot::Bypassed(1));
                        chunk.occupied.fetch_add(1, Ordering::Relaxed);
                    }
                    Some(Slot::Bypassed(n)) => *n += 1,
                    Some(Slot::Live { .. }) => unreachable!("bypass of an available version {id}"),
                }
            })
            .expect("chunk created");
    }

    /// Whether `id` has been produced and not yet retired — a lock-free
    /// two-index poll of the availability flag (the threaded consumer's
    /// fast path; dense chunks take no lock at all).
    pub fn is_available(&self, id: VersionId) -> bool {
        let Some(shard) = self.shards.get(id.consumer.index()) else {
            return false;
        };
        let (ci, si) = Self::split(id);
        shard
            .with_chunk(ci, false, |chunk| {
                chunk.avail[si].load(Ordering::Acquire) != 0
            })
            .unwrap_or(false)
    }

    /// Consumes one reference to `id`'s version, or `None` when the
    /// producer has not published it yet. The entry retires (and its flag
    /// clears) when the last consumer takes it.
    pub fn consume(&self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let shard = self.shards.get(id.consumer.index())?;
        let (ci, si) = Self::split(id);
        let (out, retired) = shard.with_chunk(ci, false, |chunk| {
            let mut slot = chunk.slots[si].lock().expect("poisoned");
            let Some(Slot::Live {
                range,
                snapshot,
                consumers,
            }) = &mut *slot
            else {
                return None;
            };
            *consumers -= 1;
            let retired = *consumers == 0;
            let out = if retired {
                (*range, std::mem::take(snapshot))
            } else {
                (*range, snapshot.clone())
            };
            if retired {
                chunk.avail[si].store(0, Ordering::Release);
                *slot = None;
                chunk.occupied.fetch_sub(1, Ordering::Relaxed);
            }
            Some((out, retired))
        })??;
        self.consumed.fetch_add(1, Ordering::Relaxed);
        if retired {
            self.outstanding.fetch_sub(1, Ordering::Relaxed);
        }
        Some(out)
    }

    /// Parks until `id` becomes available or `timeout` elapses; returns
    /// whether it is available now. Callers loop around this (re-checking
    /// their own abort/deadlock conditions between waits); the producer's
    /// [`produce`](Self::produce) wakes parked consumers immediately, so
    /// the timeout only bounds how often a starved consumer re-runs its
    /// liveness checks.
    pub fn wait_available(&self, id: VersionId, timeout: Duration) -> bool {
        if self.is_available(id) {
            return true;
        }
        let Some(shard) = self.shards.get(id.consumer.index()) else {
            return false;
        };
        let guard = shard.park.lock().expect("poisoned");
        // Re-check under the park lock: a produce between the first check
        // and the lock acquisition must not strand us in the wait.
        if self.is_available(id) {
            return true;
        }
        let _unused = shard.wakeup.wait_timeout(guard, timeout).expect("poisoned");
        self.is_available(id)
    }

    /// Versions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced.load(Ordering::Relaxed)
    }

    /// Versions consumed so far (bypasses included, as in the sequential
    /// table).
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Relaxed)
    }

    /// Largest number of simultaneously outstanding versions observed.
    pub fn peak_outstanding(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Versions currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{Rid, ThreadId};

    fn vid(t: u16, r: u64) -> VersionId {
        VersionId {
            consumer: ThreadId(t),
            consumer_rid: Rid(r),
        }
    }

    #[test]
    fn produce_then_consume() {
        let mut t = VersionTable::new();
        let id = vid(0, 2);
        let r = AddrRange::new(0x100, 4);
        assert!(!t.is_available(id));
        t.produce(id, r, vec![0b11, 0, 0, 0b01], 1);
        assert!(t.is_available(id));
        let (range, snap) = t.consume(id).expect("available");
        assert_eq!(range, r);
        assert_eq!(snap, vec![0b11, 0, 0, 0b01]);
        assert!(!t.is_available(id));
        assert_eq!(t.produced(), 1);
        assert_eq!(t.consumed(), 1);
    }

    #[test]
    fn consume_before_produce_stalls() {
        let mut t = VersionTable::new();
        assert!(t.consume(vid(1, 5)).is_none());
        assert_eq!(t.consumed(), 0);
    }

    #[test]
    fn peak_outstanding_tracks_high_water() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 2), AddrRange::new(8, 1), vec![1], 1);
        t.consume(vid(0, 1));
        t.produce(vid(1, 1), AddrRange::new(16, 1), vec![0], 1);
        assert_eq!(t.peak_outstanding(), 2);
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate version")]
    fn duplicate_produce_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_snapshot_length_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 4), vec![0], 1);
    }

    #[test]
    fn shared_version_consumed_by_each_reader() {
        let mut t = VersionTable::new();
        let id = vid(0, 9);
        t.produce(id, AddrRange::new(0, 2), vec![1, 0], 2);
        assert!(t.consume(id).is_some());
        assert!(t.is_available(id), "one consumer left");
        assert!(t.consume(id).is_some());
        assert!(!t.is_available(id), "retired after last consumer");
        assert_eq!(t.consumed(), 2);
    }

    #[test]
    fn bypass_then_produce_skips_satisfied_readers() {
        let mut t = VersionTable::new();
        let id = vid(2, 40);
        t.bypass(id);
        t.bypass(id);
        // Both readers already passed: the snapshot retires immediately.
        t.produce(id, AddrRange::new(0, 1), vec![7], 2);
        assert!(!t.is_available(id));
        assert_eq!(t.outstanding(), 0);
        // One of three readers passed early: two consumes drain it.
        let id2 = vid(2, 41);
        t.bypass(id2);
        t.produce(id2, AddrRange::new(0, 1), vec![7], 3);
        assert!(t.consume(id2).is_some());
        assert!(t.consume(id2).is_some());
        assert!(!t.is_available(id2));
    }

    #[test]
    fn drained_chunks_are_reclaimed() {
        let mut t = VersionTable::new();
        // Walk a long rid space, consuming as we go: residency must track
        // the outstanding window, not the rid high-water mark.
        for r in 1..=(CHUNK_RIDS * 8) {
            let id = vid(0, r);
            t.produce(id, AddrRange::new(0, 1), vec![1], 1);
            assert!(t.consume(id).is_some());
        }
        assert_eq!(t.outstanding(), 0);
        let live_chunks =
            t.threads[0].dense.iter().filter(|c| c.is_some()).count() + t.threads[0].spill.len();
        assert_eq!(live_chunks, 0, "fully retired chunks are freed");
    }

    #[test]
    fn far_future_rids_use_the_spill_tier() {
        let mut t = VersionTable::new();
        let far = vid(1, DENSE_CHUNKS * CHUNK_RIDS + 17);
        t.produce(far, AddrRange::new(0, 1), vec![3], 1);
        assert!(t.is_available(far));
        assert!(
            t.threads[1].dense.is_empty(),
            "outliers must not grow the dense first level"
        );
        assert_eq!(t.consume(far).map(|(_, s)| s), Some(vec![3]));
        assert!(t.threads[1].spill.is_empty(), "spill chunk reclaimed");
    }

    #[test]
    fn concurrent_produce_then_consume() {
        let t = ConcurrentVersionTable::new(2);
        let id = vid(0, 2);
        let r = AddrRange::new(0x100, 4);
        assert!(!t.is_available(id));
        assert!(t.consume(id).is_none(), "consume before produce misses");
        t.produce(id, r, vec![0b11, 0, 0, 0b01], 1);
        assert!(t.is_available(id));
        assert_eq!(t.consume(id), Some((r, vec![0b11, 0, 0, 0b01])));
        assert!(!t.is_available(id));
        assert_eq!((t.produced(), t.consumed(), t.outstanding()), (1, 1, 0));
        assert_eq!(t.peak_outstanding(), 1);
    }

    #[test]
    fn concurrent_shared_and_bypassed_versions_account_like_sequential() {
        let t = ConcurrentVersionTable::new(4);
        let id = vid(2, 40);
        t.bypass(id);
        t.bypass(id);
        // Both readers already passed: the snapshot retires immediately.
        t.produce(id, AddrRange::new(0, 1), vec![7], 2);
        assert!(!t.is_available(id));
        assert_eq!(t.outstanding(), 0);
        // One of three readers passed early: two consumes drain it.
        let id2 = vid(2, 41);
        t.bypass(id2);
        t.produce(id2, AddrRange::new(0, 1), vec![7], 3);
        assert!(t.consume(id2).is_some());
        assert!(t.is_available(id2), "one consumer left");
        assert!(t.consume(id2).is_some());
        assert!(!t.is_available(id2), "retired after last consumer");
        assert_eq!(t.consumed(), 5, "bypasses count as consumption");
    }

    #[test]
    #[should_panic(expected = "duplicate version")]
    fn concurrent_duplicate_produce_panics() {
        let t = ConcurrentVersionTable::new(1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
    }

    #[test]
    fn concurrent_far_rids_use_the_spill_tier_and_reclaim() {
        let t = ConcurrentVersionTable::new(2);
        let far = vid(1, CONC_DENSE_CHUNKS * CHUNK_RIDS + 17);
        assert!(!t.is_available(far), "spill miss polls without allocating");
        t.produce(far, AddrRange::new(0, 1), vec![3], 1);
        assert!(t.is_available(far));
        assert_eq!(
            t.shards[1].spill.lock().unwrap().len(),
            1,
            "outliers must not grow the dense first level"
        );
        assert_eq!(t.consume(far).map(|(_, s)| s), Some(vec![3]));
        assert!(!t.is_available(far));
        assert!(
            t.shards[1].spill.lock().unwrap().is_empty(),
            "a drained spill chunk is reclaimed"
        );
        // The chunk shell is rebuilt transparently on the next outlier.
        let far2 = vid(1, CONC_DENSE_CHUNKS * CHUNK_RIDS + 18);
        t.produce(far2, AddrRange::new(0, 1), vec![4], 1);
        assert_eq!(t.consume(far2).map(|(_, s)| s), Some(vec![4]));
        assert!(t.shards[1].spill.lock().unwrap().is_empty());
    }

    #[test]
    fn parked_consumer_is_woken_by_produce() {
        let t = ConcurrentVersionTable::new(2);
        let id = vid(0, 9);
        let r = AddrRange::new(0x40, 2);
        std::thread::scope(|scope| {
            let table = &t;
            scope.spawn(move || {
                // Park (bounded slices, as the backend does) until the
                // producer publishes, then take the version.
                while !table.wait_available(id, Duration::from_millis(50)) {}
                assert_eq!(table.consume(id), Some((r, vec![5, 6])));
            });
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                table.produce(id, r, vec![5, 6], 1);
            });
        });
        assert_eq!((t.outstanding(), t.consumed()), (0, 1));
    }

    #[test]
    fn concurrent_producers_race_distinct_ids_safely() {
        // Four producer threads publish disjoint id sets for two consumer
        // shards while both consumers drain with waits: every snapshot must
        // arrive intact and the accounting must balance.
        const PER_PRODUCER: u64 = 256;
        let t = ConcurrentVersionTable::new(2);
        std::thread::scope(|scope| {
            let table = &t;
            for p in 0..4u64 {
                scope.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let consumer = (p % 2) as u16;
                        let rid = 1 + p / 2 * PER_PRODUCER + i;
                        let id = vid(consumer, rid);
                        table.produce(
                            id,
                            AddrRange::new(rid * 8, 8),
                            vec![(rid % 251) as u8; 8],
                            1,
                        );
                    }
                });
            }
            for consumer in 0..2u16 {
                scope.spawn(move || {
                    for rid in 1..=(2 * PER_PRODUCER) {
                        let id = vid(consumer, rid);
                        loop {
                            if let Some((range, snap)) = table.consume(id) {
                                assert_eq!(range, AddrRange::new(rid * 8, 8));
                                assert_eq!(snap, vec![(rid % 251) as u8; 8]);
                                break;
                            }
                            table.wait_available(id, Duration::from_millis(5));
                        }
                    }
                });
            }
        });
        assert_eq!(t.produced(), 4 * PER_PRODUCER);
        assert_eq!(t.consumed(), 4 * PER_PRODUCER);
        assert_eq!(t.outstanding(), 0);
        assert!(t.peak_outstanding() >= 1);
    }
}
