//! Versioned metadata for TSO support (§5.5).
//!
//! When a load violates SC relative to a remote write, the R→W dependence is
//! *reversed*: the writer's lifeguard first *produces* a version — a copy of
//! the current metadata for the conflicting range — and the reader's
//! lifeguard *consumes* that version instead of waiting for (or racing with)
//! the writer. The version id combines the consuming thread's id with the
//! record id of its SC-violating load, so ids are unique per dynamic load.
//!
//! # Layout
//!
//! A [`VersionId`] is `(consumer thread, consumer record id)` — and record
//! ids are *stream positions*, dense and monotonically increasing per
//! thread. The table therefore mirrors the flat two-level treatment that
//! replaced `ShadowMemory`'s hash map: per consumer thread, a dense
//! first-level array indexed by `rid / CHUNK_RIDS` points at lazily
//! allocated fixed-size chunks of slots indexed by the low rid bits. A
//! lookup is two array indexes — no hashing, no probing — and the hot
//! produce→consume window of a run keeps hitting the same one or two
//! resident chunks. Fully retired chunks are freed, so a long (streaming)
//! run's table residency tracks the *outstanding* window, not stream
//! length. Pathological far-future rids beyond the dense budget land in a
//! sorted spill tier instead of growing the first level without bound.

use paralog_events::{AddrRange, VersionId};
use std::collections::BTreeMap;

/// Slots per second-level chunk (covers 128 consecutive record ids).
const CHUNK_RIDS: u64 = 128;

/// First-level budget: rids below `DENSE_CHUNKS * CHUNK_RIDS` (≈ half a
/// billion records per thread) index the dense array directly; anything
/// beyond spills to the sorted side tier.
const DENSE_CHUNKS: u64 = 1 << 22;

/// One version's lifecycle state.
#[derive(Debug)]
enum Slot {
    /// Consumers that proceeded before the version existed (the pre-store
    /// state was still current shadow, so no snapshot was needed).
    Bypassed(u32),
    /// Produced and awaiting its remaining consumers.
    Live {
        range: AddrRange,
        snapshot: Vec<u8>,
        consumers: u32,
    },
}

/// A chunk of `CHUNK_RIDS` slots plus its occupancy count (for
/// reclamation).
#[derive(Debug)]
struct Chunk {
    occupied: u32,
    slots: Box<[Option<Slot>]>,
}

impl Chunk {
    fn new() -> Box<Chunk> {
        Box::new(Chunk {
            occupied: 0,
            slots: (0..CHUNK_RIDS).map(|_| None).collect(),
        })
    }
}

/// One consumer thread's chunked slot space.
#[derive(Debug, Default)]
struct ThreadVersions {
    dense: Vec<Option<Box<Chunk>>>,
    spill: BTreeMap<u64, Box<Chunk>>,
    /// One reclaimed chunk kept for reuse: the outstanding window crosses
    /// chunk boundaries constantly, and drain→refill churn must not turn
    /// into an allocation per window step.
    spare: Option<Box<Chunk>>,
}

impl ThreadVersions {
    /// A fresh (all-vacant) chunk, reusing the spare when one is parked.
    fn fresh_chunk(&mut self) -> Box<Chunk> {
        self.spare.take().unwrap_or_else(Chunk::new)
    }

    /// Parks a fully drained chunk for reuse (at most one is kept).
    fn park(&mut self, chunk: Box<Chunk>) {
        debug_assert!(chunk.occupied == 0);
        self.spare.get_or_insert(chunk);
    }
}

/// Table of produced-but-not-yet-consumed metadata versions, shared by all
/// lifeguard threads.
#[derive(Debug, Default)]
pub struct VersionTable {
    threads: Vec<ThreadVersions>,
    produced: u64,
    consumed: u64,
    outstanding: usize,
    peak: usize,
}

impl VersionTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        VersionTable::default()
    }

    /// The slot for `id`, allocating its chunk (and growing the per-thread
    /// first level) when `create` is set; `None` when absent and not
    /// creating.
    fn slot_mut(&mut self, id: VersionId, create: bool) -> Option<&mut Option<Slot>> {
        let tid = id.consumer.index();
        if self.threads.len() <= tid {
            if !create {
                return None;
            }
            self.threads.resize_with(tid + 1, ThreadVersions::default);
        }
        let per = &mut self.threads[tid];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        let chunk = if ci < DENSE_CHUNKS {
            let ci = ci as usize;
            if per.dense.len() <= ci {
                if !create {
                    return None;
                }
                per.dense.resize_with(ci + 1, || None);
            }
            if per.dense[ci].is_none() {
                if !create {
                    return None;
                }
                let chunk = per.fresh_chunk();
                per.dense[ci] = Some(chunk);
            }
            per.dense[ci].as_mut().expect("just ensured")
        } else if per.spill.contains_key(&ci) {
            per.spill.get_mut(&ci).expect("just checked")
        } else if create {
            let chunk = per.fresh_chunk();
            per.spill.entry(ci).or_insert(chunk)
        } else {
            return None;
        };
        Some(&mut chunk.slots[si])
    }

    /// Vacates `id`'s slot and frees its chunk when that was the last
    /// occupied slot (the reclamation that keeps long streams bounded).
    fn vacate(&mut self, id: VersionId) {
        let per = &mut self.threads[id.consumer.index()];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        if ci < DENSE_CHUNKS {
            let chunk = per.dense[ci as usize].as_mut().expect("occupied chunk");
            chunk.slots[si] = None;
            chunk.occupied -= 1;
            if chunk.occupied == 0 {
                let chunk = per.dense[ci as usize].take().expect("present");
                per.park(chunk);
            }
        } else {
            let chunk = per.spill.get_mut(&ci).expect("occupied chunk");
            chunk.slots[si] = None;
            chunk.occupied -= 1;
            if chunk.occupied == 0 {
                let chunk = per.spill.remove(&ci).expect("present");
                per.park(chunk);
            }
        }
    }

    /// Bumps the occupancy of `id`'s (existing) chunk.
    fn note_occupied(&mut self, id: VersionId) {
        let per = &mut self.threads[id.consumer.index()];
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let chunk = if ci < DENSE_CHUNKS {
            per.dense[ci as usize].as_mut().expect("just created")
        } else {
            per.spill.get_mut(&ci).expect("just created")
        };
        chunk.occupied += 1;
    }

    /// Publishes versioned metadata for `id` covering `range`, to be
    /// consumed by `consumers` reader records (several pre-drain loads of
    /// the same block may share one snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the id is already present (version ids are unique per
    /// dynamic conflict), `consumers` is zero, or the snapshot length
    /// mismatches the range.
    pub fn produce(&mut self, id: VersionId, range: AddrRange, snapshot: Vec<u8>, consumers: u32) {
        assert_eq!(snapshot.len() as u64, range.len, "snapshot length mismatch");
        assert!(consumers > 0, "version without consumers");
        self.produced += 1;
        let slot = self.slot_mut(id, true).expect("created");
        // Consumers that already passed read the live (still pre-store)
        // shadow; only the remainder need the snapshot.
        let (already, was_occupied) = match slot {
            None => (0, false),
            Some(Slot::Bypassed(n)) => (*n, true),
            Some(Slot::Live { .. }) => panic!("duplicate version {id}"),
        };
        let remaining = consumers.saturating_sub(already);
        if remaining == 0 {
            if was_occupied {
                self.vacate(id);
            }
            return;
        }
        *slot = Some(Slot::Live {
            range,
            snapshot,
            consumers: remaining,
        });
        if !was_occupied {
            self.note_occupied(id);
        }
        self.outstanding += 1;
        self.peak = self.peak.max(self.outstanding);
    }

    /// Notes that a consumer of `id` proceeded before production: the
    /// producer had not applied its store, so the live shadow was still the
    /// correct pre-store state (§5.5 without the stall).
    pub fn bypass(&mut self, id: VersionId) {
        self.consumed += 1;
        let slot = self.slot_mut(id, true).expect("created");
        match slot {
            None => {
                *slot = Some(Slot::Bypassed(1));
                self.note_occupied(id);
            }
            Some(Slot::Bypassed(n)) => *n += 1,
            Some(Slot::Live { .. }) => unreachable!("bypass of an available version {id}"),
        }
    }

    /// Whether `id` has been produced and not yet consumed.
    pub fn is_available(&self, id: VersionId) -> bool {
        let Some(per) = self.threads.get(id.consumer.index()) else {
            return false;
        };
        let ci = id.consumer_rid.0 / CHUNK_RIDS;
        let si = (id.consumer_rid.0 % CHUNK_RIDS) as usize;
        let chunk = if ci < DENSE_CHUNKS {
            per.dense.get(ci as usize).and_then(Option::as_ref)
        } else {
            per.spill.get(&ci)
        };
        matches!(chunk.map(|c| &c.slots[si]), Some(Some(Slot::Live { .. })))
    }

    /// Consumes the version (one reference), or `None` if the producer has
    /// not reached its produce point yet — the consumer must stall. The
    /// entry is retired when its last consumer takes it.
    pub fn consume(&mut self, id: VersionId) -> Option<(AddrRange, Vec<u8>)> {
        let slot = self.slot_mut(id, false)?;
        let Some(Slot::Live {
            range,
            snapshot,
            consumers,
        }) = slot
        else {
            return None;
        };
        *consumers -= 1;
        let retired = *consumers == 0;
        let out = if retired {
            (*range, std::mem::take(snapshot))
        } else {
            (*range, snapshot.clone())
        };
        self.consumed += 1;
        if retired {
            self.outstanding -= 1;
            self.vacate(id);
        }
        Some(out)
    }

    /// Versions produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Versions consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Largest number of simultaneously outstanding versions — bounds the
    /// hardware table size this would need.
    pub fn peak_outstanding(&self) -> usize {
        self.peak
    }

    /// Versions currently outstanding.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{Rid, ThreadId};

    fn vid(t: u16, r: u64) -> VersionId {
        VersionId {
            consumer: ThreadId(t),
            consumer_rid: Rid(r),
        }
    }

    #[test]
    fn produce_then_consume() {
        let mut t = VersionTable::new();
        let id = vid(0, 2);
        let r = AddrRange::new(0x100, 4);
        assert!(!t.is_available(id));
        t.produce(id, r, vec![0b11, 0, 0, 0b01], 1);
        assert!(t.is_available(id));
        let (range, snap) = t.consume(id).expect("available");
        assert_eq!(range, r);
        assert_eq!(snap, vec![0b11, 0, 0, 0b01]);
        assert!(!t.is_available(id));
        assert_eq!(t.produced(), 1);
        assert_eq!(t.consumed(), 1);
    }

    #[test]
    fn consume_before_produce_stalls() {
        let mut t = VersionTable::new();
        assert!(t.consume(vid(1, 5)).is_none());
        assert_eq!(t.consumed(), 0);
    }

    #[test]
    fn peak_outstanding_tracks_high_water() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 2), AddrRange::new(8, 1), vec![1], 1);
        t.consume(vid(0, 1));
        t.produce(vid(1, 1), AddrRange::new(16, 1), vec![0], 1);
        assert_eq!(t.peak_outstanding(), 2);
        assert_eq!(t.outstanding(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate version")]
    fn duplicate_produce_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
        t.produce(vid(0, 1), AddrRange::new(0, 1), vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_snapshot_length_panics() {
        let mut t = VersionTable::new();
        t.produce(vid(0, 1), AddrRange::new(0, 4), vec![0], 1);
    }

    #[test]
    fn shared_version_consumed_by_each_reader() {
        let mut t = VersionTable::new();
        let id = vid(0, 9);
        t.produce(id, AddrRange::new(0, 2), vec![1, 0], 2);
        assert!(t.consume(id).is_some());
        assert!(t.is_available(id), "one consumer left");
        assert!(t.consume(id).is_some());
        assert!(!t.is_available(id), "retired after last consumer");
        assert_eq!(t.consumed(), 2);
    }

    #[test]
    fn bypass_then_produce_skips_satisfied_readers() {
        let mut t = VersionTable::new();
        let id = vid(2, 40);
        t.bypass(id);
        t.bypass(id);
        // Both readers already passed: the snapshot retires immediately.
        t.produce(id, AddrRange::new(0, 1), vec![7], 2);
        assert!(!t.is_available(id));
        assert_eq!(t.outstanding(), 0);
        // One of three readers passed early: two consumes drain it.
        let id2 = vid(2, 41);
        t.bypass(id2);
        t.produce(id2, AddrRange::new(0, 1), vec![7], 3);
        assert!(t.consume(id2).is_some());
        assert!(t.consume(id2).is_some());
        assert!(!t.is_available(id2));
    }

    #[test]
    fn drained_chunks_are_reclaimed() {
        let mut t = VersionTable::new();
        // Walk a long rid space, consuming as we go: residency must track
        // the outstanding window, not the rid high-water mark.
        for r in 1..=(CHUNK_RIDS * 8) {
            let id = vid(0, r);
            t.produce(id, AddrRange::new(0, 1), vec![1], 1);
            assert!(t.consume(id).is_some());
        }
        assert_eq!(t.outstanding(), 0);
        let live_chunks =
            t.threads[0].dense.iter().filter(|c| c.is_some()).count() + t.threads[0].spill.len();
        assert_eq!(live_chunks, 0, "fully retired chunks are freed");
    }

    #[test]
    fn far_future_rids_use_the_spill_tier() {
        let mut t = VersionTable::new();
        let far = vid(1, DENSE_CHUNKS * CHUNK_RIDS + 17);
        t.produce(far, AddrRange::new(0, 1), vec![3], 1);
        assert!(t.is_available(far));
        assert!(
            t.threads[1].dense.is_empty(),
            "outliers must not grow the dense first level"
        );
        assert_eq!(t.consume(far).map(|(_, s)| s), Some(vec![3]));
        assert!(t.threads[1].spill.is_empty(), "spill chunk reclaimed");
    }
}
