//! The globally advertised progress table (§5.2).
//!
//! Lifeguard threads share a memory-mapped table of progress counters indexed
//! by thread id; `progress[t]` holds the record id up to which *every* piece
//! of lifeguard work for thread `t` — including state still cached inside
//! accelerators, per delayed advertising (§4.2) — has completed. Each entry
//! lives on its own cache line to avoid coherence ping-pong.
//!
//! Two implementations: [`ProgressTable`] for the deterministic simulator and
//! [`SharedProgressTable`] (atomics) for the real-thread demonstration
//! executor.

use paralog_events::{Rid, ThreadId};
use std::sync::atomic::{AtomicU64, Ordering};

/// Progress table used inside the single-threaded simulator.
#[derive(Debug, Clone)]
pub struct ProgressTable {
    slots: Vec<Rid>,
}

impl ProgressTable {
    /// Creates a table for `threads` lifeguard threads, all at [`Rid::ZERO`].
    pub fn new(threads: usize) -> Self {
        ProgressTable {
            slots: vec![Rid::ZERO; threads],
        }
    }

    /// Number of threads covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently advertised progress of `thread`.
    pub fn get(&self, thread: ThreadId) -> Rid {
        self.slots[thread.index()]
    }

    /// Advertises `progress` for `thread`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if progress would move backwards — advertised
    /// progress is monotone by construction (delayed advertising may *hold
    /// back* but never regress).
    pub fn advertise(&mut self, thread: ThreadId, progress: Rid) {
        debug_assert!(
            progress >= self.slots[thread.index()],
            "progress of {thread} regressed: {} -> {}",
            self.slots[thread.index()],
            progress
        );
        self.slots[thread.index()] = progress;
    }

    /// Whether an arc requiring `src`'s progress to reach `rid` is satisfied.
    pub fn satisfies(&self, src: ThreadId, rid: Rid) -> bool {
        self.get(src) >= rid
    }
}

/// Cache-line-padded atomic slot.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedAtomicU64(AtomicU64);

/// Progress table shared between real OS threads (the demonstration
/// executor). Entries are release-published and acquire-read, mirroring the
/// hardware's memory-mapped counter semantics.
#[derive(Debug)]
pub struct SharedProgressTable {
    slots: Vec<PaddedAtomicU64>,
}

impl SharedProgressTable {
    /// Creates a table for `threads` lifeguard threads.
    pub fn new(threads: usize) -> Self {
        SharedProgressTable {
            slots: (0..threads).map(|_| PaddedAtomicU64::default()).collect(),
        }
    }

    /// Number of threads covered.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Currently advertised progress of `thread`.
    pub fn get(&self, thread: ThreadId) -> Rid {
        Rid(self.slots[thread.index()].0.load(Ordering::Acquire))
    }

    /// Advertises `progress` for `thread` (release ordering so metadata
    /// writes by the advertiser are visible to readers that observe it).
    pub fn advertise(&self, thread: ThreadId, progress: Rid) {
        self.slots[thread.index()]
            .0
            .store(progress.0, Ordering::Release);
    }

    /// Whether an arc requiring `src`'s progress to reach `rid` is satisfied.
    pub fn satisfies(&self, src: ThreadId, rid: Rid) -> bool {
        self.get(src) >= rid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut p = ProgressTable::new(2);
        assert_eq!(p.get(ThreadId(0)), Rid::ZERO);
        p.advertise(ThreadId(0), Rid(5));
        assert!(p.satisfies(ThreadId(0), Rid(5)));
        assert!(!p.satisfies(ThreadId(0), Rid(6)));
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "regressed")]
    fn regression_detected_in_debug() {
        let mut p = ProgressTable::new(1);
        p.advertise(ThreadId(0), Rid(5));
        p.advertise(ThreadId(0), Rid(3));
    }

    #[test]
    fn shared_table_roundtrip() {
        let p = SharedProgressTable::new(2);
        p.advertise(ThreadId(1), Rid(9));
        assert_eq!(p.get(ThreadId(1)), Rid(9));
        assert!(p.satisfies(ThreadId(1), Rid(9)));
        assert!(!p.satisfies(ThreadId(0), Rid(1)));
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn shared_table_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedProgressTable>();
    }

    #[test]
    fn slots_are_cache_line_padded() {
        assert_eq!(std::mem::size_of::<PaddedAtomicU64>(), 64);
    }
}
