//! The hardware range table for syscall race detection (§5.4).
//!
//! System calls execute in the kernel, outside event capture, so their
//! accesses to user buffers generate no dependence arcs. The wrapper library
//! includes the buffer range in the syscall's CA-Begin/CA-End messages; at
//! the lifeguard side a per-thread range table (one entry per core) holds the
//! ranges of currently in-flight system calls. The order-enforcing component
//! checks every delivered memory access against the table: a hit means the
//! access is *concurrent with* the system call — a race the lifeguard
//! typically resolves conservatively (TaintCheck taints the destination and
//! warns).

use paralog_events::{AddrRange, HighLevelKind, ThreadId};

/// One in-flight high-level event with a memory range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeEntry {
    /// The issuing thread.
    pub issuer: ThreadId,
    /// The event class (which syscall / library call).
    pub what: HighLevelKind,
    /// The affected memory range.
    pub range: AddrRange,
}

/// Per-lifeguard-thread range table with one slot per core in the system.
#[derive(Debug, Clone)]
pub struct RangeTable {
    slots: Vec<Option<RangeEntry>>,
    hits: u64,
    checks: u64,
}

impl RangeTable {
    /// Creates a table with one slot per core.
    pub fn new(cores: usize) -> Self {
        RangeTable {
            slots: vec![None; cores],
            hits: 0,
            checks: 0,
        }
    }

    /// Inserts the range for `issuer`'s in-flight event (CA-Begin).
    ///
    /// The paper sizes the table at one entry per core: a thread has at most
    /// one in-flight system call, so the slot is simply overwritten.
    pub fn insert(&mut self, issuer: ThreadId, what: HighLevelKind, range: AddrRange) {
        self.slots[issuer.index()] = Some(RangeEntry {
            issuer,
            what,
            range,
        });
    }

    /// Removes `issuer`'s entry (CA-End). Idempotent.
    pub fn remove(&mut self, issuer: ThreadId) {
        self.slots[issuer.index()] = None;
    }

    /// Checks an access against all in-flight ranges; returns the racing
    /// entry if the access overlaps one (excluding the accessor's own
    /// syscall, which is ordered by program order).
    pub fn check(&mut self, accessor: ThreadId, access: AddrRange) -> Option<RangeEntry> {
        self.checks += 1;
        let hit = self
            .slots
            .iter()
            .flatten()
            .find(|e| e.issuer != accessor && e.range.overlaps(&access))
            .copied();
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Accesses checked so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Races detected so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// In-flight entries (diagnostic).
    pub fn in_flight(&self) -> usize {
        self.slots.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::SyscallKind;

    const READ: HighLevelKind = HighLevelKind::Syscall(SyscallKind::ReadInput);

    #[test]
    fn detects_overlapping_access_from_other_thread() {
        let mut t = RangeTable::new(4);
        t.insert(ThreadId(1), READ, AddrRange::new(0x1000, 0x100));
        let hit = t.check(ThreadId(0), AddrRange::new(0x1080, 4));
        assert_eq!(hit.map(|e| e.issuer), Some(ThreadId(1)));
        assert_eq!(t.hits(), 1);
    }

    #[test]
    fn own_syscall_is_not_a_race() {
        let mut t = RangeTable::new(4);
        t.insert(ThreadId(1), READ, AddrRange::new(0x1000, 0x100));
        assert!(t.check(ThreadId(1), AddrRange::new(0x1080, 4)).is_none());
    }

    #[test]
    fn non_overlapping_access_misses() {
        let mut t = RangeTable::new(4);
        t.insert(ThreadId(1), READ, AddrRange::new(0x1000, 0x100));
        assert!(t.check(ThreadId(0), AddrRange::new(0x2000, 4)).is_none());
        assert_eq!(t.checks(), 1);
        assert_eq!(t.hits(), 0);
    }

    #[test]
    fn remove_ends_the_window() {
        let mut t = RangeTable::new(4);
        t.insert(ThreadId(1), READ, AddrRange::new(0x1000, 0x100));
        assert_eq!(t.in_flight(), 1);
        t.remove(ThreadId(1));
        assert_eq!(t.in_flight(), 0);
        assert!(t.check(ThreadId(0), AddrRange::new(0x1080, 4)).is_none());
        t.remove(ThreadId(1)); // idempotent
    }

    #[test]
    fn one_slot_per_issuer_overwrites() {
        let mut t = RangeTable::new(4);
        t.insert(ThreadId(1), READ, AddrRange::new(0x1000, 0x100));
        t.insert(ThreadId(1), READ, AddrRange::new(0x5000, 0x10));
        assert!(t.check(ThreadId(0), AddrRange::new(0x1000, 4)).is_none());
        assert!(t.check(ThreadId(0), AddrRange::new(0x5000, 4)).is_some());
    }
}
