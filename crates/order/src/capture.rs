//! Order capturing: turning coherence activity into dependence arcs.
//!
//! §5.1 of the paper describes two capture designs and an arc-reduction knob:
//!
//! * **Per-block** (aggressive, FDR-style): coherence acknowledgements carry
//!   the remote L1 line's last-access record id — the tightest sound
//!   timestamp.
//! * **Per-core** (reduced hardware): acknowledgements carry the remote
//!   core's *current* retirement counter instead; no per-line tag storage,
//!   but arcs become conservative and may stall lifeguards longer
//!   (Figure 8's "limited reduction" variant).
//!
//! Arc **reduction** drops arcs already implied by previously recorded arcs
//! plus program order (RTR): `Direct` tracks only the latest recorded arc per
//! source thread; `Transitive` additionally merges the source thread's vector
//! clock *as of the arc's source record*, which requires snapshot history —
//! exactly the hardware-cost trade-off the paper discusses.

use paralog_events::{ArcKind, DependenceArc, Rid, ThreadId};
use paralog_sim::RemoteTouch;
use std::collections::VecDeque;

/// Which timestamp coherence acknowledgements carry (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CapturePolicy {
    /// Per-cache-block timestamps (aggressive; FDR-style).
    #[default]
    PerBlock,
    /// Per-core retirement counter (reduced hardware; conservative).
    PerCore,
}

/// How aggressively already-implied arcs are dropped before recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Reduction {
    /// Record every observed arc.
    None,
    /// Drop arcs to a source record already covered by a *direct* earlier arc
    /// from the same source thread.
    Direct,
    /// Netzer/RTR-style transitive reduction using source vector-clock
    /// snapshots (aggressive dependence reduction in Figure 8).
    #[default]
    Transitive,
}

/// Bound on retained vector-clock snapshots per thread; beyond it the oldest
/// snapshots are discarded and reduction degrades gracefully (arcs are
/// recorded rather than dropped — always sound).
const HISTORY_LIMIT: usize = 4096;

#[derive(Debug, Clone)]
struct ThreadState {
    /// `vc[s]` = highest rid of thread `s` known ordered before this thread's
    /// current point (via recorded arcs + transitivity).
    vc: Vec<u64>,
    /// Snapshots of `vc` keyed by own rid, taken whenever `vc` changes.
    history: VecDeque<(u64, Vec<u64>)>,
}

impl ThreadState {
    fn new(threads: usize) -> Self {
        ThreadState {
            vc: vec![0; threads],
            history: VecDeque::new(),
        }
    }

    /// The vector clock this thread had at its record `rid` (latest snapshot
    /// not newer than `rid`); `None` when history has been pruned past it.
    fn vc_at(&self, rid: Rid) -> Option<&Vec<u64>> {
        // History is in ascending rid order; find the last entry <= rid.
        let mut best = None;
        for (r, vc) in self.history.iter().rev() {
            if *r <= rid.0 {
                best = Some(vc);
                break;
            }
        }
        best
    }

    fn snapshot(&mut self, rid: Rid) {
        if let Some((last, vc)) = self.history.back_mut() {
            if *last == rid.0 {
                *vc = self.vc.clone();
                return;
            }
        }
        self.history.push_back((rid.0, self.vc.clone()));
        if self.history.len() > HISTORY_LIMIT {
            self.history.pop_front();
        }
    }
}

/// Statistics of the capture pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Coherence conflicts observed (potential arcs).
    pub observed: u64,
    /// Arcs actually recorded into event streams.
    pub recorded: u64,
    /// Arcs dropped as implied (reduction wins).
    pub reduced: u64,
}

/// The order-capturing component: one per monitored application, covering all
/// its threads.
#[derive(Debug)]
pub struct OrderCapture {
    policy: CapturePolicy,
    reduction: Reduction,
    threads: Vec<ThreadState>,
    stats: CaptureStats,
}

impl OrderCapture {
    /// Creates capture state for `threads` application threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, policy: CapturePolicy, reduction: Reduction) -> Self {
        assert!(threads > 0, "need at least one thread");
        OrderCapture {
            policy,
            reduction,
            threads: (0..threads).map(|_| ThreadState::new(threads)).collect(),
            stats: CaptureStats::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> CapturePolicy {
        self.policy
    }

    /// The configured reduction level.
    pub fn reduction(&self) -> Reduction {
        self.reduction
    }

    /// Pipeline statistics.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Processes a coherence conflict suffered by `src` because of `dst`'s
    /// access at `dst_rid`: returns the arc to record in `dst`'s stream, or
    /// `None` if reduction proved it implied.
    ///
    /// `src` is the application thread running on `touch.remote_core`.
    pub fn on_touch(
        &mut self,
        dst: ThreadId,
        dst_rid: Rid,
        src: ThreadId,
        touch: &RemoteTouch,
    ) -> Option<DependenceArc> {
        self.on_touch_inner(dst, dst_rid, src, touch, true)
    }

    /// Variant for conflicts observed *out of program order* — TSO store
    /// drains record arcs onto already-retired store records while younger
    /// loads may have recorded arcs first. Reduction's "an earlier arc
    /// implies this one" argument needs the covering arc to sit on an
    /// *older* record, so out-of-order arcs are recorded unconditionally
    /// (they still update the knowledge vector for later in-order checks).
    pub fn on_touch_unordered(
        &mut self,
        dst: ThreadId,
        dst_rid: Rid,
        src: ThreadId,
        touch: &RemoteTouch,
    ) -> Option<DependenceArc> {
        self.on_touch_inner(dst, dst_rid, src, touch, false)
    }

    fn on_touch_inner(
        &mut self,
        dst: ThreadId,
        dst_rid: Rid,
        src: ThreadId,
        touch: &RemoteTouch,
        in_order: bool,
    ) -> Option<DependenceArc> {
        let rid = match self.policy {
            CapturePolicy::PerBlock => touch.block_rid,
            CapturePolicy::PerCore => touch.core_rid,
        };
        self.conflict_inner(dst, dst_rid, src, rid, touch.kind, in_order)
    }

    /// Out-of-order variant of [`OrderCapture::on_conflict`] (see
    /// [`OrderCapture::on_touch_unordered`]).
    pub fn on_conflict_unordered(
        &mut self,
        dst: ThreadId,
        dst_rid: Rid,
        src: ThreadId,
        src_rid: Rid,
        kind: ArcKind,
    ) -> Option<DependenceArc> {
        self.conflict_inner(dst, dst_rid, src, src_rid, kind, false)
    }

    /// Same as [`OrderCapture::on_touch`] for conflicts synthesized outside
    /// the coherence model (e.g. barrier release edges).
    pub fn on_conflict(
        &mut self,
        dst: ThreadId,
        dst_rid: Rid,
        src: ThreadId,
        src_rid: Rid,
        kind: ArcKind,
    ) -> Option<DependenceArc> {
        self.conflict_inner(dst, dst_rid, src, src_rid, kind, true)
    }

    fn conflict_inner(
        &mut self,
        dst: ThreadId,
        dst_rid: Rid,
        src: ThreadId,
        src_rid: Rid,
        kind: ArcKind,
        in_order: bool,
    ) -> Option<DependenceArc> {
        assert_ne!(dst, src, "self-arcs are program order, not dependences");
        self.stats.observed += 1;
        if src_rid == Rid::ZERO {
            // The remote thread had not retired anything relevant.
            self.stats.reduced += 1;
            return None;
        }
        if in_order
            && self.reduction != Reduction::None
            && self.threads[dst.index()].vc[src.index()] >= src_rid.0
        {
            self.stats.reduced += 1;
            return None;
        }
        // Record: update destination knowledge.
        let merged: Option<Vec<u64>> = if self.reduction == Reduction::Transitive {
            self.threads[src.index()].vc_at(src_rid).cloned()
        } else {
            None
        };
        let dst_state = &mut self.threads[dst.index()];
        dst_state.vc[src.index()] = dst_state.vc[src.index()].max(src_rid.0);
        if let Some(src_vc) = merged {
            for (i, v) in src_vc.iter().enumerate() {
                if i != dst.index() {
                    dst_state.vc[i] = dst_state.vc[i].max(*v);
                }
            }
        }
        if self.reduction == Reduction::Transitive && in_order {
            dst_state.snapshot(dst_rid);
        }
        self.stats.recorded += 1;
        Some(DependenceArc::new(src, src_rid, kind))
    }

    /// Destination-side knowledge (test/diagnostic aid): the highest rid of
    /// `src` known ordered before `dst`'s current point.
    pub fn known(&self, dst: ThreadId, src: ThreadId) -> Rid {
        Rid(self.threads[dst.index()].vc[src.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::BlockId;

    fn touch(core: usize, block_rid: u64, core_rid: u64, kind: ArcKind) -> RemoteTouch {
        RemoteTouch {
            remote_core: core,
            block: BlockId(0),
            kind,
            block_rid: Rid(block_rid),
            block_write_rid: Rid::ZERO,
            core_rid: Rid(core_rid),
        }
    }

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);
    const T2: ThreadId = ThreadId(2);

    #[test]
    fn per_block_vs_per_core_timestamp() {
        let t = touch(0, 5, 12, ArcKind::Raw);
        let mut agg = OrderCapture::new(2, CapturePolicy::PerBlock, Reduction::None);
        let arc = agg.on_touch(T1, Rid(1), T0, &t).unwrap();
        assert_eq!(arc.src_rid, Rid(5));
        let mut cons = OrderCapture::new(2, CapturePolicy::PerCore, Reduction::None);
        let arc = cons.on_touch(T1, Rid(1), T0, &t).unwrap();
        assert_eq!(
            arc.src_rid,
            Rid(12),
            "per-core counter is the conservative one"
        );
    }

    #[test]
    fn no_reduction_records_everything() {
        let mut c = OrderCapture::new(2, CapturePolicy::PerBlock, Reduction::None);
        for i in 0..5 {
            assert!(c
                .on_touch(T1, Rid(10 + i), T0, &touch(0, 5, 5, ArcKind::Raw))
                .is_some());
        }
        assert_eq!(c.stats().recorded, 5);
        assert_eq!(c.stats().reduced, 0);
    }

    #[test]
    fn direct_reduction_drops_dominated_arcs() {
        let mut c = OrderCapture::new(2, CapturePolicy::PerBlock, Reduction::Direct);
        assert!(c
            .on_touch(T1, Rid(10), T0, &touch(0, 7, 7, ArcKind::Raw))
            .is_some());
        // Arc to an older record of the same thread: implied.
        assert!(c
            .on_touch(T1, Rid(11), T0, &touch(0, 5, 7, ArcKind::War))
            .is_none());
        // Arc to a newer record: must be recorded.
        assert!(c
            .on_touch(T1, Rid(12), T0, &touch(0, 9, 9, ArcKind::Raw))
            .is_some());
        assert_eq!(c.stats().reduced, 1);
    }

    #[test]
    fn transitive_reduction_uses_source_knowledge() {
        let mut c = OrderCapture::new(3, CapturePolicy::PerBlock, Reduction::Transitive);
        // T1's record 4 depends on T0's record 9.
        assert!(c
            .on_conflict(T1, Rid(4), T0, Rid(9), ArcKind::Raw)
            .is_some());
        // T2's record 2 depends on T1's record 4 (after the above).
        assert!(c
            .on_conflict(T2, Rid(2), T1, Rid(4), ArcKind::Raw)
            .is_some());
        // T2 now transitively knows T0 up to rid 9: an arc to T0#8 is implied.
        assert_eq!(c.known(T2, T0), Rid(9));
        assert!(c
            .on_conflict(T2, Rid(3), T0, Rid(8), ArcKind::War)
            .is_none());
        assert_eq!(c.stats().reduced, 1);
    }

    #[test]
    fn transitive_does_not_use_future_source_knowledge() {
        let mut c = OrderCapture::new(3, CapturePolicy::PerBlock, Reduction::Transitive);
        // T1 learns of T0#9 at its record 10.
        c.on_conflict(T1, Rid(10), T0, Rid(9), ArcKind::Raw);
        // T2 takes an arc from T1#4 — *before* T1 knew about T0.
        c.on_conflict(T2, Rid(2), T1, Rid(4), ArcKind::Raw);
        // T2 must NOT have inherited T0 knowledge from T1's later state.
        assert_eq!(c.known(T2, T0), Rid::ZERO);
        assert!(c
            .on_conflict(T2, Rid(3), T0, Rid(8), ArcKind::War)
            .is_some());
    }

    #[test]
    fn direct_reduction_is_per_source_thread() {
        let mut c = OrderCapture::new(3, CapturePolicy::PerBlock, Reduction::Direct);
        assert!(c
            .on_conflict(T2, Rid(1), T0, Rid(5), ArcKind::Raw)
            .is_some());
        assert!(c
            .on_conflict(T2, Rid(2), T1, Rid(5), ArcKind::Raw)
            .is_some());
        assert!(c
            .on_conflict(T2, Rid(3), T0, Rid(5), ArcKind::Raw)
            .is_none());
    }

    #[test]
    fn zero_rid_touches_produce_no_arc() {
        let mut c = OrderCapture::new(2, CapturePolicy::PerBlock, Reduction::None);
        assert!(c
            .on_touch(T1, Rid(1), T0, &touch(0, 0, 0, ArcKind::War))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "self-arcs")]
    fn self_arc_rejected() {
        let mut c = OrderCapture::new(2, CapturePolicy::PerBlock, Reduction::None);
        c.on_conflict(T0, Rid(2), T0, Rid(1), ArcKind::Raw);
    }
}
