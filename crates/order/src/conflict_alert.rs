//! ConflictAlert: broadcast ordering for high-level events (§4.3, §5.4).
//!
//! High-level events (malloc/free, system calls) can conflict with
//! instruction-grain events *without* any coherence traffic linking them —
//! the paper's *logical races* (a `free` builds its block bookkeeping near
//! the range boundary while a racing access touches the middle). The wrapper
//! library therefore broadcasts **ConflictAlert** messages: every executing
//! thread's capture unit inserts a CA record into its stream, and the issuer
//! serializes — it does not proceed past the send until every other capture
//! unit acknowledges.
//!
//! At the lifeguard side a CA record can (per-lifeguard configuration)
//! invalidate/flush each accelerator, act as a barrier across lifeguard
//! threads, and (for the issuer's own lifeguard) drive the metadata update —
//! all decided by [`CaPolicy`].

use paralog_events::{AddrRange, CaPhase, CaRecord, HighLevelKind, Rid, SyscallKind, ThreadId};
use std::collections::HashMap;

/// Actions a lifeguard takes when it meets a CA record (§4.4, §5.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaActions {
    /// Flush the Inheritance Tracking table (deliver pending rows).
    pub flush_it: bool,
    /// Invalidate the Idempotent Filter cache.
    pub flush_if: bool,
    /// Flush Metadata-TLB mappings (for the affected range if present).
    pub flush_mtlb: bool,
    /// Stall until all lifeguard threads reach this CA (and the issuer's
    /// metadata update has been applied) — the conservative barrier the
    /// paper describes for malloc/free in SWAPTIONS.
    pub barrier: bool,
    /// Track the range in the per-thread range table (syscall race
    /// detection): insert on Begin, remove on End.
    pub track_range: bool,
}

/// Per-lifeguard subscription: which high-level events matter, at which
/// phase, and with which actions.
#[derive(Debug, Clone, Default)]
pub struct CaPolicy {
    rules: Vec<(HighLevelKind, CaPhase, CaActions)>,
}

impl CaPolicy {
    /// An empty policy (no CA reactions).
    pub fn new() -> Self {
        CaPolicy::default()
    }

    /// Adds a rule; later rules override earlier ones for the same
    /// `(kind, phase)`.
    #[must_use]
    pub fn on(mut self, kind: HighLevelKind, phase: CaPhase, actions: CaActions) -> Self {
        self.rules.push((kind, phase, actions));
        self
    }

    /// Actions for a CA record (zero-actions default if unsubscribed).
    /// Matching is by event *class* — lock/barrier identity payloads are
    /// ignored, syscall kinds are distinguished.
    pub fn actions(&self, kind: HighLevelKind, phase: CaPhase) -> CaActions {
        let mut out = CaActions::default();
        for (k, p, a) in &self.rules {
            if k.class_eq(&kind) && *p == phase {
                out = *a;
            }
        }
        out
    }

    /// Whether any rule (at either phase) subscribes to `kind`'s class with a
    /// non-trivial action — used by the platform to decide whether an event
    /// must be broadcast at all.
    pub fn subscribes(&self, kind: HighLevelKind) -> bool {
        self.rules
            .iter()
            .any(|(k, _, a)| k.class_eq(&kind) && *a != CaActions::default())
    }

    /// Convenience: the policy TAINTCHECK uses. TaintCheck needs correct
    /// ordering of high-level events, but it gets that ordering from
    /// dependence arcs (pointer publication orders remote accesses after the
    /// allocation) and from the range table for system calls (§5.4) — so its
    /// CA records flush accelerator state without the conservative global
    /// barrier ADDRCHECK needs. Racing accesses to in-flight `read()`
    /// buffers are resolved conservatively via [`RangeTable`] hits.
    ///
    /// [`RangeTable`]: crate::RangeTable
    pub fn taintcheck() -> Self {
        let flush = CaActions {
            flush_it: true,
            flush_if: false,
            flush_mtlb: true,
            barrier: false,
            track_range: false,
        };
        CaPolicy::new()
            .on(HighLevelKind::Malloc, CaPhase::End, flush)
            .on(HighLevelKind::Free, CaPhase::Begin, flush)
            .on(
                HighLevelKind::Syscall(SyscallKind::ReadInput),
                CaPhase::Begin,
                CaActions {
                    track_range: true,
                    ..Default::default()
                },
            )
            .on(
                HighLevelKind::Syscall(SyscallKind::ReadInput),
                CaPhase::End,
                CaActions {
                    flush_it: true,
                    track_range: true,
                    ..Default::default()
                },
            )
    }

    /// Convenience: ADDRCHECK's policy — only allocation-library ordering
    /// matters (§6): barrier + IF/M-TLB invalidation on malloc-end and
    /// free-begin.
    pub fn addrcheck() -> Self {
        let a = CaActions {
            flush_it: false,
            flush_if: true,
            flush_mtlb: true,
            barrier: true,
            track_range: false,
        };
        CaPolicy::new()
            .on(HighLevelKind::Malloc, CaPhase::End, a)
            .on(HighLevelKind::Free, CaPhase::Begin, a)
    }
}

/// Application-side broadcaster: allocates the global CA sequence and builds
/// the per-thread records.
#[derive(Debug, Default)]
pub struct CaBroadcaster {
    next_seq: u64,
    broadcasts: u64,
}

impl CaBroadcaster {
    /// Creates a broadcaster.
    pub fn new() -> Self {
        CaBroadcaster::default()
    }

    /// Broadcasts ever issued.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts
    }

    /// Issues one broadcast: returns the CA record to insert into **every**
    /// executing thread's stream (each thread stamps its own rid on the
    /// containing [`EventRecord`](paralog_events::EventRecord)).
    pub fn broadcast(
        &mut self,
        what: HighLevelKind,
        phase: CaPhase,
        range: Option<AddrRange>,
        issuer: ThreadId,
        issuer_rid: Rid,
    ) -> CaRecord {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.broadcasts += 1;
        CaRecord {
            what,
            phase,
            range,
            issuer,
            issuer_rid,
            seq,
        }
    }
}

/// Lifeguard-side barrier coordination for CA records with
/// [`CaActions::barrier`].
///
/// A lifeguard arriving at CA `seq` registers; it may pass once every
/// *participating* lifeguard (the threads executing at broadcast time, whose
/// capture units acknowledged the message) has arrived **and** the issuer's
/// lifeguard has applied the metadata update for the event.
#[derive(Debug)]
pub struct CaBarrier {
    default_participants: usize,
    expected: HashMap<u64, usize>,
    arrived: HashMap<u64, Vec<ThreadId>>,
    update_applied: HashMap<u64, bool>,
    completed: u64,
}

impl CaBarrier {
    /// Creates barrier state; `participants` is the default expected arrival
    /// count (override per broadcast with [`CaBarrier::expect`]).
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "CA barrier needs participants");
        CaBarrier {
            default_participants: participants,
            expected: HashMap::new(),
            arrived: HashMap::new(),
            update_applied: HashMap::new(),
            completed: 0,
        }
    }

    /// Sets the participant count for `seq` (the threads executing when the
    /// broadcast was issued — finished threads never see the record).
    pub fn expect(&mut self, seq: u64, participants: usize) {
        self.expected.insert(seq, participants);
    }

    /// Registers `thread`'s arrival at CA `seq` (idempotent).
    pub fn arrive(&mut self, seq: u64, thread: ThreadId) {
        let list = self.arrived.entry(seq).or_default();
        if !list.contains(&thread) {
            list.push(thread);
        }
    }

    /// Whether all participating lifeguards have arrived at `seq`.
    pub fn all_arrived(&self, seq: u64) -> bool {
        let expected = self
            .expected
            .get(&seq)
            .copied()
            .unwrap_or(self.default_participants);
        self.arrived
            .get(&seq)
            .map(|l| l.len() >= expected)
            .unwrap_or(false)
    }

    /// Marks the issuer's metadata update for `seq` as applied.
    pub fn mark_applied(&mut self, seq: u64) {
        self.update_applied.insert(seq, true);
    }

    /// Whether the issuer applied the update for `seq`.
    pub fn is_applied(&self, seq: u64) -> bool {
        self.update_applied.get(&seq).copied().unwrap_or(false)
    }

    /// Whether `thread` may pass its CA record for `seq`: everyone arrived
    /// and (for non-issuers) the update is applied. The issuer may pass as
    /// soon as everyone arrived — it is the one applying the update.
    pub fn may_pass(&self, seq: u64, thread: ThreadId, issuer: ThreadId) -> bool {
        if !self.all_arrived(seq) {
            return false;
        }
        thread == issuer || self.is_applied(seq)
    }

    /// Garbage-collects a completed barrier.
    pub fn retire(&mut self, seq: u64) {
        if self.arrived.remove(&seq).is_some() {
            self.completed += 1;
        }
        self.update_applied.remove(&seq);
    }

    /// Barriers fully completed and retired.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Outstanding (non-retired) barriers — diagnostic.
    pub fn outstanding(&self) -> usize {
        self.arrived.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_lookup_defaults_to_no_action() {
        let p = CaPolicy::addrcheck();
        let a = p.actions(HighLevelKind::Malloc, CaPhase::End);
        assert!(a.barrier && a.flush_if && a.flush_mtlb && !a.flush_it);
        let none = p.actions(HighLevelKind::Malloc, CaPhase::Begin);
        assert_eq!(none, CaActions::default());
        let none = p.actions(
            HighLevelKind::Barrier(paralog_events::BarrierId(0)),
            CaPhase::Begin,
        );
        assert_eq!(none, CaActions::default());
    }

    #[test]
    fn later_rules_override() {
        let p = CaPolicy::new()
            .on(
                HighLevelKind::Free,
                CaPhase::Begin,
                CaActions {
                    flush_it: true,
                    ..Default::default()
                },
            )
            .on(
                HighLevelKind::Free,
                CaPhase::Begin,
                CaActions {
                    flush_if: true,
                    ..Default::default()
                },
            );
        let a = p.actions(HighLevelKind::Free, CaPhase::Begin);
        assert!(a.flush_if && !a.flush_it);
    }

    #[test]
    fn taintcheck_tracks_read_syscall_ranges() {
        let p = CaPolicy::taintcheck();
        assert!(
            p.actions(
                HighLevelKind::Syscall(SyscallKind::ReadInput),
                CaPhase::Begin
            )
            .track_range
        );
        // TaintCheck orders syscalls via the range table, not a barrier;
        // the End record still flushes IT.
        let end = p.actions(HighLevelKind::Syscall(SyscallKind::ReadInput), CaPhase::End);
        assert!(end.flush_it && end.track_range && !end.barrier);
        // The allocation-library events flush accelerator state too.
        assert!(p.actions(HighLevelKind::Malloc, CaPhase::End).flush_it);
    }

    #[test]
    fn broadcaster_assigns_increasing_seq() {
        let mut b = CaBroadcaster::new();
        let c1 = b.broadcast(
            HighLevelKind::Malloc,
            CaPhase::End,
            None,
            ThreadId(0),
            Rid(5),
        );
        let c2 = b.broadcast(
            HighLevelKind::Free,
            CaPhase::Begin,
            None,
            ThreadId(1),
            Rid(9),
        );
        assert!(c2.seq > c1.seq);
        assert_eq!(b.broadcasts(), 2);
        assert_eq!(c1.issuer, ThreadId(0));
        assert_eq!(c1.issuer_rid, Rid(5));
    }

    #[test]
    fn barrier_requires_everyone_and_issuer_update() {
        let mut b = CaBarrier::new(3);
        let issuer = ThreadId(0);
        b.arrive(7, ThreadId(0));
        b.arrive(7, ThreadId(1));
        assert!(!b.may_pass(7, ThreadId(1), issuer));
        b.arrive(7, ThreadId(2));
        // Issuer may pass (it applies the update); remotes must wait.
        assert!(b.may_pass(7, ThreadId(0), issuer));
        assert!(!b.may_pass(7, ThreadId(1), issuer));
        b.mark_applied(7);
        assert!(b.may_pass(7, ThreadId(1), issuer));
        assert!(b.may_pass(7, ThreadId(2), issuer));
        b.retire(7);
        assert_eq!(b.completed(), 1);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn arrival_is_idempotent() {
        let mut b = CaBarrier::new(2);
        b.arrive(1, ThreadId(0));
        b.arrive(1, ThreadId(0));
        assert!(!b.all_arrived(1));
        b.arrive(1, ThreadId(1));
        assert!(b.all_arrived(1));
    }
}
