//! Order enforcing at the lifeguard side (§5.2, Figure 4b).
//!
//! Before a record is delivered, each of its dependence arcs `(t, i)` is
//! checked against the progress table. If `progress[t] >= i` for every arc
//! the record is ready; otherwise the consumer spins — a generic
//! "dependence stall" event is delivered to the lifeguard in the meantime,
//! which is where the *Waiting for Dependence* time of Figure 7 comes from.

use crate::progress::ProgressTable;
use paralog_events::{DependenceArc, EventRecord, Rid, ThreadId};

/// Result of gating one record against the progress table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Every arc is satisfied; the record may be delivered.
    Ready,
    /// The first unsatisfied arc: the consumer must stall until `src`'s
    /// progress reaches `needed`.
    Blocked {
        /// Thread whose progress is awaited.
        src: ThreadId,
        /// Progress value that unblocks the record.
        needed: Rid,
    },
}

/// Per-lifeguard order-enforcing frontend with stall statistics.
#[derive(Debug, Clone, Default)]
pub struct OrderEnforcer {
    checks: u64,
    immediate: u64,
    stalls: u64,
    stall_cycles: u64,
}

impl OrderEnforcer {
    /// Creates an enforcer with zeroed statistics.
    pub fn new() -> Self {
        OrderEnforcer::default()
    }

    /// Gates `record` against `progress`. The first failing arc is reported;
    /// re-check after the producer advances.
    pub fn gate(&mut self, record: &EventRecord, progress: &ProgressTable) -> Gate {
        self.checks += 1;
        match first_unmet(&record.arcs, progress) {
            None => {
                self.immediate += 1;
                Gate::Ready
            }
            Some(arc) => Gate::Blocked {
                src: arc.src,
                needed: arc.src_rid,
            },
        }
    }

    /// Re-checks a previously blocked record without counting a new check.
    pub fn regate(&self, record: &EventRecord, progress: &ProgressTable) -> Gate {
        match first_unmet(&record.arcs, progress) {
            None => Gate::Ready,
            Some(arc) => Gate::Blocked {
                src: arc.src,
                needed: arc.src_rid,
            },
        }
    }

    /// Accounts `cycles` of dependence-stall time (one stall episode).
    pub fn record_stall(&mut self, cycles: u64) {
        self.stalls += 1;
        self.stall_cycles += cycles;
    }

    /// Total gate checks.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Records whose arcs were satisfied on first check — the common case
    /// the paper notes ("most of the time ... the dependence has already
    /// been satisfied").
    pub fn immediate(&self) -> u64 {
        self.immediate
    }

    /// Stall episodes.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total cycles spent in dependence stalls.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Fraction of records delivered without stalling.
    pub fn immediate_rate(&self) -> f64 {
        if self.checks == 0 {
            1.0
        } else {
            self.immediate as f64 / self.checks as f64
        }
    }
}

fn first_unmet<'a>(
    arcs: &'a [DependenceArc],
    progress: &ProgressTable,
) -> Option<&'a DependenceArc> {
    arcs.iter().find(|a| !progress.satisfies(a.src, a.src_rid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{ArcKind, Instr};

    fn record_with_arcs(arcs: Vec<DependenceArc>) -> EventRecord {
        let mut r = EventRecord::instr(Rid(1), Instr::Nop);
        r.arcs = arcs.into();
        r
    }

    #[test]
    fn no_arcs_is_ready() {
        let mut e = OrderEnforcer::new();
        let p = ProgressTable::new(2);
        assert_eq!(e.gate(&record_with_arcs(vec![]), &p), Gate::Ready);
        assert_eq!(e.immediate(), 1);
        assert_eq!(e.immediate_rate(), 1.0);
    }

    #[test]
    fn blocked_until_progress() {
        let mut e = OrderEnforcer::new();
        let mut p = ProgressTable::new(2);
        let rec = record_with_arcs(vec![DependenceArc::new(ThreadId(0), Rid(5), ArcKind::Raw)]);
        assert_eq!(
            e.gate(&rec, &p),
            Gate::Blocked {
                src: ThreadId(0),
                needed: Rid(5)
            }
        );
        p.advertise(ThreadId(0), Rid(4));
        assert!(matches!(e.regate(&rec, &p), Gate::Blocked { .. }));
        p.advertise(ThreadId(0), Rid(5));
        assert_eq!(e.regate(&rec, &p), Gate::Ready);
    }

    #[test]
    fn multiple_arcs_all_must_hold() {
        let mut e = OrderEnforcer::new();
        let mut p = ProgressTable::new(3);
        let rec = record_with_arcs(vec![
            DependenceArc::new(ThreadId(0), Rid(2), ArcKind::War),
            DependenceArc::new(ThreadId(2), Rid(7), ArcKind::Waw),
        ]);
        p.advertise(ThreadId(0), Rid(2));
        assert_eq!(
            e.gate(&rec, &p),
            Gate::Blocked {
                src: ThreadId(2),
                needed: Rid(7)
            }
        );
        p.advertise(ThreadId(2), Rid(9));
        assert_eq!(e.regate(&rec, &p), Gate::Ready);
    }

    #[test]
    fn stall_accounting() {
        let mut e = OrderEnforcer::new();
        e.record_stall(100);
        e.record_stall(50);
        assert_eq!(e.stalls(), 2);
        assert_eq!(e.stall_cycles(), 150);
    }

    #[test]
    fn immediate_rate_mixes() {
        let mut e = OrderEnforcer::new();
        let p = ProgressTable::new(2);
        e.gate(&record_with_arcs(vec![]), &p);
        e.gate(
            &record_with_arcs(vec![DependenceArc::new(ThreadId(1), Rid(1), ArcKind::Raw)]),
            &p,
        );
        assert!((e.immediate_rate() - 0.5).abs() < 1e-9);
    }
}
