//! Order enforcing at the lifeguard side (§5.2, Figure 4b).
//!
//! Before a record is delivered, each of its dependence arcs `(t, i)` is
//! checked against the progress table. If `progress[t] >= i` for every arc
//! the record is ready; otherwise the consumer spins — a generic
//! "dependence stall" event is delivered to the lifeguard in the meantime,
//! which is where the *Waiting for Dependence* time of Figure 7 comes from.

use crate::progress::ProgressTable;
use paralog_events::{DependenceArc, EventRecord, Rid, ThreadId};

/// Result of gating one record against the progress table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gate {
    /// Every arc is satisfied; the record may be delivered.
    Ready,
    /// The first unsatisfied arc: the consumer must stall until `src`'s
    /// progress reaches `needed`.
    Blocked {
        /// Thread whose progress is awaited.
        src: ThreadId,
        /// Progress value that unblocks the record.
        needed: Rid,
    },
}

/// Per-lifeguard order-enforcing frontend with stall statistics.
///
/// Stall polls are O(1): the index of the first unmet arc is cached when a
/// record blocks, and — because progress counters are monotonic — arcs
/// before it can never become unmet again, so a re-check resumes at the
/// cached index instead of re-scanning the full arc list.
#[derive(Debug, Clone, Default)]
pub struct OrderEnforcer {
    checks: u64,
    immediate: u64,
    stalls: u64,
    stall_cycles: u64,
    arc_probes: u64,
    /// `(rid, arc index)` of the currently blocked record's first unmet arc.
    /// Valid only while that record stays at the head of the stream (it is
    /// cleared the moment a gate reports `Ready`).
    cursor: Option<(Rid, usize)>,
}

impl OrderEnforcer {
    /// Creates an enforcer with zeroed statistics.
    pub fn new() -> Self {
        OrderEnforcer::default()
    }

    /// Scans `arcs` from `start`, counting probes; returns the first unmet
    /// arc's index.
    fn scan(
        &mut self,
        arcs: &[DependenceArc],
        progress: &ProgressTable,
        start: usize,
    ) -> Option<(usize, DependenceArc)> {
        for (i, a) in arcs.iter().enumerate().skip(start) {
            self.arc_probes += 1;
            if !progress.satisfies(a.src, a.src_rid) {
                return Some((i, *a));
            }
        }
        None
    }

    fn gate_from(&mut self, record: &EventRecord, progress: &ProgressTable, start: usize) -> Gate {
        match self.scan(&record.arcs, progress, start) {
            None => {
                self.cursor = None;
                Gate::Ready
            }
            Some((i, arc)) => {
                self.cursor = Some((record.rid, i));
                Gate::Blocked {
                    src: arc.src,
                    needed: arc.src_rid,
                }
            }
        }
    }

    /// Gates `record` against `progress`. The first failing arc is reported;
    /// re-check after the producer advances.
    pub fn gate(&mut self, record: &EventRecord, progress: &ProgressTable) -> Gate {
        self.checks += 1;
        let gate = self.gate_from(record, progress, 0);
        if gate == Gate::Ready {
            self.immediate += 1;
        }
        gate
    }

    /// Re-checks a previously blocked record without counting a new check,
    /// resuming at the cached first-unmet arc when the record matches.
    pub fn regate(&mut self, record: &EventRecord, progress: &ProgressTable) -> Gate {
        let start = match self.cursor {
            Some((rid, i)) if rid == record.rid && i < record.arcs.len() => i,
            _ => 0,
        };
        self.gate_from(record, progress, start)
    }

    /// Accounts `cycles` of dependence-stall time (one stall episode).
    pub fn record_stall(&mut self, cycles: u64) {
        self.stalls += 1;
        self.stall_cycles += cycles;
    }

    /// Total gate checks.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Records whose arcs were satisfied on first check — the common case
    /// the paper notes ("most of the time ... the dependence has already
    /// been satisfied").
    pub fn immediate(&self) -> u64 {
        self.immediate
    }

    /// Stall episodes.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Total individual arc checks performed across all gates and re-gates
    /// (the quantity the O(1)-stall-poll cursor keeps small).
    pub fn arc_probes(&self) -> u64 {
        self.arc_probes
    }

    /// Total cycles spent in dependence stalls.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Fraction of records delivered without stalling.
    pub fn immediate_rate(&self) -> f64 {
        if self.checks == 0 {
            1.0
        } else {
            self.immediate as f64 / self.checks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{ArcKind, Instr};

    fn record_with_arcs(arcs: Vec<DependenceArc>) -> EventRecord {
        let mut r = EventRecord::instr(Rid(1), Instr::Nop);
        r.arcs = arcs.into();
        r
    }

    #[test]
    fn no_arcs_is_ready() {
        let mut e = OrderEnforcer::new();
        let p = ProgressTable::new(2);
        assert_eq!(e.gate(&record_with_arcs(vec![]), &p), Gate::Ready);
        assert_eq!(e.immediate(), 1);
        assert_eq!(e.immediate_rate(), 1.0);
    }

    #[test]
    fn blocked_until_progress() {
        let mut e = OrderEnforcer::new();
        let mut p = ProgressTable::new(2);
        let rec = record_with_arcs(vec![DependenceArc::new(ThreadId(0), Rid(5), ArcKind::Raw)]);
        assert_eq!(
            e.gate(&rec, &p),
            Gate::Blocked {
                src: ThreadId(0),
                needed: Rid(5)
            }
        );
        p.advertise(ThreadId(0), Rid(4));
        assert!(matches!(e.regate(&rec, &p), Gate::Blocked { .. }));
        p.advertise(ThreadId(0), Rid(5));
        assert_eq!(e.regate(&rec, &p), Gate::Ready);
    }

    #[test]
    fn multiple_arcs_all_must_hold() {
        let mut e = OrderEnforcer::new();
        let mut p = ProgressTable::new(3);
        let rec = record_with_arcs(vec![
            DependenceArc::new(ThreadId(0), Rid(2), ArcKind::War),
            DependenceArc::new(ThreadId(2), Rid(7), ArcKind::Waw),
        ]);
        p.advertise(ThreadId(0), Rid(2));
        assert_eq!(
            e.gate(&rec, &p),
            Gate::Blocked {
                src: ThreadId(2),
                needed: Rid(7)
            }
        );
        p.advertise(ThreadId(2), Rid(9));
        assert_eq!(e.regate(&rec, &p), Gate::Ready);
    }

    #[test]
    fn stall_polls_probe_one_arc() {
        let mut e = OrderEnforcer::new();
        let mut p = ProgressTable::new(3);
        // First two arcs already satisfied, third is not.
        p.advertise(ThreadId(0), Rid(2));
        p.advertise(ThreadId(1), Rid(3));
        let rec = record_with_arcs(vec![
            DependenceArc::new(ThreadId(0), Rid(2), ArcKind::Raw),
            DependenceArc::new(ThreadId(1), Rid(3), ArcKind::War),
            DependenceArc::new(ThreadId(2), Rid(9), ArcKind::Waw),
        ]);
        assert!(matches!(e.gate(&rec, &p), Gate::Blocked { .. }));
        assert_eq!(e.arc_probes(), 3, "initial gate scans up to the block");
        for _ in 0..5 {
            assert!(matches!(e.regate(&rec, &p), Gate::Blocked { .. }));
        }
        assert_eq!(
            e.arc_probes(),
            8,
            "each stall poll re-probes only the cached arc"
        );
        p.advertise(ThreadId(2), Rid(9));
        assert_eq!(e.regate(&rec, &p), Gate::Ready);
        assert_eq!(e.arc_probes(), 9, "release resumes at the cached index");
        // A fresh record after delivery starts a full scan again.
        let next = record_with_arcs(vec![DependenceArc::new(ThreadId(0), Rid(1), ArcKind::Raw)]);
        assert_eq!(e.regate(&next, &p), Gate::Ready);
        assert_eq!(e.arc_probes(), 10);
    }

    #[test]
    fn stall_accounting() {
        let mut e = OrderEnforcer::new();
        e.record_stall(100);
        e.record_stall(50);
        assert_eq!(e.stalls(), 2);
        assert_eq!(e.stall_cycles(), 150);
    }

    #[test]
    fn immediate_rate_mixes() {
        let mut e = OrderEnforcer::new();
        let p = ProgressTable::new(2);
        e.gate(&record_with_arcs(vec![]), &p);
        e.gate(
            &record_with_arcs(vec![DependenceArc::new(ThreadId(1), Rid(1), ArcKind::Raw)]),
            &p,
        );
        assert!((e.immediate_rate() - 0.5).abs() < 1e-9);
    }
}
