//! Order capturing and enforcement for ParaLog (§3, §5).
//!
//! Online parallel monitoring is only correct if each lifeguard processes its
//! thread's events in an order consistent with the application's inter-thread
//! dependences. This crate provides the machinery:
//!
//! * [`OrderCapture`] — converts coherence conflicts into
//!   [`DependenceArc`](paralog_events::DependenceArc)s under the paper's two
//!   capture policies (per-block FDR-style vs. per-core conservative) and
//!   three reduction levels (none / direct / RTR-style transitive);
//! * [`ProgressTable`] / [`SharedProgressTable`] — the globally advertised
//!   per-lifeguard progress counters (§5.2);
//! * [`OrderEnforcer`] — gates record delivery on arc satisfaction, with
//!   dependence-stall accounting (the *Waiting for Dependence* bucket of
//!   Figure 7);
//! * [`CaBroadcaster`] / [`CaPolicy`] / [`CaBarrier`] — the ConflictAlert
//!   mechanism for high-level events and logical races (§4.3, §5.4);
//! * [`RangeTable`] — syscall race detection from CA memory-range
//!   parameters (§5.4).
//!
//! # Example
//!
//! ```rust
//! use paralog_order::{CapturePolicy, OrderCapture, Reduction};
//! use paralog_events::{ArcKind, Rid, ThreadId};
//!
//! let mut capture = OrderCapture::new(2, CapturePolicy::PerBlock, Reduction::Transitive);
//! let arc = capture
//!     .on_conflict(ThreadId(1), Rid(4), ThreadId(0), Rid(9), ArcKind::Raw)
//!     .expect("first conflict is recorded");
//! assert_eq!(arc.src_rid, Rid(9));
//! // A second conflict on an older record of thread 0 is implied — dropped.
//! assert!(capture
//!     .on_conflict(ThreadId(1), Rid(5), ThreadId(0), Rid(7), ArcKind::War)
//!     .is_none());
//! ```

#![warn(missing_debug_implementations)]

pub mod capture;
pub mod conflict_alert;
pub mod enforce;
pub mod progress;
pub mod range_table;

pub use capture::{CapturePolicy, CaptureStats, OrderCapture, Reduction};
pub use conflict_alert::{CaActions, CaBarrier, CaBroadcaster, CaPolicy};
pub use enforce::{Gate, OrderEnforcer};
pub use progress::{ProgressTable, SharedProgressTable};
pub use range_table::{RangeEntry, RangeTable};
