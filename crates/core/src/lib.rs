//! The ParaLog platform: online parallel monitoring of multithreaded
//! applications (Vlachos et al., ASPLOS 2010).
//!
//! This crate assembles the whole system of Figure 2:
//!
//! * [`MonitorSession`] composes one monitored run from pluggable seams:
//!   an event source (simulated workload, replay of captured logs, or a
//!   programmatic push feed), a backend (the deterministic simulator or the
//!   real-thread executor), and any lifeguard — bundled shorthand, registry
//!   name, or an out-of-tree [`LifeguardFactory`](paralog_lifeguards::LifeguardFactory);
//! * [`Platform::run`] — a thin shim over a workload session — simulates a
//!   workload under one of three [`MonitoringMode`]s: no monitoring, the
//!   timesliced state of the art, or ParaLog's parallel monitoring — on the
//!   paper's CMP model;
//! * [`MonitorConfig`] exposes every design knob evaluated in the paper
//!   (accelerators on/off, per-block vs. per-core capture, arc reduction,
//!   ConflictAlert barrier vs. flush-only, SC vs. TSO, damage containment);
//! * [`RunMetrics`] reports the Figure 6/7/8 quantities (execution time,
//!   useful / waiting-for-dependence / waiting-for-application breakdowns,
//!   accelerator and capture statistics);
//! * [`experiment`] regenerates every table and figure of the evaluation.
//!
//! # Example
//!
//! ```rust
//! use paralog_core::{MonitorConfig, MonitoringMode, Platform};
//! use paralog_lifeguards::LifeguardKind;
//! use paralog_workloads::{Benchmark, WorkloadSpec};
//!
//! let workload = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.02).build();
//! let base = Platform::run(
//!     &workload,
//!     &MonitorConfig::new(MonitoringMode::None, LifeguardKind::TaintCheck),
//! );
//! let monitored = Platform::run(
//!     &workload,
//!     &MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck),
//! );
//! let slowdown = monitored.metrics.slowdown_vs(base.metrics.execution_cycles());
//! assert!(slowdown >= 1.0);
//! ```

#![warn(missing_debug_implementations)]

pub mod config;
pub mod exec_threaded;
pub mod experiment;
pub mod metrics;
pub mod platform;
pub mod reference;
pub mod session;

pub use config::{CaMode, MonitorConfig, MonitoringMode};
pub use exec_threaded::{run_threaded_taintcheck, AtomicShadow, ThreadedOutcome};
pub use metrics::{AppBuckets, LgBuckets, PhaseBreakdown, RunMetrics, TRANSPORT_BYTES_PER_CYCLE};
pub use paralog_lifeguards::{SessionEvent, SessionEventObserver};
pub use platform::{Platform, RunOutcome};
pub use reference::Reference;
pub use session::coop::{CoopLane, CoopSession, LaneStep};
pub use session::{
    Backend, BackendMode, BufferedStream, DeterministicBackend, EventSource, FaultyReader,
    LivePushSource, MonitorSession, MonitorSessionBuilder, PushFeed, PushRefused, PushSource,
    RecordStream, ReplaySource, SessionError, SessionPlan, SourceInput, SourceStats, StreamStatus,
    StreamingReplaySource, ThreadedBackend, WorkloadSource,
};
