//! Deterministic fault injection for streaming transports.
//!
//! Robustness claim under test: whatever a transport does to the wire
//! bytes — fragments them, stalls, flips a bit, cuts the connection — the
//! monitor reports a [`SessionError`](crate::session::SessionError) and
//! returns; it never hangs a worker, never poisons a lock, never leaks a
//! parked consumer. [`FaultyReader`] wraps any [`Read`] transport and
//! injects a *seeded, reproducible* schedule of the four fault classes a
//! real socket or pipe exhibits:
//!
//! * **short reads** — every `read` returns a random 1–7 byte fragment,
//!   exercising the decoder's partial-record rewind path;
//! * **transient stalls** — periodic [`ErrorKind::WouldBlock`] errors, each
//!   firing exactly once before the same offset succeeds (a recoverable
//!   `EAGAIN`, not an outage);
//! * **byte corruption** — chosen absolute offsets are XOR-flipped,
//!   exercising checksum detection;
//! * **truncation** — the stream ends at a chosen offset as if the peer
//!   vanished, exercising mid-record and record-boundary cut handling.
//!
//! The schedule depends only on the seed and the construction calls, so a
//! failing fuzz case replays exactly from its seed.
//!
//! ```rust
//! use paralog_core::session::FaultyReader;
//! use std::io::Read;
//!
//! let wire = vec![0xAAu8; 64];
//! let mut reader = FaultyReader::new(&wire[..], 7)
//!     .short_reads()
//!     .corrupt_byte(10)
//!     .truncate_at(32);
//! let mut got = Vec::new();
//! reader.read_to_end(&mut got).unwrap();
//! assert_eq!(got.len(), 32);
//! assert_eq!(got[10], 0xAA ^ 0xFF);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Error, ErrorKind, Read, Result};

/// Largest fragment a short-read schedule delivers per `read` call.
const MAX_FRAGMENT: u64 = 7;

/// A [`Read`] adapter injecting a deterministic, seeded fault schedule.
///
/// See the [module docs](self) for the fault classes. All faults compose:
/// a short-read stall-injecting corrupting truncating reader is a
/// legitimate (if hostile) transport.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    rng: StdRng,
    /// Absolute offset of the next byte to deliver.
    pos: u64,
    short_reads: bool,
    /// Approximate bytes between transient `WouldBlock` stalls.
    stall_every: Option<u64>,
    /// Offset at or past which the next stall fires (each fires once).
    next_stall: u64,
    /// Absolute offsets whose byte is XOR-flipped on delivery.
    corrupt: Vec<u64>,
    /// Deliver exactly this many bytes, then report end-of-stream.
    truncate_at: Option<u64>,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with an empty fault schedule driven by `seed`.
    pub fn new(inner: R, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Burn one draw so distinct seeds diverge immediately even for
        // schedules that never consult the generator again.
        let _ = rng.next_u64();
        FaultyReader {
            inner,
            rng,
            pos: 0,
            short_reads: false,
            stall_every: None,
            next_stall: 0,
            corrupt: Vec::new(),
            truncate_at: None,
        }
    }

    /// Fragments every `read` into a random 1–7 byte delivery.
    #[must_use]
    pub fn short_reads(mut self) -> Self {
        self.short_reads = true;
        self
    }

    /// Injects a transient [`ErrorKind::WouldBlock`] roughly every
    /// `interval` bytes. Each stall point fires exactly once; the retry at
    /// the same offset succeeds, modeling a recoverable `EAGAIN`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    #[must_use]
    pub fn stall_every(mut self, interval: u64) -> Self {
        assert!(interval > 0, "stall interval must be positive");
        self.stall_every = Some(interval);
        self.next_stall = interval;
        self
    }

    /// XOR-flips the byte at absolute stream `offset` on delivery.
    #[must_use]
    pub fn corrupt_byte(mut self, offset: u64) -> Self {
        self.corrupt.push(offset);
        self
    }

    /// Ends the stream after exactly `offset` bytes, as if the peer
    /// disconnected mid-transfer.
    #[must_use]
    pub fn truncate_at(mut self, offset: u64) -> Self {
        self.truncate_at = Some(offset);
        self
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(cut) = self.truncate_at {
            if self.pos >= cut {
                return Ok(0);
            }
        }
        if let Some(interval) = self.stall_every {
            if self.pos >= self.next_stall {
                // Arm the next stall point *before* erroring so the retry
                // at this offset proceeds: the stall is transient.
                self.next_stall = self.pos + interval;
                return Err(Error::new(ErrorKind::WouldBlock, "injected stall"));
            }
        }
        let mut len = buf.len() as u64;
        if self.short_reads {
            len = len.min(self.rng.gen_range(1..=MAX_FRAGMENT));
        }
        if let Some(cut) = self.truncate_at {
            len = len.min(cut - self.pos);
        }
        let n = self.inner.read(&mut buf[..len as usize])?;
        for (i, byte) in buf[..n].iter_mut().enumerate() {
            if self.corrupt.contains(&(self.pos + i as u64)) {
                *byte ^= 0xFF;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut r: impl Read) -> Vec<u8> {
        let mut out = Vec::new();
        let mut buf = [0u8; 16];
        loop {
            match r.read(&mut buf) {
                Ok(0) => return out,
                Ok(n) => out.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn clean_schedule_is_transparent() {
        let wire: Vec<u8> = (0..=255).collect();
        assert_eq!(drain(FaultyReader::new(&wire[..], 1)), wire);
    }

    #[test]
    fn short_reads_fragment_but_preserve_bytes() {
        let wire: Vec<u8> = (0..=255).collect();
        let mut r = FaultyReader::new(&wire[..], 2).short_reads();
        let mut buf = [0u8; 64];
        let first = r.read(&mut buf).unwrap();
        assert!(
            (1..=MAX_FRAGMENT as usize).contains(&first),
            "short read delivered {first} bytes"
        );
        let mut out = buf[..first].to_vec();
        out.extend(drain(r));
        assert_eq!(out, wire);
    }

    #[test]
    fn same_seed_same_fragmentation() {
        let wire = vec![7u8; 256];
        let frags = |seed| {
            let mut r = FaultyReader::new(&wire[..], seed).short_reads();
            let mut buf = [0u8; 64];
            let mut sizes = Vec::new();
            loop {
                match r.read(&mut buf).unwrap() {
                    0 => return sizes,
                    n => sizes.push(n),
                }
            }
        };
        assert_eq!(frags(42), frags(42));
        assert_ne!(frags(42), frags(43));
    }

    #[test]
    fn stalls_are_transient_and_periodic() {
        let wire = [0u8; 100];
        let mut r = FaultyReader::new(&wire[..], 3).stall_every(10);
        let mut buf = [0u8; 10];
        let mut stalls = 0;
        let mut got = 0;
        loop {
            match r.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => stalls += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(got, 100, "every byte arrives despite stalls");
        assert!(stalls >= 9, "expected periodic stalls, saw {stalls}");
    }

    #[test]
    fn corruption_flips_exactly_the_chosen_offset() {
        let wire = [0x00u8; 32];
        let got = drain(FaultyReader::new(&wire[..], 4).corrupt_byte(17));
        for (i, b) in got.iter().enumerate() {
            assert_eq!(*b, if i == 17 { 0xFF } else { 0x00 }, "offset {i}");
        }
    }

    #[test]
    fn corruption_lands_even_under_short_reads() {
        let wire = [0x55u8; 64];
        let got = drain(
            FaultyReader::new(&wire[..], 5)
                .short_reads()
                .corrupt_byte(0)
                .corrupt_byte(33)
                .corrupt_byte(63),
        );
        assert_eq!(got.len(), 64);
        for &i in &[0usize, 33, 63] {
            assert_eq!(got[i], 0x55 ^ 0xFF, "offset {i}");
        }
        assert_eq!(got[1], 0x55);
    }

    #[test]
    fn truncation_cuts_the_stream_short() {
        let wire = [9u8; 64];
        let got = drain(FaultyReader::new(&wire[..], 6).truncate_at(20));
        assert_eq!(got, vec![9u8; 20]);
    }
}
