//! Execution backends: what runs a monitoring session.
//!
//! A [`Backend`] consumes a [`SessionPlan`] (resolved source input, config
//! and lifeguard factory) and produces a [`RunOutcome`]. Two backends are
//! bundled:
//!
//! * [`DeterministicBackend`] — the paper's cycle-accurate discrete-event
//!   simulation. A workload input is co-simulated end to end (application
//!   cores, capture, rings, lifeguard cores); a stream input is ingested
//!   lifeguard-only, enforcing the captured dependence arcs but without
//!   timing (externally captured logs have no machine to time);
//! * [`ThreadedBackend`] — real OS threads replaying the streams against the
//!   lifeguard's `Send + Sync` concurrent form, enforcing arcs by spinning
//!   on an atomic progress table (§5.2), policing the §5.4 syscall range
//!   table per worker, and resolving §5.5 TSO version annotations against a
//!   shared [`ConcurrentVersionTable`](paralog_meta::ConcurrentVersionTable)
//!   (producers snapshot pre-store metadata, consumers park until it is
//!   published). A workload input is first captured deterministically;
//!   the deterministic fingerprint is recorded as
//!   [`RunMetrics::reference_fingerprint`](crate::RunMetrics) so
//!   `matches_reference()` states whether genuine concurrency reproduced the
//!   deterministic metadata.
//!
//! Both backends consume stream input **incrementally**: records are pulled
//! from each thread's [`RecordStream`] in bounded batches and delivered as
//! they arrive, so ingestion is online and source-side memory stays within
//! the source's chunk budget. A thread whose next record has not been
//! produced yet ([`StreamStatus::Blocked`]) parks the session; only when
//! *every* stream is exhausted and some delivered-gated record still waits
//! on an unmet arc is the run declared a [`SessionError::Deadlock`].

use super::source::{RecordStream, StreamStatus};
use super::{SessionError, SessionPlan};
use crate::config::{MonitorConfig, MonitoringMode};
use crate::metrics::{PhaseBreakdown, RunMetrics};
use crate::platform::lg::deliver_ingested;
use crate::platform::{RunOutcome, Sim};
use crate::reference::Reference;
use crate::session::SourceInput;
use paralog_events::{EventRecord, Rid, ThreadId};
use paralog_lifeguards::{
    ConcurrentLifeguard, CostModel, DeltaLifeguard, Lifeguard, LifeguardFactory, LifeguardFamily,
    LifeguardKind, ReplayMode, Violation,
};
use paralog_order::{Gate, OrderEnforcer, ProgressTable, RangeTable, SharedProgressTable};
use paralog_workloads::Workload;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Records pulled from a stream per refill — the backend-side buffering
/// bound (each thread holds at most one batch).
pub(crate) const INGEST_BATCH: usize = 256;

/// Runs one resolved monitoring session.
pub trait Backend: fmt::Debug {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// Consumes the plan and produces the run's outcome.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] when the plan asks for something this
    /// backend cannot provide (e.g. concurrent replay of a lifeguard without
    /// a concurrent form), when a streaming source turns out malformed, or
    /// when ingestion deadlocks on a truncated capture.
    fn run(&self, plan: SessionPlan) -> Result<RunOutcome, SessionError>;
}

/// The deterministic discrete-event backend (the paper's simulator).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterministicBackend;

impl Backend for DeterministicBackend {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn run(&self, plan: SessionPlan) -> Result<RunOutcome, SessionError> {
        match plan.input {
            SourceInput::Workload(ref w) => Ok(run_deterministic(
                w,
                &plan.config,
                plan.factory.build(plan.heap),
                plan.shorthand,
            )),
            SourceInput::Streams(streams) => {
                let family = plan.factory.build(plan.heap);
                let metrics = replay_streams(&family, streams, &plan.config.cost)?;
                Ok(RunOutcome { metrics })
            }
        }
    }
}

/// Borrowing shim behind [`Platform::run`](crate::Platform::run): the same
/// deterministic workload session the builder composes (bundled
/// `config.lifeguard`, [`DeterministicBackend`] semantics), minus the owned
/// source — so the classic entry point keeps borrowing the workload instead
/// of cloning its instruction streams every run.
pub(crate) fn run_platform(workload: &Workload, config: &MonitorConfig) -> RunOutcome {
    run_deterministic(
        workload,
        config,
        config.lifeguard.build(workload.heap),
        Some(config.lifeguard),
    )
}

/// Co-simulates `workload` under `config` with an already-built family.
fn run_deterministic(
    workload: &Workload,
    config: &MonitorConfig,
    family: LifeguardFamily,
    shorthand: Option<LifeguardKind>,
) -> RunOutcome {
    let k = workload.thread_count();
    let monitored = config.mode != MonitoringMode::None;
    // The in-line sequential reference exists only for the bundled analyses
    // (it is a re-implementation keyed by kind).
    let reference = match shorthand {
        Some(kind)
            if config.check_equivalence
                && monitored
                && kind != LifeguardKind::LockSet
                && kind != LifeguardKind::HappensBefore =>
        {
            Some(Reference::new(kind, k, config.machine_for(k).is_tso()))
        }
        _ => None,
    };
    let mut sim = Sim::new(workload, config, family, reference);
    if config.warm_caches {
        sim.warm();
    }
    sim.drive();
    RunOutcome {
        metrics: sim.into_metrics(),
    }
}

/// §5.4 ConflictAlert serialization for replay: a *non-issuer* copy of a
/// broadcast CA record (barrier or syscall-range class) may not be
/// delivered until the issuer's lifeguard has applied its own copy — the
/// issuer's copy is the one that performs the metadata update (taint the
/// read() buffer, clear the allocation, ...), and every remote stream's
/// copy marks where that update is ordered relative to the remote thread's
/// accesses. The live co-simulation enforces this through the `CaBarrier`
/// and the application-side broadcast serialization; replay enforces it by
/// gating on the issuer's advertised progress (`progress[issuer] >=
/// issuer_rid` ⇔ the issuer applied its copy). Broadcasts are globally
/// sequence-ordered, so these gates cannot cycle.
///
/// Returns whether `rec`'s gate is *unmet* (the caller must stall).
pub(crate) fn ca_gate_unmet(
    rec: &EventRecord,
    tid: usize,
    ca_policy: &paralog_order::CaPolicy,
    satisfied: impl Fn(ThreadId, paralog_events::Rid) -> bool,
) -> bool {
    let paralog_events::EventPayload::Ca(ca) = &rec.payload else {
        return false;
    };
    if ca.seq == u64::MAX || ca.issuer.index() == tid {
        return false; // own-stream-only record, or the issuer's copy itself
    }
    let actions = ca_policy.actions(ca.what, ca.phase);
    if !actions.barrier && !actions.track_range {
        return false; // flush-only classes order via data arcs (§5.4)
    }
    !satisfied(ca.issuer, ca.issuer_rid)
}

/// One thread's ingestion state in the streaming replay loop.
struct IngestLane {
    stream: Box<dyn RecordStream>,
    /// At most one pulled batch awaiting delivery.
    pending: VecDeque<EventRecord>,
    exhausted: bool,
    enforcer: OrderEnforcer,
    range_table: RangeTable,
}

/// Lifeguard-only ingestion of per-thread streams under the deterministic
/// backend: records are pulled incrementally (bounded batches) and
/// delivered in an order that satisfies every captured dependence arc
/// (run-to-block round-robin over threads), through the same
/// [`Lifeguard`] handlers the co-simulation drives. There is no simulated
/// application to time, but lifeguard-side time *is* modeled: each record
/// is charged under `cost` and the run reports a Figure-7-style
/// [`PhaseBreakdown`] (capture / transport / order-wait / analysis /
/// publish) in [`RunMetrics::phases`], with
/// [`RunMetrics::lg_finish`](crate::RunMetrics) set to the phase total.
/// Analysis results (violations, fingerprints, version traffic) are
/// full-fidelity.
///
/// The loop distinguishes the two ways a thread can fail to advance:
///
/// * its stream is [`StreamStatus::Blocked`] — the producer exists but has
///   not caught up; the session parks (yielding the CPU) and retries;
/// * its head record's arc is unmet while **every** stream is exhausted —
///   no producer can ever satisfy it: [`SessionError::Deadlock`].
fn replay_streams(
    family: &LifeguardFamily,
    streams: Vec<Box<dyn RecordStream>>,
    cost: &CostModel,
) -> Result<RunMetrics, SessionError> {
    let k = streams.len();
    if k == 0 {
        return Err(SessionError::EmptySource);
    }
    let mut lgs: Vec<Box<dyn Lifeguard>> =
        (0..k).map(|t| family.thread(ThreadId(t as u16))).collect();
    let ca_policy = lgs[0].spec().ca_policy.clone();
    let mut progress = ProgressTable::new(k);
    let mut versions = paralog_meta::VersionTable::new();
    let mut lanes: Vec<IngestLane> = streams
        .into_iter()
        .map(|stream| IngestLane {
            stream,
            pending: VecDeque::new(),
            exhausted: false,
            enforcer: OrderEnforcer::new(),
            range_table: RangeTable::new(k),
        })
        .collect();

    let mut batch: Vec<EventRecord> = Vec::with_capacity(INGEST_BATCH);
    let mut records = 0u64;
    let mut delivered_ops = 0u64;
    let mut stalls = 0u64;
    let mut idle_rounds = 0u32;
    let mut violations: Vec<Violation> = Vec::new();
    let mut analysis = 0u64;
    let mut publish = 0u64;
    loop {
        let mut any_progress = false;
        let mut producer_pending = false;
        for (t, lane) in lanes.iter_mut().enumerate() {
            // Run this thread until its head blocks, its producer lags, or
            // its stream drains.
            loop {
                if lane.pending.is_empty() {
                    if lane.exhausted {
                        break;
                    }
                    let status = lane.stream.next_batch(&mut batch, INGEST_BATCH)?;
                    // Drain whatever arrived regardless of status (a stream
                    // may deliver a partial batch and *then* report Blocked)
                    // so nothing leaks into another lane's refill.
                    let got_records = !batch.is_empty();
                    lane.pending.extend(batch.drain(..));
                    match status {
                        StreamStatus::Yielded | StreamStatus::Blocked if got_records => {}
                        StreamStatus::Yielded | StreamStatus::Blocked => {
                            // (An empty `Yielded` is a protocol violation;
                            // treat it like a lagging producer rather than
                            // spinning on the misbehaving stream.)
                            producer_pending = true;
                            break;
                        }
                        StreamStatus::Exhausted => {
                            lane.exhausted = true;
                            if !got_records {
                                break;
                            }
                        }
                    }
                }
                let mut arc_blocked = false;
                while let Some(head) = lane.pending.front() {
                    if let Gate::Blocked { .. } = lane.enforcer.regate(head, &progress) {
                        stalls += 1;
                        arc_blocked = true;
                        break;
                    }
                    if ca_gate_unmet(head, t, &ca_policy, |src, rid| progress.get(src) >= rid) {
                        stalls += 1;
                        arc_blocked = true;
                        break;
                    }
                    let rec = lane.pending.pop_front().expect("peeked");
                    let (a, p) = PhaseBreakdown::record_cycles(cost, &rec, t);
                    analysis += a;
                    publish += p;
                    deliver_ingested(
                        &rec,
                        t,
                        &mut lgs,
                        &mut lane.range_table,
                        &mut versions,
                        &ca_policy,
                        &mut violations,
                        &mut delivered_ops,
                    )?;
                    progress.advertise(ThreadId(t as u16), rec.rid);
                    records += 1;
                    any_progress = true;
                }
                if arc_blocked {
                    break;
                }
            }
        }
        if lanes.iter().all(|l| l.exhausted && l.pending.is_empty()) {
            break;
        }
        if any_progress {
            idle_rounds = 0;
        } else {
            if producer_pending {
                // Streams blocked on live producers: park and retry — this
                // is online ingestion waiting for input, not a deadlock.
                // Back off to short sleeps so an idle feed does not burn a
                // core; resume eagerly once records flow again.
                if idle_rounds < 64 {
                    idle_rounds += 1;
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                continue;
            }
            let stuck: Vec<String> = lanes
                .iter()
                .enumerate()
                .filter_map(|(t, lane)| {
                    lane.pending.front().map(|head| {
                        format!(
                            "thread {t} blocked at rid {} arcs {:?}",
                            head.rid, head.arcs
                        )
                    })
                })
                .collect();
            return Err(SessionError::Deadlock(stuck.join("; ")));
        }
    }

    let wire_bytes: u64 = lanes.iter().map(|l| l.stream.transport_bytes()).sum();
    let phases = PhaseBreakdown {
        capture: records * cost.record_drain,
        transport: PhaseBreakdown::transport_cycles(wire_bytes),
        order_wait: stalls * cost.stall_poll,
        analysis,
        publish,
    };
    Ok(RunMetrics {
        app_threads: k,
        records,
        delivered_ops,
        dependence_stalls: stalls,
        versions_produced: versions.produced(),
        versions_consumed: versions.consumed(),
        violations,
        fingerprint: family.fingerprint(),
        lg_finish: phases.total(),
        phases: Some(phases),
        ..RunMetrics::default()
    })
}

/// The real-thread backend: one OS thread per stream, lock-free shared
/// metadata, order enforced purely by spinning on an atomic progress table.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedBackend;

/// How real-thread replay (the [`ThreadedBackend`] and the daemon's
/// cooperative lanes) applies records to the concurrent lifeguard — the
/// [`MonitorSessionBuilder::backend_mode`](super::MonitorSessionBuilder::backend_mode)
/// knob, resolved per session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendMode {
    /// Let the lifeguard factory pick
    /// ([`LifeguardFactory::preferred_mode`], thresholds recorded from the
    /// measured `BENCH_concurrent.json` matrix), falling back to
    /// CAS-per-access when the analysis ships no delta form.
    #[default]
    Auto,
    /// Publish every metadata write into the shared tables immediately —
    /// §5.3's per-access atomicity discipline
    /// ([`ConcurrentLifeguard::apply`]).
    CasPerAccess,
    /// Buffer metadata writes in a worker-private shadow delta and publish
    /// them only at dependence-arc and sync boundaries
    /// ([`DeltaLifeguard`]). Fingerprints and violation reports are
    /// bit-identical to [`CasPerAccess`](Self::CasPerAccess); an explicit
    /// request fails with [`SessionError::Unsupported`] when the lifeguard
    /// has no delta form.
    DeltaMerge,
}

impl fmt::Display for BackendMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendMode::Auto => "auto",
            BackendMode::CasPerAccess => "cas",
            BackendMode::DeltaMerge => "delta",
        })
    }
}

/// A resolved concurrent replay form: which apply path the workers drive.
pub(crate) enum ReplayForm {
    Cas(Box<dyn ConcurrentLifeguard>),
    Delta(Box<dyn DeltaLifeguard>),
}

impl fmt::Debug for ReplayForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplayForm::Cas(_) => "ReplayForm::Cas",
            ReplayForm::Delta(_) => "ReplayForm::Delta",
        })
    }
}

impl ReplayForm {
    /// The shared [`ConcurrentLifeguard`] surface (fingerprints,
    /// violations, CA policy, boundaries) — both forms expose it.
    pub(crate) fn conc(&self) -> &dyn ConcurrentLifeguard {
        match self {
            ReplayForm::Cas(l) => &**l,
            ReplayForm::Delta(l) => &**l,
        }
    }

    /// The delta-merge surface, when this form buffers privately.
    pub(crate) fn delta(&self) -> Option<&dyn DeltaLifeguard> {
        match self {
            ReplayForm::Cas(_) => None,
            ReplayForm::Delta(l) => Some(&**l),
        }
    }

    /// The mode this form runs under (for status surfaces).
    pub(crate) fn mode(&self) -> ReplayMode {
        match self {
            ReplayForm::Cas(_) => ReplayMode::CasPerAccess,
            ReplayForm::Delta(_) => ReplayMode::DeltaMerge,
        }
    }
}

/// Resolves the session's [`BackendMode`] against what `factory` actually
/// offers for a `threads`-way replay.
///
/// `Auto` consults [`LifeguardFactory::preferred_mode`] and silently falls
/// back to CAS-per-access when no delta form exists; an *explicit*
/// [`BackendMode::DeltaMerge`] request without one is an error.
///
/// # Errors
///
/// [`SessionError::Unsupported`] when the factory lacks the requested (or
/// any) concurrent form.
pub(crate) fn resolve_replay_form(
    factory: &dyn LifeguardFactory,
    heap: paralog_events::AddrRange,
    threads: usize,
    mode: BackendMode,
) -> Result<ReplayForm, SessionError> {
    let cas = |factory: &dyn LifeguardFactory| {
        factory
            .concurrent(heap, threads)
            .map(ReplayForm::Cas)
            .ok_or(SessionError::Unsupported(
                "lifeguard has no concurrent (Send + Sync) replay form",
            ))
    };
    match mode {
        BackendMode::CasPerAccess => cas(factory),
        BackendMode::DeltaMerge => factory
            .concurrent_delta(heap, threads)
            .map(ReplayForm::Delta)
            .ok_or(SessionError::Unsupported(
                "lifeguard has no delta-merge replay form",
            )),
        BackendMode::Auto => match factory.preferred_mode(threads) {
            ReplayMode::DeltaMerge => match factory.concurrent_delta(heap, threads) {
                Some(delta) => Ok(ReplayForm::Delta(delta)),
                None => cas(factory),
            },
            ReplayMode::CasPerAccess => cas(factory),
        },
    }
}

/// How long the no-global-progress detectors tolerate a completely flat
/// run (no record applied anywhere, no worker inside its stream pull)
/// before declaring [`SessionError::Deadlock`]. Shared by the §5.2 arc
/// spin and the §5.5 version wait.
const NO_PROGRESS_GRACE: std::time::Duration = std::time::Duration::from_secs(2);

/// The much shorter flat-run window used once the input is severed (every
/// worker finished or parked in a wait — see
/// [`ThreadedRun::input_severed`]). At that point nothing can ever wake
/// the run from outside, so the only latencies left are internal
/// scheduling ones (a peer noticing its gate cleared, a 200µs
/// version-wait slice): a dropped producer resolves to
/// [`SessionError::Deadlock`] in a quarter second instead of parking
/// workers for the full grace window. Still a window rather than an
/// instant check because a parked peer whose gate *just* cleared may yet
/// resume and advertise further progress.
const SEVERED_GRACE: std::time::Duration = std::time::Duration::from_millis(250);

/// Shared worker coordination for one threaded replay.
struct ThreadedRun {
    threads: usize,
    progress: SharedProgressTable,
    /// §5.5 versioned metadata shared by all workers: producers publish
    /// pre-store snapshots, consumers park on them.
    versions: paralog_meta::ConcurrentVersionTable,
    arc_spins: AtomicU64,
    /// Records applied across all workers — the liveness signal deadlock
    /// detection watches.
    applied: AtomicU64,
    /// Workers currently parked on a `Blocked` stream (a live producer that
    /// has not caught up). While nonzero, a flat `applied` counter is *not*
    /// evidence of deadlock.
    producers_blocked: AtomicUsize,
    /// Workers parked inside an arc spin or a §5.5 version wait.
    waiting_workers: AtomicUsize,
    /// Workers whose replay loop has returned (drained, failed or aborted).
    finished_workers: AtomicUsize,
    /// Set on the first failure (deadlock, malformed stream, unsupported
    /// record); every worker bails out promptly once set.
    abort: AtomicBool,
    failure: Mutex<Option<SessionError>>,
}

impl ThreadedRun {
    fn new(threads: usize) -> Self {
        ThreadedRun {
            threads,
            progress: SharedProgressTable::new(threads),
            versions: paralog_meta::ConcurrentVersionTable::new(threads),
            arc_spins: AtomicU64::new(0),
            applied: AtomicU64::new(0),
            producers_blocked: AtomicUsize::new(0),
            waiting_workers: AtomicUsize::new(0),
            finished_workers: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
        }
    }

    /// Records the first failure and tells every worker to stop.
    fn fail(&self, err: SessionError) {
        let mut failure = self.failure.lock().expect("poisoned");
        if failure.is_none() {
            *failure = Some(err);
        }
        self.abort.store(true, Ordering::Release);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Whether the run's input is severed: every worker is either finished
    /// or parked in a wait (an arc spin or a §5.5 version wait). Waits are
    /// only ever resolved by a *peer worker* advertising progress, and with
    /// no worker left pulling or applying, nothing ever will — only a
    /// parked peer noticing its gate already cleared can — so the flat-run
    /// detector drops from [`NO_PROGRESS_GRACE`] to [`SEVERED_GRACE`]: a
    /// dropped producer resolves to `Deadlock` fast instead of parking
    /// workers for the full grace window. Stream exhaustion is deliberately
    /// *not* part of the condition: a worker parked mid-pending never
    /// re-polls its stream, so a dropped producer behind a gated record
    /// would otherwise go unnoticed. (A worker waiting on a *live* lagging
    /// producer sits in `producers_blocked`, not here, and
    /// [`FlatRunDetector::check`] refuses to arm at all while any worker
    /// does.)
    fn input_severed(&self) -> bool {
        self.waiting_workers.load(Ordering::SeqCst) + self.finished_workers.load(Ordering::SeqCst)
            >= self.threads
    }
}

impl Backend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, plan: SessionPlan) -> Result<RunOutcome, SessionError> {
        let (streams, expected): (Vec<Box<dyn RecordStream>>, Option<u64>) = match plan.input {
            SourceInput::Workload(ref w) => {
                // Capture the fully annotated streams deterministically —
                // including §5.5 produce/consume version annotations under
                // TSO; the capture's fingerprint becomes the expected
                // reference.
                let mut cfg = plan.config.clone();
                cfg.mode = MonitoringMode::Parallel;
                cfg.collect_streams = true;
                let metrics =
                    run_deterministic(w, &cfg, plan.factory.build(plan.heap), plan.shorthand)
                        .metrics;
                let streams = metrics.streams.expect("collect_streams was set");
                let fingerprint = metrics.fingerprint;
                match SourceInput::from_buffered(streams) {
                    SourceInput::Streams(streams) => (streams, Some(fingerprint)),
                    SourceInput::Workload(_) => unreachable!("buffered input"),
                }
            }
            SourceInput::Streams(s) => (s, None),
        };
        if streams.is_empty() {
            return Err(SessionError::EmptySource);
        }
        let k = streams.len();
        let form = resolve_replay_form(&*plan.factory, plan.heap, k, plan.mode)?;
        let conc = form.conc();
        if let Some(observer) = plan.observer {
            conc.set_event_observer(observer);
        }
        let ca_policy = conc.ca_policy();

        let run = ThreadedRun::new(k);
        std::thread::scope(|scope| {
            for (tid, stream) in streams.into_iter().enumerate() {
                let form = &form;
                let run = &run;
                let ca_policy = &ca_policy;
                scope.spawn(move || {
                    let tid = ThreadId(tid as u16);
                    replay_worker(tid, stream, form, ca_policy, run, k);
                    run.finished_workers.fetch_add(1, Ordering::SeqCst);
                    // However the worker exited (drained, failed, aborted),
                    // it stops gating quiescence and flushes its shard's
                    // retire queue.
                    form.conc().stream_done(tid);
                    run.versions.advance_epoch(tid);
                });
            }
        });
        if let Some(err) = run.failure.into_inner().expect("poisoned") {
            return Err(err);
        }

        let mut violations = conc.violations();
        // Worker interleaving is scheduler-dependent; a canonical order keeps
        // the report deterministic.
        violations.sort_by_key(|v| (v.tid.0, v.rid.0));
        let total = run.applied.load(Ordering::Relaxed);
        Ok(RunOutcome {
            metrics: RunMetrics {
                app_threads: k,
                records: total,
                delivered_ops: total,
                dependence_stalls: run.arc_spins.load(Ordering::Relaxed),
                versions_produced: run.versions.produced(),
                versions_consumed: run.versions.consumed(),
                violations,
                fingerprint: conc.fingerprint(),
                reference_fingerprint: expected,
                events: conc.session_events(),
                ..RunMetrics::default()
            },
        })
    }
}

/// Publishes a delta-mode worker's buffered window: flush the private
/// shadow delta into the shared tables, then advertise the deferred
/// progress watermark. Advertisement is monotone, so only the *last*
/// applied rid needs publishing — peers' `satisfies(src, rid)` checks are
/// `progress[src] >= rid`. A CAS-per-access lane passes `delta: None` and
/// an always-`None` watermark, making this a no-op.
fn flush_lane(
    delta: Option<&dyn DeltaLifeguard>,
    run: &ThreadedRun,
    tid: ThreadId,
    unadvertised: &mut Option<Rid>,
) {
    if let Some(d) = delta {
        d.flush_delta(tid);
    }
    if let Some(rid) = unadvertised.take() {
        run.progress.advertise(tid, rid);
    }
}

/// One worker of the threaded replay: pulls its stream in bounded batches,
/// enforces arcs by spinning on the shared progress table (§5.2), polices
/// the §5.4 range table, and applies each record to the concurrent
/// lifeguard.
///
/// Under [`BackendMode::DeltaMerge`] the worker applies records to its
/// private overlay and defers both the metadata publish and the progress
/// advertisement to *flush points*: before any ordered interaction (an arc
/// spin, a §5.4 CA gate, a §5.5 produce or consume point) and at every
/// batch boundary — including before parking on a lagging producer, so a
/// peer spinning on this worker's progress always sees the published
/// watermark before this worker blocks. Liveness follows: a delta worker
/// either keeps applying (bumping `run.applied`, which arc spinners watch)
/// or flushes before it waits.
fn replay_worker(
    tid: ThreadId,
    mut stream: Box<dyn RecordStream>,
    form: &ReplayForm,
    ca_policy: &paralog_order::CaPolicy,
    run: &ThreadedRun,
    threads: usize,
) {
    let conc = form.conc();
    let delta = form.delta();
    // Delta mode's deferred-advertisement watermark; always `None` in CAS
    // mode (progress is advertised per record there).
    let mut unadvertised: Option<Rid> = None;
    let mut pending: VecDeque<EventRecord> = VecDeque::new();
    let mut batch: Vec<EventRecord> = Vec::with_capacity(INGEST_BATCH);
    let mut range_table = RangeTable::new(threads);
    let mut idle_polls = 0u32;
    loop {
        if run.aborted() {
            return;
        }
        if pending.is_empty() {
            // Batch boundary: publish the buffered window *before* the pull
            // — the pull may park on a lagging producer, and peers must not
            // wait out that park for progress already made.
            flush_lane(delta, run, tid, &mut unadvertised);
            // The pull itself may block inside the transport (a pipe or
            // socket read *is* the producer wait), so the whole call is
            // bracketed by the producers_blocked counter — arc spinners
            // must not read a flat applied count as deadlock meanwhile.
            run.producers_blocked.fetch_add(1, Ordering::Relaxed);
            let pulled = stream.next_batch(&mut batch, INGEST_BATCH);
            run.producers_blocked.fetch_sub(1, Ordering::Relaxed);
            // Drain whatever arrived regardless of status (a stream may
            // deliver a partial batch and *then* report Blocked).
            let got_records = !batch.is_empty();
            pending.extend(batch.drain(..));
            match pulled {
                Ok(StreamStatus::Yielded) | Ok(StreamStatus::Blocked) if got_records => {}
                Ok(StreamStatus::Yielded) | Ok(StreamStatus::Blocked) => {
                    // A live producer that has not caught up: park, backing
                    // off to short sleeps so an idle feed does not burn a
                    // core.
                    run.producers_blocked.fetch_add(1, Ordering::Relaxed);
                    if idle_polls < 64 {
                        idle_polls += 1;
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    }
                    run.producers_blocked.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
                // Exhausted-with-records: deliver the tail now; the next
                // (sticky) pull returns Exhausted again with nothing.
                Ok(StreamStatus::Exhausted) => {
                    if !got_records {
                        return;
                    }
                }
                Err(err) => {
                    run.fail(err);
                    return;
                }
            }
            idle_polls = 0;
            // Batch boundary: no record application is in flight on this
            // worker, so stale fast-path reads are dead — the quiescence
            // point epoch-based reclamation (version-table chunks, interned
            // lockset masks) keys off.
            conc.epoch_boundary(tid);
            run.versions.advance_epoch(tid);
        }
        while let Some(rec) = pending.pop_front() {
            // Delta flush point: any ordered interaction — a wait (arc
            // spin, CA gate, §5.5 consume) or a publish peers read (§5.5
            // produce snapshot, CA metadata update) — must observe this
            // worker's buffered window and its advertised watermark first.
            if delta.is_some()
                && (!rec.arcs.is_empty()
                    || rec.consume_version.is_some()
                    || !rec.produce_versions.is_empty()
                    || matches!(rec.payload, paralog_events::EventPayload::Ca(_)))
            {
                flush_lane(delta, run, tid, &mut unadvertised);
            }
            // §5.2 enforcement: spin until every arc is satisfied.
            for arc in &rec.arcs {
                match spin_until(run, || run.progress.satisfies(arc.src, arc.src_rid)) {
                    SpinOutcome::Ready { spun } => {
                        if spun {
                            run.arc_spins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    SpinOutcome::Stuck => {
                        run.fail(SessionError::Deadlock(
                            "threaded replay made no progress; a stream carries arcs \
                             its producer never satisfies"
                                .into(),
                        ));
                        return;
                    }
                    SpinOutcome::Aborted => return,
                }
            }
            // §5.4 serialization: a remote barrier/range-class CA copy waits
            // for the issuer's metadata update (see `ca_gate_unmet`).
            if ca_gate_unmet(&rec, tid.index(), ca_policy, |src, rid| {
                run.progress.satisfies(src, rid)
            }) {
                match spin_until(run, || {
                    !ca_gate_unmet(&rec, tid.index(), ca_policy, |src, rid| {
                        run.progress.satisfies(src, rid)
                    })
                }) {
                    SpinOutcome::Ready { spun } => {
                        if spun {
                            run.arc_spins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    SpinOutcome::Stuck => {
                        run.fail(SessionError::Deadlock(
                            "threaded replay made no progress; a ConflictAlert's issuer \
                             never applies its update (truncated capture?)"
                                .into(),
                        ));
                        return;
                    }
                    SpinOutcome::Aborted => return,
                }
            }
            // §5.5 produce points: publish the pre-store snapshot *before*
            // this record's own effect, waking any parked consumer.
            for (vid, mem, consumers) in &rec.produce_versions {
                let range = mem.range();
                let snapshot = conc.snapshot_meta(range);
                // A structurally invalid annotation (duplicate id, zero
                // consumers, out-of-range consumer thread) means the wire
                // stream is corrupt: report it, don't panic a worker.
                if let Err(err) = run.versions.try_produce(*vid, range, snapshot, *consumers) {
                    run.fail(SessionError::MalformedStream(format!(
                        "thread {} stream carries an invalid produce annotation: {err}",
                        tid.0
                    )));
                    return;
                }
            }
            // §5.5 consume points: unlike the deterministic paths, a missing
            // version is *not* a bypass here — reading the live shadow would
            // race the producer's store on real threads — so the worker
            // parks until the producer publishes.
            let versioned: Option<paralog_lifeguards::VersionedMeta> = match rec.consume_version {
                Some((vid, _)) => match wait_consume_version(vid, run) {
                    Some(v) => Some(v),
                    None => return, // aborted, or deadlock already reported
                },
                None => None,
            };
            // §5.4: police the range table before applying, mirroring the
            // deterministic delivery order.
            if let paralog_events::EventPayload::Instr(instr) = &rec.payload {
                if let Some((mem, _)) = instr.mem_access() {
                    if let Some(entry) = range_table.check(tid, mem.range()) {
                        conc.on_syscall_race(tid, mem.range(), &entry, rec.rid);
                    }
                }
            }
            match delta {
                Some(d) => d.apply_delta(tid, &rec, versioned.as_ref()),
                None => conc.apply(tid, &rec, versioned.as_ref()),
            }
            if let paralog_events::EventPayload::Ca(ca) = &rec.payload {
                let actions = ca_policy.actions(ca.what, ca.phase);
                if actions.track_range {
                    match (ca.phase, ca.range) {
                        (paralog_events::CaPhase::Begin, Some(range)) => {
                            range_table.insert(ca.issuer, ca.what, range)
                        }
                        (paralog_events::CaPhase::End, _) => range_table.remove(ca.issuer),
                        _ => {}
                    }
                }
            }
            if delta.is_none() || matches!(rec.payload, paralog_events::EventPayload::Ca(_)) {
                // CAS mode advertises per record; a delta lane still
                // advertises CA copies immediately — remote copies gate on
                // the issuer's advertised progress, and the CA apply
                // self-flushed.
                run.progress.advertise(tid, rec.rid);
            } else {
                unadvertised = Some(rec.rid);
            }
            run.applied.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The no-global-progress detector shared by the §5.2 arc spin and the
/// §5.5 version wait: a stalled worker is only deadlocked once the *whole*
/// run has been flat — no record applied anywhere, and no peer inside a
/// stream pull (a live producer that has not caught up) — for the full
/// grace window. A thread parked on an unproduced version therefore never
/// trips the detector while its producer is still making progress.
struct FlatRunDetector {
    last_applied: u64,
    flat_since: Option<std::time::Instant>,
}

impl FlatRunDetector {
    fn new(run: &ThreadedRun) -> Self {
        FlatRunDetector {
            last_applied: run.applied.load(Ordering::Relaxed),
            flat_since: None,
        }
    }

    /// Re-reads the liveness signals; `true` means the grace window elapsed
    /// with the run completely flat (declare deadlock).
    fn check(&mut self, run: &ThreadedRun) -> bool {
        let now = run.applied.load(Ordering::Relaxed);
        if now != self.last_applied {
            self.last_applied = now;
            self.flat_since = None;
            return false;
        }
        if run.producers_blocked.load(Ordering::Relaxed) > 0 {
            // A peer is waiting on its producer: the run is starved for
            // input, not deadlocked.
            self.flat_since = None;
            return false;
        }
        let t0 = *self.flat_since.get_or_insert_with(std::time::Instant::now);
        let grace = if run.input_severed() {
            SEVERED_GRACE
        } else {
            NO_PROGRESS_GRACE
        };
        t0.elapsed() > grace
    }
}

/// How a [`spin_until`] wait ended.
enum SpinOutcome {
    /// The condition holds; `spun` reports whether we waited at all.
    Ready { spun: bool },
    /// The flat-run detector's grace window elapsed (caller reports the
    /// deadlock).
    Stuck,
    /// Another worker failed the run.
    Aborted,
}

/// §5.2-style wait: spin on `satisfied`, yielding periodically and running
/// the shared no-global-progress detector. The wait is bracketed by
/// [`ThreadedRun::waiting_workers`] so peers can tell a parked worker from
/// a running one (the severed-input fast path keys off it).
fn spin_until(run: &ThreadedRun, mut satisfied: impl FnMut() -> bool) -> SpinOutcome {
    if satisfied() {
        return SpinOutcome::Ready { spun: false };
    }
    run.waiting_workers.fetch_add(1, Ordering::SeqCst);
    let mut spins = 0u32;
    let mut detector = FlatRunDetector::new(run);
    let outcome = loop {
        if satisfied() {
            break SpinOutcome::Ready { spun: true };
        }
        if run.aborted() {
            break SpinOutcome::Aborted;
        }
        spins += 1;
        if spins >= 1 << 14 {
            spins = 0;
            if detector.check(run) {
                break SpinOutcome::Stuck;
            }
            std::thread::yield_now();
        }
        std::hint::spin_loop();
    };
    run.waiting_workers.fetch_sub(1, Ordering::SeqCst);
    outcome
}

/// Parks until the §5.5 version `vid` is produced, then consumes it.
/// Returns `None` when the run aborted or the wait itself proved a
/// deadlock (a truncated or malformed TSO capture whose producer never
/// reaches its produce point) — already reported via [`ThreadedRun::fail`].
fn wait_consume_version(
    vid: paralog_events::VersionId,
    run: &ThreadedRun,
) -> Option<paralog_lifeguards::VersionedMeta> {
    if let Some(v) = run.versions.consume(vid) {
        return Some(v);
    }
    run.waiting_workers.fetch_add(1, Ordering::SeqCst);
    let mut detector = FlatRunDetector::new(run);
    let out = loop {
        if let Some(v) = run.versions.consume(vid) {
            break Some(v);
        }
        if run.aborted() {
            break None;
        }
        // Park on the producer's wakeup path in bounded slices so the
        // liveness checks keep running while we wait.
        run.versions
            .wait_available(vid, std::time::Duration::from_micros(200));
        if detector.check(run) {
            // One last look — the wakeup that ended `wait_available` may
            // have been the producer publishing this very version.
            if let Some(v) = run.versions.consume(vid) {
                break Some(v);
            }
            run.fail(SessionError::Deadlock(format!(
                "thread parked on unproduced version {vid}; its producer never reaches \
                 the produce point (truncated or malformed TSO capture, or a dropped \
                 producer)"
            )));
            break None;
        }
    };
    run.waiting_workers.fetch_sub(1, Ordering::SeqCst);
    out
}
