//! Execution backends: what runs a monitoring session.
//!
//! A [`Backend`] consumes a [`SessionPlan`] (resolved source input, config
//! and lifeguard factory) and produces a [`RunOutcome`]. Two backends are
//! bundled:
//!
//! * [`DeterministicBackend`] — the paper's cycle-accurate discrete-event
//!   simulation. A workload input is co-simulated end to end (application
//!   cores, capture, rings, lifeguard cores); a stream input is ingested
//!   lifeguard-only, enforcing the captured dependence arcs but without
//!   timing (externally captured logs have no machine to time);
//! * [`ThreadedBackend`] — real OS threads replaying the streams against the
//!   lifeguard's `Send + Sync` concurrent form, enforcing arcs by spinning
//!   on an atomic progress table (§5.2). A workload input is first captured
//!   deterministically; the deterministic fingerprint is recorded as
//!   [`RunMetrics::reference_fingerprint`](crate::RunMetrics) so
//!   `matches_reference()` states whether genuine concurrency reproduced the
//!   deterministic metadata.

use super::{SessionError, SessionPlan};
use crate::config::{MonitorConfig, MonitoringMode};
use crate::metrics::RunMetrics;
use crate::platform::{RunOutcome, Sim};
use crate::reference::Reference;
use crate::session::SourceInput;
use paralog_events::{
    check_view, dataflow_view, AddrRange, CaPhase, EventPayload, EventRecord, LogRing, ThreadId,
};
use paralog_lifeguards::{
    EventView, HandlerCtx, Lifeguard, LifeguardFactory, LifeguardFamily, LifeguardKind, Violation,
};
use paralog_order::{
    CaPolicy, Gate, OrderEnforcer, ProgressTable, RangeTable, SharedProgressTable,
};
use paralog_workloads::Workload;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Runs one resolved monitoring session.
pub trait Backend: fmt::Debug {
    /// Human-readable backend name.
    fn name(&self) -> &'static str;

    /// Consumes the plan and produces the run's outcome.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] when the plan asks for something this
    /// backend cannot provide (e.g. concurrent replay of a lifeguard without
    /// a concurrent form, or ingestion of a malformed stream whose arcs can
    /// never be satisfied).
    fn run(&self, plan: SessionPlan) -> Result<RunOutcome, SessionError>;
}

/// The deterministic discrete-event backend (the paper's simulator).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeterministicBackend;

impl Backend for DeterministicBackend {
    fn name(&self) -> &'static str {
        "deterministic"
    }

    fn run(&self, plan: SessionPlan) -> Result<RunOutcome, SessionError> {
        match plan.input {
            SourceInput::Workload(ref w) => Ok(run_deterministic(
                w,
                &plan.config,
                plan.factory.build(plan.heap),
                plan.shorthand,
            )),
            SourceInput::Streams(streams) => {
                let family = plan.factory.build(plan.heap);
                let metrics = replay_streams(&family, streams)?;
                Ok(RunOutcome { metrics })
            }
        }
    }
}

/// Borrowing shim behind [`Platform::run`](crate::Platform::run): the same
/// deterministic workload session the builder composes (bundled
/// `config.lifeguard`, [`DeterministicBackend`] semantics), minus the owned
/// source — so the classic entry point keeps borrowing the workload instead
/// of cloning its instruction streams every run.
pub(crate) fn run_platform(workload: &Workload, config: &MonitorConfig) -> RunOutcome {
    run_deterministic(
        workload,
        config,
        config.lifeguard.build(workload.heap),
        Some(config.lifeguard),
    )
}

/// Co-simulates `workload` under `config` with an already-built family.
fn run_deterministic(
    workload: &Workload,
    config: &MonitorConfig,
    family: LifeguardFamily,
    shorthand: Option<LifeguardKind>,
) -> RunOutcome {
    let k = workload.thread_count();
    let monitored = config.mode != MonitoringMode::None;
    // The in-line sequential reference exists only for the bundled analyses
    // (it is a re-implementation keyed by kind).
    let reference = match shorthand {
        Some(kind) if config.check_equivalence && monitored && kind != LifeguardKind::LockSet => {
            Some(Reference::new(kind, k, config.machine_for(k).is_tso()))
        }
        _ => None,
    };
    let mut sim = Sim::new(workload, config, family, reference);
    if config.warm_caches {
        sim.warm();
    }
    sim.drive();
    RunOutcome {
        metrics: sim.into_metrics(),
    }
}

/// Lifeguard-only ingestion of pre-captured streams under the deterministic
/// backend: records are delivered in an order that satisfies every captured
/// dependence arc (run-to-block round-robin over threads), through the same
/// [`Lifeguard`] handlers the co-simulation drives. Timing buckets stay
/// zero — there is no simulated machine to time — but analysis results
/// (violations, fingerprints, version traffic) are full-fidelity.
fn replay_streams(
    family: &LifeguardFamily,
    streams: Vec<Vec<EventRecord>>,
) -> Result<RunMetrics, SessionError> {
    let k = streams.len();
    if k == 0 {
        return Err(SessionError::EmptySource);
    }
    let mut lgs: Vec<Box<dyn Lifeguard>> =
        (0..k).map(|t| family.thread(ThreadId(t as u16))).collect();
    let ca_policy: CaPolicy = lgs[0].spec().ca_policy.clone();
    let mut progress = ProgressTable::new(k);
    let mut enforcers = vec![OrderEnforcer::new(); k];
    let mut range_tables: Vec<RangeTable> = (0..k).map(|_| RangeTable::new(k)).collect();
    let mut versions = paralog_meta::VersionTable::new();
    let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
    let mut rings: Vec<LogRing> = streams
        .into_iter()
        .map(|s| {
            let mut ring = LogRing::new(s.len().max(1));
            for rec in s {
                ring.push(rec).expect("ring sized to its stream");
            }
            ring.close();
            ring
        })
        .collect();

    let mut delivered_ops = 0u64;
    let mut stalls = 0u64;
    let mut violations: Vec<Violation> = Vec::new();
    loop {
        let mut any = false;
        for t in 0..k {
            // Run this thread until its head blocks or its stream drains.
            loop {
                let gate = match rings[t].peek() {
                    None => break,
                    Some(head) => enforcers[t].regate(head, &progress),
                };
                if let Gate::Blocked { .. } = gate {
                    stalls += 1;
                    break;
                }
                let rid = rings[t]
                    .pop_with(|rec| {
                        deliver_replayed(
                            rec,
                            t,
                            &mut lgs,
                            &mut range_tables[t],
                            &mut versions,
                            &ca_policy,
                            &mut violations,
                            &mut delivered_ops,
                        );
                        rec.rid
                    })
                    .expect("peeked");
                progress.advertise(ThreadId(t as u16), rid);
                any = true;
            }
        }
        if rings.iter().all(LogRing::is_drained) {
            break;
        }
        if !any {
            let stuck: Vec<String> = (0..k)
                .filter_map(|t| {
                    rings[t].peek().map(|head| {
                        format!(
                            "thread {t} blocked at rid {} arcs {:?}",
                            head.rid, head.arcs
                        )
                    })
                })
                .collect();
            return Err(SessionError::Deadlock(stuck.join("; ")));
        }
    }

    Ok(RunMetrics {
        app_threads: k,
        records: total,
        delivered_ops,
        dependence_stalls: stalls,
        versions_produced: versions.produced(),
        versions_consumed: versions.consumed(),
        violations,
        fingerprint: family.fingerprint(),
        ..RunMetrics::default()
    })
}

/// Delivers one replayed record to thread `t`'s lifeguard: produce/consume
/// version bookkeeping (§5.5), syscall range-table policing (§5.4), view
/// decoding and the handler call — the ingestion mirror of the simulator's
/// delivery path, minus accelerators and cycle accounting.
#[allow(clippy::too_many_arguments)] // the replay loop's split borrows
fn deliver_replayed(
    rec: &EventRecord,
    t: usize,
    lgs: &mut [Box<dyn Lifeguard>],
    range_table: &mut RangeTable,
    versions: &mut paralog_meta::VersionTable,
    ca_policy: &CaPolicy,
    violations: &mut Vec<Violation>,
    delivered_ops: &mut u64,
) {
    let lg = &mut lgs[t];
    let rid = rec.rid;
    for (vid, mem, consumers) in &rec.produce_versions {
        let range = mem.range();
        let snapshot = lg.snapshot_meta(range);
        versions.produce(*vid, range, snapshot, *consumers);
    }
    let versioned: Option<(AddrRange, Vec<u8>)> = rec.consume_version.and_then(|(vid, _)| {
        let got = versions.consume(vid);
        if got.is_none() {
            versions.bypass(vid);
        }
        got
    });
    match &rec.payload {
        EventPayload::Instr(instr) => {
            if let Some((mem, _)) = instr.mem_access() {
                if let Some(entry) = range_table.check(ThreadId(t as u16), mem.range()) {
                    let mut ctx = HandlerCtx::new();
                    lg.on_syscall_race(mem.range(), &entry, rid, &mut ctx);
                    violations.append(&mut ctx.violations);
                }
            }
            let op = match lg.spec().view {
                EventView::Dataflow => dataflow_view(instr),
                EventView::Check => check_view(instr),
            };
            if let Some(op) = op {
                let mut ctx = HandlerCtx::new();
                if let Some((range, bytes)) = &versioned {
                    if op
                        .mem_src()
                        .map(|m| range.overlaps(&m.range()))
                        .unwrap_or(false)
                    {
                        ctx.versioned = Some((*range, bytes.clone()));
                    }
                }
                lg.handle(&op, rid, &mut ctx);
                violations.append(&mut ctx.violations);
                *delivered_ops += 1;
            }
        }
        EventPayload::Ca(ca) => {
            let actions = ca_policy.actions(ca.what, ca.phase);
            if actions.track_range {
                match (ca.phase, ca.range) {
                    (CaPhase::Begin, Some(range)) => range_table.insert(ca.issuer, ca.what, range),
                    (CaPhase::End, _) => range_table.remove(ca.issuer),
                    _ => {}
                }
            }
            let own = ca.issuer.index() == t;
            let mut ctx = HandlerCtx::new();
            lg.handle_ca(ca, own, rid, &mut ctx);
            violations.append(&mut ctx.violations);
            *delivered_ops += 1;
        }
    }
}

/// The real-thread backend: one OS thread per stream, lock-free shared
/// metadata, order enforced purely by spinning on an atomic progress table.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedBackend;

impl Backend for ThreadedBackend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, plan: SessionPlan) -> Result<RunOutcome, SessionError> {
        let (streams, expected) = match plan.input {
            SourceInput::Workload(ref w) => {
                if plan.config.tso {
                    return Err(SessionError::Unsupported(
                        "the threaded backend replays SC captures only",
                    ));
                }
                // Capture the fully annotated streams deterministically; the
                // capture's fingerprint becomes the expected reference.
                let mut cfg = plan.config.clone();
                cfg.mode = MonitoringMode::Parallel;
                cfg.collect_streams = true;
                let metrics =
                    run_deterministic(w, &cfg, plan.factory.build(plan.heap), plan.shorthand)
                        .metrics;
                let streams = metrics.streams.expect("collect_streams was set");
                (streams, Some(metrics.fingerprint))
            }
            SourceInput::Streams(s) => (s, None),
        };
        if streams.is_empty() {
            return Err(SessionError::EmptySource);
        }
        if streams
            .iter()
            .flatten()
            .any(|r| r.consume_version.is_some())
        {
            return Err(SessionError::Unsupported(
                "the threaded backend replays SC captures only (stream carries TSO versions)",
            ));
        }
        let conc =
            plan.factory
                .concurrent(plan.heap, &streams)
                .ok_or(SessionError::Unsupported(
                    "lifeguard has no concurrent (Send + Sync) replay form",
                ))?;

        let progress = SharedProgressTable::new(streams.len());
        let arc_spins = AtomicU64::new(0);
        // Deadlock detection for malformed streams (arcs no producer ever
        // satisfies): a worker that spins while the global applied-record
        // count stays flat for a full grace window flags the run and every
        // worker bails out, instead of the scope hanging forever.
        let applied = AtomicU64::new(0);
        let deadlocked = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for (tid, stream) in streams.iter().enumerate() {
                let conc = &*conc;
                let progress = &progress;
                let arc_spins = &arc_spins;
                let applied = &applied;
                let deadlocked = &deadlocked;
                scope.spawn(move || {
                    for rec in stream {
                        // §5.2 enforcement: spin until every arc is satisfied.
                        for arc in &rec.arcs {
                            let mut spun = false;
                            let mut spins = 0u32;
                            let mut last_applied = applied.load(Ordering::Relaxed);
                            let mut flat_since: Option<std::time::Instant> = None;
                            while !progress.satisfies(arc.src, arc.src_rid) {
                                if deadlocked.load(Ordering::Relaxed) {
                                    return;
                                }
                                spun = true;
                                spins += 1;
                                if spins >= 1 << 14 {
                                    spins = 0;
                                    let now = applied.load(Ordering::Relaxed);
                                    if now != last_applied {
                                        last_applied = now;
                                        flat_since = None;
                                    } else {
                                        let t0 =
                                            *flat_since.get_or_insert_with(std::time::Instant::now);
                                        if t0.elapsed() > std::time::Duration::from_secs(2) {
                                            deadlocked.store(true, Ordering::Relaxed);
                                            return;
                                        }
                                    }
                                    std::thread::yield_now();
                                }
                                std::hint::spin_loop();
                            }
                            if spun {
                                arc_spins.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        conc.apply(ThreadId(tid as u16), rec);
                        progress.advertise(ThreadId(tid as u16), rec.rid);
                        applied.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        if deadlocked.load(Ordering::Relaxed) {
            return Err(SessionError::Deadlock(
                "threaded replay made no progress; a stream carries arcs its producer never \
                 satisfies"
                    .into(),
            ));
        }

        let mut violations = conc.violations();
        // Worker interleaving is scheduler-dependent; a canonical order keeps
        // the report deterministic.
        violations.sort_by_key(|v| (v.tid.0, v.rid.0));
        let total: u64 = streams.iter().map(|s| s.len() as u64).sum();
        Ok(RunOutcome {
            metrics: RunMetrics {
                app_threads: streams.len(),
                records: total,
                delivered_ops: total,
                dependence_stalls: arc_spins.load(Ordering::Relaxed),
                violations,
                fingerprint: conc.fingerprint(),
                reference_fingerprint: expected,
                ..RunMetrics::default()
            },
        })
    }
}
