//! Event sources: where a monitoring session's event streams come from.
//!
//! ParaLog's original harness hard-wired the built-in workload simulator as
//! the only producer of events. [`EventSource`] opens that seam: a session
//! can monitor
//!
//! * a simulated [`WorkloadSource`] (the classic co-simulated capture),
//! * a [`ReplaySource`] of pre-captured per-thread streams,
//! * a [`StreamingReplaySource`] decoding the codec wire form lazily from
//!   any `io::Read`, with bounded resident buffering, or
//! * a push feed — buffered ([`PushSource`]) or bounded/back-pressured
//!   ([`PushSource::bounded`]) — for online feeds and tests.
//!
//! # The streaming protocol
//!
//! Ingestion is *incremental*: a source resolves to one [`RecordStream`]
//! per monitored thread, and backends pull bounded batches on demand with
//! [`RecordStream::next_batch`]. Each pull returns one of three states:
//!
//! * [`StreamStatus::Yielded`] — at least one record was appended to the
//!   caller's buffer; pull again for more.
//! * [`StreamStatus::Blocked`] — nothing is available *yet*, but the
//!   producer is still alive (an online feed that has not caught up). The
//!   backend must keep the session parked — this is **not** a deadlock,
//!   and backends distinguish it from an unsatisfiable dependence arc.
//! * [`StreamStatus::Exhausted`] — the stream ended; no record will ever
//!   arrive again. Once every stream is exhausted, any record still gated
//!   on an unmet arc can never be released: *that* is reported as
//!   [`SessionError::Deadlock`] (a truncated or malformed capture).
//!
//! The contract is what makes ingestion online with bounded memory: a
//! backend holds at most one batch per thread, a decoding source holds at
//! most one transport chunk plus one partial record, and nobody ever
//! materializes a whole stream. `Exhausted`/`Blocked` are sticky per the
//! obvious reading: after `Exhausted`, every later pull returns
//! `Exhausted`; after `Blocked`, any state may follow.

use paralog_events::codec::{decode, DecodeError, StreamDecoder};
use paralog_events::{AddrRange, EventRecord, Instr, Rid};
use paralog_workloads::Workload;
use std::collections::VecDeque;
use std::fmt;
use std::io::Read;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

use super::SessionError;

/// Result of one [`RecordStream::next_batch`] pull.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    /// At least one record was appended to the caller's buffer.
    Yielded,
    /// No records are available yet; the producer may still supply more.
    Blocked,
    /// The stream is complete; no further records will ever arrive.
    Exhausted,
}

/// One monitored thread's incremental record stream (see the module docs
/// for the yielded/blocked/exhausted protocol).
///
/// Streams are `Send` so the real-thread backend can move each one into the
/// worker that owns it.
pub trait RecordStream: Send + fmt::Debug {
    /// Pulls up to `max` records, appending them to `out`.
    ///
    /// # Errors
    ///
    /// [`SessionError::MalformedStream`] when the underlying transport
    /// yields bytes that can never decode to a record (corruption, or a
    /// wire stream truncated mid-record).
    fn next_batch(
        &mut self,
        out: &mut Vec<EventRecord>,
        max: usize,
    ) -> Result<StreamStatus, SessionError>;

    /// Cumulative wire bytes consumed from the underlying transport so far.
    ///
    /// Already-materialized (raw) streams have no transport and report `0`,
    /// which is what makes the replay cycle model's transport phase vanish
    /// for raw captures while wire replays of the *same* capture charge the
    /// decode traffic (the analysis phase stays identical either way).
    fn transport_bytes(&self) -> u64 {
        0
    }
}

/// The concrete input an [`EventSource`] resolves to when the session runs.
#[derive(Debug)]
pub enum SourceInput {
    /// A workload to co-simulate: the application side runs under the
    /// deterministic machine model and produces events online.
    Workload(Workload),
    /// One incremental record stream per monitored thread.
    Streams(Vec<Box<dyn RecordStream>>),
}

impl SourceInput {
    /// Wraps already-materialized per-thread streams (each becomes a
    /// [`BufferedStream`]).
    pub fn from_buffered(streams: Vec<Vec<EventRecord>>) -> Self {
        SourceInput::Streams(
            streams
                .into_iter()
                .map(|s| Box::new(BufferedStream::new(s)) as Box<dyn RecordStream>)
                .collect(),
        )
    }
}

/// A producer of per-thread event streams for one monitoring session.
///
/// Implementations describe their shape (`thread_count`, `heap`) up front
/// and are consumed into a [`SourceInput`] when the session runs.
pub trait EventSource: fmt::Debug {
    /// Number of monitored application threads.
    fn thread_count(&self) -> usize;

    /// The monitored application's heap region (lifeguards like AddrCheck
    /// scope their checks to it).
    fn heap(&self) -> AddrRange;

    /// Resolves this source into concrete backend input.
    fn open(self: Box<Self>) -> SourceInput;
}

/// The built-in simulated application: events are captured online while the
/// workload executes on the modeled CMP.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    workload: Workload,
}

impl WorkloadSource {
    /// Wraps a workload.
    pub fn new(workload: Workload) -> Self {
        WorkloadSource { workload }
    }
}

impl From<&Workload> for WorkloadSource {
    fn from(w: &Workload) -> Self {
        WorkloadSource::new(w.clone())
    }
}

impl EventSource for WorkloadSource {
    fn thread_count(&self) -> usize {
        self.workload.thread_count()
    }

    fn heap(&self) -> AddrRange {
        self.workload.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Workload(self.workload)
    }
}

/// A `Workload` is itself a valid source (convenience, so
/// `builder().source(workload.clone())` reads naturally).
impl EventSource for Workload {
    fn thread_count(&self) -> usize {
        Workload::thread_count(self)
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Workload(*self)
    }
}

/// An already-materialized stream served through the incremental protocol:
/// yields bounded batches until drained, then reports `Exhausted`. The
/// adapter every buffered source ([`ReplaySource`], [`PushSource`], the
/// threaded backend's workload captures) reduces to.
#[derive(Debug)]
pub struct BufferedStream {
    records: VecDeque<EventRecord>,
}

impl BufferedStream {
    /// Wraps a materialized stream.
    pub fn new(records: Vec<EventRecord>) -> Self {
        BufferedStream {
            records: records.into(),
        }
    }
}

impl RecordStream for BufferedStream {
    fn next_batch(
        &mut self,
        out: &mut Vec<EventRecord>,
        max: usize,
    ) -> Result<StreamStatus, SessionError> {
        if self.records.is_empty() {
            return Ok(StreamStatus::Exhausted);
        }
        out.extend(self.records.drain(..max.min(self.records.len())));
        Ok(StreamStatus::Yielded)
    }
}

/// Replays pre-captured per-thread streams — externally captured logs
/// ingested by a lifeguard-only session (no application co-simulation).
///
/// This is the *buffered* convenience shape: the streams are materialized
/// up front and served through the incremental protocol as
/// [`BufferedStream`]s, so it shares every code path with — and is the
/// equivalence baseline for — [`StreamingReplaySource`].
#[derive(Debug, Clone)]
pub struct ReplaySource {
    streams: Vec<Vec<EventRecord>>,
    heap: AddrRange,
}

impl ReplaySource {
    /// Wraps per-thread streams captured earlier (e.g. a parallel run's
    /// [`RunMetrics::streams`](crate::RunMetrics)). `heap` is the monitored
    /// application's heap region.
    pub fn new(streams: Vec<Vec<EventRecord>>, heap: AddrRange) -> Self {
        ReplaySource { streams, heap }
    }

    /// Decodes one compressed stream per thread (the codec's wire form) and
    /// replays them.
    ///
    /// # Errors
    ///
    /// Returns the codec's [`DecodeError`] on corrupt or truncated input.
    pub fn from_encoded(encoded: &[Vec<u8>], heap: AddrRange) -> Result<Self, DecodeError> {
        let streams = encoded
            .iter()
            .map(|bytes| decode(bytes))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplaySource::new(streams, heap))
    }

    /// Total records across all threads.
    pub fn total_records(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }
}

impl EventSource for ReplaySource {
    fn thread_count(&self) -> usize {
        self.streams.len()
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::from_buffered(self.streams)
    }
}

/// Buffering statistics of a streaming source, shared with the handle the
/// caller kept (the source itself is consumed when the session runs).
#[derive(Debug, Default)]
pub struct SourceStats {
    peak_buffered: AtomicUsize,
}

impl SourceStats {
    /// High-water mark of bytes resident in any one stream's decode buffer
    /// — the quantity the configured chunk size bounds.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.peak_buffered.load(Ordering::Relaxed)
    }

    fn note(&self, buffered: usize) {
        self.peak_buffered.fetch_max(buffered, Ordering::Relaxed);
    }
}

/// Default transport chunk size for [`StreamingReplaySource`].
pub const DEFAULT_CHUNK_BYTES: usize = 8 * 1024;

/// Streams codec-encoded logs from arbitrary byte readers, decoding
/// incrementally — the genuinely *online* ingestion shape: a session can
/// monitor a log as it is produced (a file being appended, a socket, a
/// pipe), holding only one transport chunk plus one partial record per
/// thread in memory.
///
/// The memory cap is configurable via
/// [`with_chunk_bytes`](Self::with_chunk_bytes); the
/// [`stats`](Self::stats) handle reports the observed high-water mark so
/// tests (and operators) can verify residency stays within budget.
pub struct StreamingReplaySource {
    readers: Vec<Box<dyn Read + Send>>,
    heap: AddrRange,
    chunk_bytes: usize,
    stats: Arc<SourceStats>,
}

impl fmt::Debug for StreamingReplaySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StreamingReplaySource")
            .field("threads", &self.readers.len())
            .field("chunk_bytes", &self.chunk_bytes)
            .finish_non_exhaustive()
    }
}

impl StreamingReplaySource {
    /// One codec wire stream per monitored thread, each read lazily.
    pub fn new(readers: Vec<Box<dyn Read + Send>>, heap: AddrRange) -> Self {
        StreamingReplaySource {
            readers,
            heap,
            chunk_bytes: DEFAULT_CHUNK_BYTES,
            stats: Arc::new(SourceStats::default()),
        }
    }

    /// Convenience: streams served from in-memory encoded bytes (tests,
    /// benchmarks). The bytes are still decoded incrementally.
    pub fn from_encoded(encoded: Vec<Vec<u8>>, heap: AddrRange) -> Self {
        StreamingReplaySource::new(
            encoded
                .into_iter()
                .map(|bytes| Box::new(std::io::Cursor::new(bytes)) as Box<dyn Read + Send>)
                .collect(),
            heap,
        )
    }

    /// Sets the transport chunk size — the memory cap per stream is one
    /// chunk plus one partial record. Clamped to at least 16 bytes.
    #[must_use]
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes.max(16);
        self
    }

    /// The buffering-statistics handle (keep a clone before the session
    /// consumes the source).
    pub fn stats(&self) -> Arc<SourceStats> {
        Arc::clone(&self.stats)
    }
}

impl EventSource for StreamingReplaySource {
    fn thread_count(&self) -> usize {
        self.readers.len()
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        let chunk_bytes = self.chunk_bytes;
        let stats = self.stats;
        SourceInput::Streams(
            self.readers
                .into_iter()
                .map(|reader| {
                    Box::new(DecodingStream {
                        reader,
                        decoder: StreamDecoder::new(),
                        chunk: vec![0; chunk_bytes],
                        eof: false,
                        stats: Arc::clone(&stats),
                        wire_bytes: 0,
                    }) as Box<dyn RecordStream>
                })
                .collect(),
        )
    }
}

/// Incremental decode of one codec wire stream from a byte reader.
struct DecodingStream {
    reader: Box<dyn Read + Send>,
    decoder: StreamDecoder,
    /// Reusable transport chunk (its length is the configured cap).
    chunk: Vec<u8>,
    eof: bool,
    stats: Arc<SourceStats>,
    /// Cumulative wire bytes fed to the decoder (transport accounting).
    wire_bytes: u64,
}

impl fmt::Debug for DecodingStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodingStream")
            .field("records", &self.decoder.records())
            .field("eof", &self.eof)
            .finish_non_exhaustive()
    }
}

impl RecordStream for DecodingStream {
    fn next_batch(
        &mut self,
        out: &mut Vec<EventRecord>,
        max: usize,
    ) -> Result<StreamStatus, SessionError> {
        let start = out.len();
        loop {
            while out.len() - start < max {
                match self.decoder.next_record() {
                    Ok(Some(rec)) => out.push(rec),
                    Ok(None) => break,
                    Err(e) => return Err(SessionError::MalformedStream(e.to_string())),
                }
            }
            if out.len() - start >= max {
                return Ok(StreamStatus::Yielded);
            }
            if self.eof {
                return if out.len() > start {
                    Ok(StreamStatus::Yielded)
                } else if self.decoder.is_clean() {
                    Ok(StreamStatus::Exhausted)
                } else {
                    Err(SessionError::MalformedStream(
                        "wire stream ended mid-record (truncated transport)".into(),
                    ))
                };
            }
            // Refill one bounded transport chunk. A blocking reader blocks
            // here — from the session's view that *is* the producer wait.
            match self.reader.read(&mut self.chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    self.decoder.feed(&self.chunk[..n]);
                    self.wire_bytes += n as u64;
                    self.stats.note(self.decoder.buffered());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Non-blocking transports surface the producer wait
                    // explicitly.
                    return if out.len() > start {
                        Ok(StreamStatus::Yielded)
                    } else {
                        Ok(StreamStatus::Blocked)
                    };
                }
                Err(e) => {
                    return Err(SessionError::MalformedStream(format!(
                        "wire stream read failed: {e}"
                    )))
                }
            }
        }
    }

    fn transport_bytes(&self) -> u64 {
        self.wire_bytes
    }
}

/// A programmatic push-style source for online feeds: callers append records
/// (or let the source assign stream positions for bare instructions) and the
/// accumulated streams are monitored when the session runs.
///
/// This buffered shape is convenient for tests and small feeds. For a
/// genuinely online feed with back-pressure — the producer runs on its own
/// thread and is throttled when the monitor falls behind — use
/// [`PushSource::bounded`].
#[derive(Debug, Clone)]
pub struct PushSource {
    streams: Vec<Vec<EventRecord>>,
    next_rid: Vec<u64>,
    heap: AddrRange,
}

impl PushSource {
    /// An empty source for `threads` streams over the given heap region.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, heap: AddrRange) -> Self {
        assert!(threads > 0, "a push source needs at least one stream");
        PushSource {
            streams: vec![Vec::new(); threads],
            next_rid: vec![0; threads],
            heap,
        }
    }

    /// A bounded, back-pressured push channel: the [`PushFeed`] half lives
    /// with the producer (any thread), the [`LivePushSource`] half is given
    /// to the session. At most `capacity` records per thread are ever in
    /// flight — [`PushFeed::push`] blocks (and [`PushFeed::try_push`]
    /// refuses) while the monitor is `capacity` records behind, so a slow
    /// monitor throttles its producer instead of buffering without bound.
    /// Dropping the feed (or [`PushFeed::close`]) ends the streams.
    ///
    /// # Panics
    ///
    /// Panics if `threads` or `capacity` is zero.
    pub fn bounded(threads: usize, heap: AddrRange, capacity: usize) -> (PushFeed, LivePushSource) {
        assert!(threads > 0, "a push source needs at least one stream");
        assert!(capacity > 0, "a bounded push feed needs capacity");
        let mut txs = Vec::with_capacity(threads);
        let mut rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
            txs.push(Some(tx));
            rxs.push(rx);
        }
        (
            PushFeed {
                txs,
                next_rid: vec![0; threads],
            },
            LivePushSource { rxs, heap },
        )
    }

    /// Appends a fully-formed record (the caller controls rids, arcs and
    /// annotations) to thread `tid`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn push(&mut self, tid: usize, rec: EventRecord) {
        self.next_rid[tid] = self.next_rid[tid].max(rec.rid.0);
        self.streams[tid].push(rec);
    }

    /// Appends a bare instruction at the next stream position of thread
    /// `tid`, returning the assigned record id (useful as an arc target).
    pub fn emit(&mut self, tid: usize, instr: Instr) -> Rid {
        self.next_rid[tid] += 1;
        let rid = Rid(self.next_rid[tid]);
        self.streams[tid].push(EventRecord::instr(rid, instr));
        rid
    }

    /// Records pushed so far across all threads.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSource for PushSource {
    fn thread_count(&self) -> usize {
        self.streams.len()
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::from_buffered(self.streams)
    }
}

/// A record refused by [`PushFeed::try_push`], handed back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushRefused {
    /// The thread's channel is at capacity (monitor behind): back-pressure.
    Full(EventRecord),
    /// The session ended (or the stream was closed); the feed is dead.
    Closed(EventRecord),
}

/// The producer half of [`PushSource::bounded`]: lives on the producer's
/// thread and blocks when the monitor falls a full channel behind.
#[derive(Debug)]
pub struct PushFeed {
    txs: Vec<Option<SyncSender<EventRecord>>>,
    next_rid: Vec<u64>,
}

// Refused records are handed back by value, like `SyncSender::send`'s
// `SendError<T>` — the producer decides whether to retry or drop.
#[allow(clippy::result_large_err)]
impl PushFeed {
    /// Sends a fully-formed record to thread `tid`'s stream, blocking while
    /// the channel is at capacity.
    ///
    /// # Errors
    ///
    /// Hands the record back when the consuming session is gone (or the
    /// stream was [`close_thread`](Self::close_thread)d).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn push(&mut self, tid: usize, rec: EventRecord) -> Result<(), EventRecord> {
        let rid = rec.rid.0;
        let sent = match &self.txs[tid] {
            Some(tx) => tx.send(rec).map_err(|e| e.0),
            None => Err(rec),
        };
        if sent.is_ok() {
            // Only delivered records advance the id sequence, so a refused
            // record never leaves a rid gap behind.
            self.next_rid[tid] = self.next_rid[tid].max(rid);
        }
        sent
    }

    /// Non-blocking [`push`](Self::push): refuses instead of waiting when
    /// the channel is full.
    ///
    /// # Errors
    ///
    /// [`PushRefused::Full`] while back-pressured, [`PushRefused::Closed`]
    /// when the consuming session is gone.
    pub fn try_push(&mut self, tid: usize, rec: EventRecord) -> Result<(), PushRefused> {
        let Some(tx) = &self.txs[tid] else {
            return Err(PushRefused::Closed(rec));
        };
        let rid = rec.rid.0;
        match tx.try_send(rec) {
            Ok(()) => {
                self.next_rid[tid] = self.next_rid[tid].max(rid);
                Ok(())
            }
            Err(TrySendError::Full(rec)) => Err(PushRefused::Full(rec)),
            Err(TrySendError::Disconnected(rec)) => Err(PushRefused::Closed(rec)),
        }
    }

    /// Sends a bare instruction at the next stream position of thread
    /// `tid`, returning the assigned record id (useful as an arc target).
    /// Blocks while back-pressured.
    ///
    /// # Errors
    ///
    /// The assigned id is lost if the session is gone; the record is handed
    /// back.
    pub fn emit(&mut self, tid: usize, instr: Instr) -> Result<Rid, EventRecord> {
        let rid = Rid(self.next_rid[tid] + 1);
        self.push(tid, EventRecord::instr(rid, instr))?;
        Ok(rid)
    }

    /// Ends thread `tid`'s stream (subsequent pulls report `Exhausted` once
    /// drained). Idempotent.
    pub fn close_thread(&mut self, tid: usize) {
        self.txs[tid] = None;
    }

    /// Ends every stream. Dropping the feed has the same effect.
    pub fn close(mut self) {
        for tx in &mut self.txs {
            *tx = None;
        }
    }
}

/// The session half of [`PushSource::bounded`].
#[derive(Debug)]
pub struct LivePushSource {
    rxs: Vec<Receiver<EventRecord>>,
    heap: AddrRange,
}

impl EventSource for LivePushSource {
    fn thread_count(&self) -> usize {
        self.rxs.len()
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Streams(
            self.rxs
                .into_iter()
                .map(|rx| Box::new(ChannelStream { rx }) as Box<dyn RecordStream>)
                .collect(),
        )
    }
}

/// One bounded channel as an incremental stream: drains whatever is ready,
/// reports `Blocked` while the producer holds the feed open and `Exhausted`
/// once it hung up.
struct ChannelStream {
    rx: Receiver<EventRecord>,
}

impl fmt::Debug for ChannelStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChannelStream").finish_non_exhaustive()
    }
}

impl RecordStream for ChannelStream {
    fn next_batch(
        &mut self,
        out: &mut Vec<EventRecord>,
        max: usize,
    ) -> Result<StreamStatus, SessionError> {
        use std::sync::mpsc::TryRecvError;
        let start = out.len();
        while out.len() - start < max {
            match self.rx.try_recv() {
                Ok(rec) => out.push(rec),
                Err(TryRecvError::Empty) => {
                    return Ok(if out.len() > start {
                        StreamStatus::Yielded
                    } else {
                        StreamStatus::Blocked
                    });
                }
                Err(TryRecvError::Disconnected) => {
                    return Ok(if out.len() > start {
                        StreamStatus::Yielded
                    } else {
                        StreamStatus::Exhausted
                    });
                }
            }
        }
        Ok(StreamStatus::Yielded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::codec::encode;
    use paralog_events::{MemRef, Reg};

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    fn drain(stream: &mut dyn RecordStream, max: usize) -> (Vec<EventRecord>, StreamStatus) {
        let mut out = Vec::new();
        loop {
            let before = out.len();
            match stream.next_batch(&mut out, max).unwrap() {
                StreamStatus::Yielded => {
                    assert!(out.len() > before, "Yielded must append records")
                }
                status => return (out, status),
            }
        }
    }

    #[test]
    fn push_source_assigns_rids() {
        let mut src = PushSource::new(2, HEAP);
        assert!(src.is_empty());
        let r1 = src.emit(
            0,
            Instr::Load {
                dst: Reg::new(0),
                src: MemRef::new(0x100, 4),
            },
        );
        let r2 = src.emit(0, Instr::Nop);
        assert_eq!((r1, r2), (Rid(1), Rid(2)));
        src.push(1, EventRecord::instr(Rid(7), Instr::Nop));
        let r8 = src.emit(1, Instr::Nop);
        assert_eq!(r8, Rid(8), "emit continues after explicit rids");
        assert_eq!(src.len(), 4);
        match Box::new(src).open() {
            SourceInput::Streams(mut s) => {
                assert_eq!(s.len(), 2);
                let (recs, status) = drain(s[0].as_mut(), 16);
                assert_eq!(recs.len(), 2);
                assert_eq!(status, StreamStatus::Exhausted);
            }
            SourceInput::Workload(_) => panic!("push source opens to streams"),
        }
    }

    #[test]
    fn replay_source_decodes_codec_streams() {
        let stream = vec![
            EventRecord::instr(
                Rid(1),
                Instr::Store {
                    dst: MemRef::new(0x2000, 4),
                    src: Reg::new(1),
                },
            ),
            EventRecord::instr(Rid(2), Instr::Nop),
        ];
        let encoded = vec![encode(&stream)];
        let src = ReplaySource::from_encoded(&encoded, HEAP).unwrap();
        assert_eq!(src.thread_count(), 1);
        assert_eq!(src.total_records(), 2);
        match Box::new(src).open() {
            SourceInput::Streams(mut s) => {
                let (recs, status) = drain(s[0].as_mut(), 1);
                assert_eq!(recs, stream);
                assert_eq!(status, StreamStatus::Exhausted);
            }
            SourceInput::Workload(_) => panic!("replay source opens to streams"),
        }
        assert!(ReplaySource::from_encoded(&[vec![0x00, 0x0f]], HEAP).is_err());
    }

    #[test]
    fn buffered_stream_respects_batch_bound() {
        let recs: Vec<EventRecord> = (1..=10)
            .map(|i| EventRecord::instr(Rid(i), Instr::Nop))
            .collect();
        let mut s = BufferedStream::new(recs.clone());
        let mut out = Vec::new();
        assert_eq!(s.next_batch(&mut out, 4).unwrap(), StreamStatus::Yielded);
        assert_eq!(out.len(), 4);
        let (rest, status) = drain(&mut s, 4);
        assert_eq!(rest.len(), 6);
        assert_eq!(status, StreamStatus::Exhausted);
        assert_eq!(
            s.next_batch(&mut out, 4).unwrap(),
            StreamStatus::Exhausted,
            "exhausted is sticky"
        );
    }

    #[test]
    fn streaming_replay_decodes_lazily_within_cap() {
        let stream: Vec<EventRecord> = (0..500)
            .map(|i| {
                EventRecord::instr(
                    Rid(i + 1),
                    Instr::Load {
                        dst: Reg::new(0),
                        src: MemRef::new(0x1000 + i * 4, 4),
                    },
                )
            })
            .collect();
        let encoded = encode(&stream);
        let src = StreamingReplaySource::from_encoded(vec![encoded], HEAP).with_chunk_bytes(64);
        let stats = src.stats();
        match Box::new(src).open() {
            SourceInput::Streams(mut s) => {
                let (recs, status) = drain(s[0].as_mut(), 32);
                assert_eq!(recs, stream);
                assert_eq!(status, StreamStatus::Exhausted);
            }
            SourceInput::Workload(_) => panic!("streams"),
        }
        assert!(
            stats.peak_buffered_bytes() <= 2 * 64,
            "resident bytes {} exceed the configured cap",
            stats.peak_buffered_bytes()
        );
    }

    #[test]
    fn streaming_replay_flags_truncated_wire() {
        let stream = vec![EventRecord::instr(
            Rid(1),
            Instr::Load {
                dst: Reg::new(0),
                src: MemRef::new(0x12345, 4),
            },
        )];
        let mut encoded = encode(&stream);
        encoded.truncate(encoded.len() - 1);
        let src = StreamingReplaySource::from_encoded(vec![encoded], HEAP);
        match Box::new(src).open() {
            SourceInput::Streams(mut s) => {
                let mut out = Vec::new();
                let err = s[0].next_batch(&mut out, 16).unwrap_err();
                assert!(matches!(err, SessionError::MalformedStream(_)));
            }
            SourceInput::Workload(_) => panic!("streams"),
        }
    }

    #[test]
    fn bounded_push_feed_backpressures_and_closes() {
        let (mut feed, source) = PushSource::bounded(1, HEAP, 2);
        assert!(feed
            .try_push(0, EventRecord::instr(Rid(1), Instr::Nop))
            .is_ok());
        assert!(feed
            .try_push(0, EventRecord::instr(Rid(2), Instr::Nop))
            .is_ok());
        match feed.try_push(0, EventRecord::instr(Rid(3), Instr::Nop)) {
            Err(PushRefused::Full(rec)) => assert_eq!(rec.rid, Rid(3)),
            other => panic!("expected back-pressure, got {other:?}"),
        }
        let SourceInput::Streams(mut streams) = Box::new(source).open() else {
            panic!("streams");
        };
        let mut out = Vec::new();
        assert_eq!(
            streams[0].next_batch(&mut out, 16).unwrap(),
            StreamStatus::Yielded
        );
        assert_eq!(out.len(), 2);
        // Producer still holds the feed: blocked, not exhausted.
        assert_eq!(
            streams[0].next_batch(&mut out, 16).unwrap(),
            StreamStatus::Blocked
        );
        assert_eq!(feed.emit(0, Instr::Nop), Ok(Rid(3)));
        feed.close();
        let (recs, status) = drain(streams[0].as_mut(), 16);
        assert_eq!(recs.len(), 1);
        assert_eq!(status, StreamStatus::Exhausted);
    }
}
