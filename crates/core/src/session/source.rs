//! Event sources: where a monitoring session's event streams come from.
//!
//! ParaLog's original harness hard-wired the built-in workload simulator as
//! the only producer of events. [`EventSource`] opens that seam: a session
//! can monitor
//!
//! * a simulated [`WorkloadSource`] (the classic co-simulated capture),
//! * a [`ReplaySource`] of pre-captured per-thread streams — the host-side
//!   deployment shape where logs were captured elsewhere (or earlier) and
//!   are ingested online, optionally straight from the compressed codec
//!   representation, or
//! * a [`PushSource`] fed programmatically, record by record, for online
//!   feeds and tests.

use paralog_events::codec::{decode, DecodeError};
use paralog_events::{AddrRange, EventRecord, Instr, Rid};
use paralog_workloads::Workload;
use std::fmt;

/// The concrete input an [`EventSource`] resolves to when the session runs.
#[derive(Debug)]
pub enum SourceInput {
    /// A workload to co-simulate: the application side runs under the
    /// deterministic machine model and produces events online.
    Workload(Workload),
    /// Pre-captured per-thread event streams (records with arcs and TSO
    /// annotations already attached).
    Streams(Vec<Vec<EventRecord>>),
}

/// A producer of per-thread event streams for one monitoring session.
///
/// Implementations describe their shape (`thread_count`, `heap`) up front
/// and are consumed into a [`SourceInput`] when the session runs.
pub trait EventSource: fmt::Debug {
    /// Number of monitored application threads.
    fn thread_count(&self) -> usize;

    /// The monitored application's heap region (lifeguards like AddrCheck
    /// scope their checks to it).
    fn heap(&self) -> AddrRange;

    /// Resolves this source into concrete backend input.
    fn open(self: Box<Self>) -> SourceInput;
}

/// The built-in simulated application: events are captured online while the
/// workload executes on the modeled CMP.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    workload: Workload,
}

impl WorkloadSource {
    /// Wraps a workload.
    pub fn new(workload: Workload) -> Self {
        WorkloadSource { workload }
    }
}

impl From<&Workload> for WorkloadSource {
    fn from(w: &Workload) -> Self {
        WorkloadSource::new(w.clone())
    }
}

impl EventSource for WorkloadSource {
    fn thread_count(&self) -> usize {
        self.workload.thread_count()
    }

    fn heap(&self) -> AddrRange {
        self.workload.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Workload(self.workload)
    }
}

/// A `Workload` is itself a valid source (convenience, so
/// `builder().source(workload.clone())` reads naturally).
impl EventSource for Workload {
    fn thread_count(&self) -> usize {
        Workload::thread_count(self)
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Workload(*self)
    }
}

/// Replays pre-captured per-thread streams — externally captured logs
/// ingested by a lifeguard-only session (no application co-simulation).
#[derive(Debug, Clone)]
pub struct ReplaySource {
    streams: Vec<Vec<EventRecord>>,
    heap: AddrRange,
}

impl ReplaySource {
    /// Wraps per-thread streams captured earlier (e.g. a parallel run's
    /// [`RunMetrics::streams`](crate::RunMetrics)). `heap` is the monitored
    /// application's heap region.
    pub fn new(streams: Vec<Vec<EventRecord>>, heap: AddrRange) -> Self {
        ReplaySource { streams, heap }
    }

    /// Decodes one compressed stream per thread (the codec's wire form) and
    /// replays them.
    ///
    /// # Errors
    ///
    /// Returns the codec's [`DecodeError`] on corrupt or truncated input.
    pub fn from_encoded(encoded: &[Vec<u8>], heap: AddrRange) -> Result<Self, DecodeError> {
        let streams = encoded
            .iter()
            .map(|bytes| decode(bytes))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ReplaySource::new(streams, heap))
    }

    /// Total records across all threads.
    pub fn total_records(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }
}

impl EventSource for ReplaySource {
    fn thread_count(&self) -> usize {
        self.streams.len()
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Streams(self.streams)
    }
}

/// A programmatic push-style source for online feeds: callers append records
/// (or let the source assign stream positions for bare instructions) and the
/// accumulated streams are monitored when the session runs.
#[derive(Debug, Clone)]
pub struct PushSource {
    streams: Vec<Vec<EventRecord>>,
    next_rid: Vec<u64>,
    heap: AddrRange,
}

impl PushSource {
    /// An empty source for `threads` streams over the given heap region.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize, heap: AddrRange) -> Self {
        assert!(threads > 0, "a push source needs at least one stream");
        PushSource {
            streams: vec![Vec::new(); threads],
            next_rid: vec![0; threads],
            heap,
        }
    }

    /// Appends a fully-formed record (the caller controls rids, arcs and
    /// annotations) to thread `tid`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn push(&mut self, tid: usize, rec: EventRecord) {
        self.next_rid[tid] = self.next_rid[tid].max(rec.rid.0);
        self.streams[tid].push(rec);
    }

    /// Appends a bare instruction at the next stream position of thread
    /// `tid`, returning the assigned record id (useful as an arc target).
    pub fn emit(&mut self, tid: usize, instr: Instr) -> Rid {
        self.next_rid[tid] += 1;
        let rid = Rid(self.next_rid[tid]);
        self.streams[tid].push(EventRecord::instr(rid, instr));
        rid
    }

    /// Records pushed so far across all threads.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSource for PushSource {
    fn thread_count(&self) -> usize {
        self.streams.len()
    }

    fn heap(&self) -> AddrRange {
        self.heap
    }

    fn open(self: Box<Self>) -> SourceInput {
        SourceInput::Streams(self.streams)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::codec::encode;
    use paralog_events::{MemRef, Reg};

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    #[test]
    fn push_source_assigns_rids() {
        let mut src = PushSource::new(2, HEAP);
        assert!(src.is_empty());
        let r1 = src.emit(
            0,
            Instr::Load {
                dst: Reg::new(0),
                src: MemRef::new(0x100, 4),
            },
        );
        let r2 = src.emit(0, Instr::Nop);
        assert_eq!((r1, r2), (Rid(1), Rid(2)));
        src.push(1, EventRecord::instr(Rid(7), Instr::Nop));
        let r8 = src.emit(1, Instr::Nop);
        assert_eq!(r8, Rid(8), "emit continues after explicit rids");
        assert_eq!(src.len(), 4);
        match Box::new(src).open() {
            SourceInput::Streams(s) => assert_eq!(s[0].len(), 2),
            SourceInput::Workload(_) => panic!("push source opens to streams"),
        }
    }

    #[test]
    fn replay_source_decodes_codec_streams() {
        let stream = vec![
            EventRecord::instr(
                Rid(1),
                Instr::Store {
                    dst: MemRef::new(0x2000, 4),
                    src: Reg::new(1),
                },
            ),
            EventRecord::instr(Rid(2), Instr::Nop),
        ];
        let encoded = vec![encode(&stream)];
        let src = ReplaySource::from_encoded(&encoded, HEAP).unwrap();
        assert_eq!(src.thread_count(), 1);
        assert_eq!(src.total_records(), 2);
        match Box::new(src).open() {
            SourceInput::Streams(s) => assert_eq!(s[0], stream),
            SourceInput::Workload(_) => panic!("replay source opens to streams"),
        }
        assert!(ReplaySource::from_encoded(&[vec![0x00, 0x0f]], HEAP).is_err());
    }
}
