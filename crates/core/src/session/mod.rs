//! The composable monitoring-session API.
//!
//! [`MonitorSession`] replaces the closed `Platform::run(workload, config)`
//! batch call with a builder over three pluggable seams:
//!
//! * **event sources** ([`EventSource`]) — the simulated workload, replay of
//!   pre-captured streams (buffered, or decoded incrementally from the codec
//!   wire form with bounded memory via [`StreamingReplaySource`]), or a
//!   programmatic push feed (buffered, or bounded and back-pressured).
//!   Sources resolve to per-thread [`RecordStream`]s pulled batch-by-batch —
//!   see [`source`](module@crate::session::source) for the
//!   yielded/blocked/exhausted protocol;
//! * **backends** ([`Backend`]) — the deterministic discrete-event simulator
//!   or the real-thread executor;
//! * **lifeguards** — any [`LifeguardFactory`], resolved directly, by
//!   registry name, or via the [`LifeguardKind`] shorthand for the four
//!   bundled analyses.
//!
//! This is ParaLog's §3 porting claim made concrete: an out-of-tree analysis
//! implements [`Lifeguard`](paralog_lifeguards::Lifeguard) plus a factory
//! and runs unmodified on every source × backend combination.
//!
//! # Example
//!
//! ```rust
//! use paralog_core::session::MonitorSession;
//! use paralog_lifeguards::LifeguardKind;
//! use paralog_workloads::{Benchmark, WorkloadSpec};
//!
//! let workload = WorkloadSpec::benchmark(Benchmark::Lu, 2).scale(0.02).build();
//! let outcome = MonitorSession::builder()
//!     .source(workload)
//!     .lifeguard(LifeguardKind::TaintCheck)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert!(outcome.metrics.records > 0);
//! ```

mod backend;
pub mod coop;
pub mod fault;
pub mod source;

pub use backend::{Backend, BackendMode, DeterministicBackend, ThreadedBackend};
pub use fault::FaultyReader;
pub use source::{
    BufferedStream, EventSource, LivePushSource, PushFeed, PushRefused, PushSource, RecordStream,
    ReplaySource, SourceInput, SourceStats, StreamStatus, StreamingReplaySource, WorkloadSource,
    DEFAULT_CHUNK_BYTES,
};

pub(crate) use backend::run_platform;

use crate::config::MonitorConfig;
use crate::platform::RunOutcome;
use paralog_events::AddrRange;
use paralog_lifeguards::{
    LifeguardFactory, LifeguardKind, LifeguardRegistry, SessionEvent, SessionEventObserver,
};
use std::fmt;
use std::sync::Arc;

/// Why a session could not be built or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The builder was finalized without an event source.
    MissingSource,
    /// A lifeguard name did not resolve in the session's registry.
    UnknownLifeguard(String),
    /// The source resolved to zero streams.
    EmptySource,
    /// The chosen backend cannot run this plan.
    Unsupported(&'static str),
    /// Stream ingestion wedged: every stream is exhausted, yet some
    /// dependence arc can never be satisfied (a truncated or malformed
    /// capture). A stream merely *blocked on its producer* is not a
    /// deadlock — backends keep waiting in that case.
    Deadlock(String),
    /// A streaming source produced bytes that can never decode to a record
    /// (corrupt wire data, a transport truncated mid-record, or a failing
    /// reader).
    MalformedStream(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::MissingSource => f.write_str("session has no event source"),
            SessionError::UnknownLifeguard(name) => {
                write!(f, "no lifeguard named {name:?} is registered")
            }
            SessionError::EmptySource => f.write_str("event source resolved to zero streams"),
            SessionError::Unsupported(what) => write!(f, "unsupported: {what}"),
            SessionError::Deadlock(detail) => {
                write!(f, "stream ingestion deadlocked: {detail}")
            }
            SessionError::MalformedStream(detail) => {
                write!(f, "malformed event stream: {detail}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// A fully resolved session handed to a [`Backend`].
pub struct SessionPlan {
    /// Run configuration (mode, machine, accelerator and capture knobs).
    pub config: MonitorConfig,
    /// Builds the analysis for this run.
    pub factory: Arc<dyn LifeguardFactory>,
    /// Bundled-analysis shorthand, when the factory is one ( enables the
    /// in-line sequential reference for equivalence checking).
    pub shorthand: Option<LifeguardKind>,
    /// The monitored application's heap region.
    pub heap: AddrRange,
    /// Resolved source input.
    pub input: SourceInput,
    /// Incremental [`SessionEvent`] receiver, installed on the concurrent
    /// lifeguard before replay starts so long-lived sessions surface
    /// degradation (e.g. `DegradedPrecision`) *while running* rather than
    /// only in `RunMetrics::events` at the end. Backends without a
    /// concurrent form ignore it (their runs are batch-shaped anyway).
    pub observer: Option<SessionEventObserver>,
    /// How real-thread replay applies records (CAS-per-access vs
    /// delta-merge); [`BackendMode::Auto`] defers to the factory's measured
    /// preference. The deterministic backend ignores it.
    pub mode: BackendMode,
}

impl fmt::Debug for SessionPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SessionPlan")
            .field("lifeguard", &self.factory.name())
            .field("mode", &self.config.mode)
            .field("heap", &self.heap)
            .finish_non_exhaustive()
    }
}

/// One composed monitoring run: source × backend × lifeguard × config.
pub struct MonitorSession {
    source: Box<dyn EventSource>,
    backend: Box<dyn Backend>,
    factory: Arc<dyn LifeguardFactory>,
    shorthand: Option<LifeguardKind>,
    config: MonitorConfig,
    observer: Option<SessionEventObserver>,
    mode: BackendMode,
}

impl fmt::Debug for MonitorSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorSession")
            .field("source", &self.source)
            .field("backend", &self.backend.name())
            .field("lifeguard", &self.factory.name())
            .field("mode", &self.config.mode)
            .finish_non_exhaustive()
    }
}

impl MonitorSession {
    /// Starts composing a session.
    pub fn builder() -> MonitorSessionBuilder {
        MonitorSessionBuilder::default()
    }

    /// Runs the session to completion on its backend.
    ///
    /// # Errors
    ///
    /// Propagates the backend's [`SessionError`] (unsupported plan shapes,
    /// malformed input streams).
    pub fn run(self) -> Result<RunOutcome, SessionError> {
        let heap = self.source.heap();
        let plan = SessionPlan {
            config: self.config,
            factory: self.factory,
            shorthand: self.shorthand,
            heap,
            input: self.source.open(),
            observer: self.observer,
            mode: self.mode,
        };
        self.backend.run(plan)
    }
}

/// How the builder was asked to pick the analysis.
#[derive(Debug, Default)]
enum LifeguardChoice {
    /// Fall back to `config.lifeguard` (the shim path).
    #[default]
    FromConfig,
    Kind(LifeguardKind),
    Named(String),
    Factory(Arc<dyn LifeguardFactory>),
}

/// Builder for [`MonitorSession`].
#[derive(Default)]
pub struct MonitorSessionBuilder {
    source: Option<Box<dyn EventSource>>,
    backend: Option<Box<dyn Backend>>,
    registry: Option<LifeguardRegistry>,
    choice: LifeguardChoice,
    config: Option<MonitorConfig>,
    observer: Option<SessionEventObserver>,
    mode: BackendMode,
}

impl fmt::Debug for MonitorSessionBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorSessionBuilder")
            .field("source", &self.source)
            .field("choice", &self.choice)
            .field("observer", &self.observer.as_ref().map(|_| "installed"))
            .finish_non_exhaustive()
    }
}

impl MonitorSessionBuilder {
    /// Sets the event source (required).
    #[must_use]
    pub fn source(mut self, source: impl EventSource + 'static) -> Self {
        self.source = Some(Box::new(source));
        self
    }

    /// Sets the backend (default: [`DeterministicBackend`]).
    #[must_use]
    pub fn backend(mut self, backend: impl Backend + 'static) -> Self {
        self.backend = Some(Box::new(backend));
        self
    }

    /// Selects a bundled analysis by shorthand.
    #[must_use]
    pub fn lifeguard(mut self, kind: LifeguardKind) -> Self {
        self.choice = LifeguardChoice::Kind(kind);
        self
    }

    /// Resolves the analysis by name in the session's registry at `build`
    /// time (builtins plus anything added via [`Self::registry`]).
    #[must_use]
    pub fn lifeguard_named(mut self, name: impl Into<String>) -> Self {
        self.choice = LifeguardChoice::Named(name.into());
        self
    }

    /// Uses an explicit factory (out-of-tree analyses can skip the registry
    /// entirely).
    #[must_use]
    pub fn lifeguard_factory(mut self, factory: impl LifeguardFactory + 'static) -> Self {
        self.choice = LifeguardChoice::Factory(Arc::new(factory));
        self
    }

    /// Sets how real-thread replay applies records (default:
    /// [`BackendMode::Auto`] — the factory's measured per-thread-count
    /// preference). [`BackendMode::DeltaMerge`] on a lifeguard without a
    /// delta form fails the run with [`SessionError::Unsupported`]; `Auto`
    /// falls back to CAS-per-access silently. The deterministic backend
    /// ignores the knob.
    #[must_use]
    pub fn backend_mode(mut self, mode: BackendMode) -> Self {
        self.mode = mode;
        self
    }

    /// Supplies the registry used for name resolution (default:
    /// [`LifeguardRegistry::builtin`]).
    #[must_use]
    pub fn registry(mut self, registry: LifeguardRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Sets the run configuration (default: parallel monitoring with the
    /// paper's knobs). `config.lifeguard` is only consulted when no explicit
    /// lifeguard was chosen.
    #[must_use]
    pub fn config(mut self, config: MonitorConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Installs an incremental [`SessionEvent`] observer: `f` is invoked
    /// from inside the run, at the moment an event (e.g.
    /// [`SessionEvent::DegradedPrecision`]) first fires, instead of the
    /// event surfacing only in `RunMetrics::events` after the session ends.
    /// Long-lived sessions (the `paralogd` daemon's live feed) subscribe
    /// here.
    ///
    /// `f` may be called from any replay worker thread and must be cheap
    /// and non-blocking — hand the event to a channel or atomic flag, do
    /// not take locks the session also takes. Events still appear in
    /// `RunMetrics::events` regardless.
    #[must_use]
    pub fn on_session_event<F>(mut self, f: F) -> Self
    where
        F: Fn(&SessionEvent) + Send + Sync + 'static,
    {
        self.observer = Some(Arc::new(f));
        self
    }

    /// Finalizes the session.
    ///
    /// # Errors
    ///
    /// [`SessionError::MissingSource`] without a source,
    /// [`SessionError::UnknownLifeguard`] when a name does not resolve.
    pub fn build(self) -> Result<MonitorSession, SessionError> {
        let source = self.source.ok_or(SessionError::MissingSource)?;
        let config = self.config.unwrap_or_else(|| {
            MonitorConfig::new(
                crate::config::MonitoringMode::Parallel,
                LifeguardKind::TaintCheck,
            )
        });
        let (factory, shorthand): (Arc<dyn LifeguardFactory>, Option<LifeguardKind>) =
            match self.choice {
                LifeguardChoice::FromConfig => (Arc::new(config.lifeguard), Some(config.lifeguard)),
                LifeguardChoice::Kind(kind) => (Arc::new(kind), Some(kind)),
                LifeguardChoice::Named(name) => {
                    let registry = self.registry.unwrap_or_default();
                    let factory = registry
                        .get(&name)
                        .ok_or(SessionError::UnknownLifeguard(name))?;
                    // Only the factory itself knows whether it is a bundled
                    // analysis — a custom factory shadowing a bundled *name*
                    // must not inherit that analysis' sequential reference.
                    let shorthand = factory.builtin_kind();
                    (factory, shorthand)
                }
                LifeguardChoice::Factory(factory) => {
                    let shorthand = factory.builtin_kind();
                    (factory, shorthand)
                }
            };
        Ok(MonitorSession {
            source,
            backend: self.backend.unwrap_or(Box::new(DeterministicBackend)),
            factory,
            shorthand,
            config,
            observer: self.observer,
            mode: self.mode,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_workloads::{Benchmark, WorkloadSpec};

    #[test]
    fn builder_requires_a_source() {
        assert_eq!(
            MonitorSession::builder().build().err(),
            Some(SessionError::MissingSource)
        );
    }

    #[test]
    fn unknown_name_is_reported() {
        let w = WorkloadSpec::benchmark(Benchmark::Lu, 1)
            .scale(0.01)
            .build();
        let err = MonitorSession::builder()
            .source(w)
            .lifeguard_named("NoSuchAnalysis")
            .build()
            .err();
        assert_eq!(
            err,
            Some(SessionError::UnknownLifeguard("NoSuchAnalysis".into()))
        );
    }

    #[test]
    fn named_builtin_matches_kind_shorthand() {
        let w = WorkloadSpec::benchmark(Benchmark::Lu, 2)
            .scale(0.02)
            .build();
        let by_kind = MonitorSession::builder()
            .source(w.clone())
            .lifeguard(LifeguardKind::AddrCheck)
            .build()
            .unwrap()
            .run()
            .unwrap();
        let by_name = MonitorSession::builder()
            .source(w)
            .lifeguard_named("AddrCheck")
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(by_kind.metrics.fingerprint, by_name.metrics.fingerprint);
        assert_eq!(by_kind.metrics.records, by_name.metrics.records);
    }

    #[test]
    fn errors_display() {
        assert!(SessionError::MissingSource.to_string().contains("source"));
        assert!(SessionError::UnknownLifeguard("X".into())
            .to_string()
            .contains('X'));
        assert!(SessionError::Unsupported("nope")
            .to_string()
            .contains("nope"));
        assert!(SessionError::Deadlock("t0".into())
            .to_string()
            .contains("t0"));
    }
}
