//! Cooperative, pool-schedulable streaming replay.
//!
//! [`ThreadedBackend`](super::ThreadedBackend) dedicates one OS thread per
//! stream and lets workers *block* — spinning on unmet arcs, parking on
//! unproduced §5.5 versions, sleeping on a lagging producer. That is the
//! right shape for one session that owns the machine, and exactly the wrong
//! shape for a supervisor multiplexing N sessions over one shared worker
//! pool: a worker parked inside session A's arc spin is a worker session B
//! never gets.
//!
//! This module re-expresses the same replay loop as a **non-blocking state
//! machine**. A [`CoopSession`] owns the shared run state (concurrent
//! lifeguard, §5.2 progress table, §5.5 version table, failure latch); each
//! per-thread [`CoopLane`] is an independently steppable task. One
//! [`CoopLane::step`] call pulls at most one batch from the lane's stream
//! and delivers at most `budget` records; every condition the threaded
//! worker would *wait* on — an unmet dependence arc, an unserialized
//! ConflictAlert copy, an unproduced version, a producer that has not
//! caught up — instead returns [`LaneStep::Gated`] or [`LaneStep::Idle`],
//! handing the pool worker back to the scheduler. Fairness across sessions
//! is then the pool's round-robin, not the OS scheduler's.
//!
//! The ordering machinery is identical to the threaded backend's — the same
//! `ca_gate_unmet` §5.4 serialization, the same advertise-after-apply
//! §5.2 protocol, the same produce/consume points against the shared
//! [`ConcurrentVersionTable`](paralog_meta::ConcurrentVersionTable) — so a
//! capture replayed through lanes produces the same fingerprint and
//! violations as [`ThreadedBackend`](super::ThreadedBackend) or
//! [`ReplaySource`](super::ReplaySource) ingestion.
//!
//! Deadlock semantics mirror the backends': a lane gated while *some*
//! lane can still pull or apply records is simply rescheduled (`Blocked`
//! is not deadlock); only once **every** lane is parked at a gate or
//! finished — so no lane will ever advertise the progress a gate waits
//! on — does a flat-run window (no record applied session-wide) resolve
//! to [`SessionError::Deadlock`]. A producer that vanishes mid-session
//! therefore resolves deterministically: `Exhausted` at a record boundary
//! with no dangling arcs drains clean; severed arcs fail within the
//! `COOP_SEVERED_GRACE` window.

use super::backend::{ca_gate_unmet, resolve_replay_form, BackendMode, ReplayForm, INGEST_BATCH};
use super::source::{RecordStream, StreamStatus};
use super::SessionError;
use crate::metrics::{PhaseBreakdown, RunMetrics};
use paralog_events::{AddrRange, EventRecord, Rid, ThreadId};
use paralog_lifeguards::{
    CostModel, LifeguardFactory, ReplayMode, SessionEventObserver, Violation,
};
use paralog_order::{CaPolicy, RangeTable, SharedProgressTable};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Flat-run window once every lane is parked at a gate or finished: the
/// only possible wakeup is internal (a parked lane noticing its gate
/// already cleared on its next step), so a quarter second of zero applied
/// records is decisive. Mirrors the threaded backend's severed-input
/// grace. A window rather than an instant check because a parked peer
/// whose gate *just* cleared may yet resume and advertise.
const COOP_SEVERED_GRACE: std::time::Duration = std::time::Duration::from_millis(250);

/// What one [`CoopLane::step`] call accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStep {
    /// At least one record was delivered (or a fresh batch was pulled).
    /// Re-step soon — the lane likely has more work ready.
    Progressed,
    /// The stream is `Blocked`: its producer has not caught up. Re-step
    /// later; prefer running other lanes meanwhile.
    Idle,
    /// The head record waits on a peer lane (unmet §5.2 arc, §5.4 CA
    /// serialization, or an unproduced §5.5 version). Re-step after peers
    /// have run.
    Gated,
    /// The lane drained its stream and delivered everything. Terminal.
    Finished,
    /// The session failed (this lane's stream or a peer's); the error is in
    /// the session report. Terminal.
    Failed,
}

/// Shared state of one cooperative replay session.
struct CoopShared {
    /// The resolved replay form: CAS-per-access or delta-merge lanes.
    form: ReplayForm,
    ca_policy: CaPolicy,
    progress: SharedProgressTable,
    versions: paralog_meta::ConcurrentVersionTable,
    lanes: usize,
    /// Cycle model for the per-phase timed breakdown. The daemon has no
    /// per-session config surface, so every coop session uses the
    /// calibrated model — the same constants every figure is generated
    /// from.
    cost: CostModel,
    /// Records applied session-wide — the liveness signal.
    applied: AtomicU64,
    /// Times a lane found its head record gated on a peer.
    stalls: AtomicU64,
    /// Modeled analysis cycles (handler work per applied record).
    analysis_cycles: AtomicU64,
    /// Modeled publish cycles (version production + progress adverts).
    publish_cycles: AtomicU64,
    /// Wire bytes consumed across lanes (zero for raw streams).
    wire_bytes: AtomicU64,
    /// Times a lane polled a `Blocked` stream and got nothing — proof the
    /// non-blocking reader path actually exercised `WouldBlock`.
    blocked_polls: AtomicU64,
    /// Lanes whose stream reported `Exhausted`.
    eof_lanes: AtomicUsize,
    /// Lanes currently parked at an unmet gate (head record waiting on a
    /// peer). With `gated + finished == lanes`, no lane can ever advertise
    /// the progress a gate waits on.
    gated_lanes: AtomicUsize,
    /// Lanes that ran [`CoopLane`] to a terminal state.
    finished_lanes: AtomicUsize,
    abort: AtomicBool,
    failure: Mutex<Option<SessionError>>,
    /// Flat-run detector state (armed only once every lane is exhausted).
    flat: Mutex<FlatWatch>,
    /// Final report, composed exactly once by the last lane to finish.
    report: Mutex<Option<Result<RunMetrics, SessionError>>>,
}

struct FlatWatch {
    last_applied: u64,
    flat_since: Option<Instant>,
}

impl CoopShared {
    /// Records the first failure and tells every lane to stop.
    fn fail(&self, err: SessionError) {
        let mut failure = self.failure.lock().expect("poisoned");
        if failure.is_none() {
            *failure = Some(err);
        }
        self.abort.store(true, Ordering::Release);
    }

    fn aborted(&self) -> bool {
        self.abort.load(Ordering::Acquire)
    }

    /// Called by a lane whose head is gated (the caller has already parked
    /// itself). Returns `true` when the gate is hopeless: every lane is
    /// parked at a gate or finished — so nothing can ever advertise the
    /// progress a gate waits on — and the whole session has been flat for
    /// `COOP_SEVERED_GRACE`. Stream exhaustion is deliberately *not*
    /// part of the condition: a lane parked mid-pending never re-polls its
    /// stream, so a dropped producer behind a gated head would otherwise
    /// go unnoticed.
    fn gate_is_deadlock(&self) -> bool {
        if self.gated_lanes.load(Ordering::SeqCst) + self.finished_lanes.load(Ordering::SeqCst)
            < self.lanes
        {
            return false; // some lane can still pull or apply
        }
        let mut watch = self.flat.lock().expect("poisoned");
        let now = self.applied.load(Ordering::Relaxed);
        if now != watch.last_applied {
            watch.last_applied = now;
            watch.flat_since = None;
            return false;
        }
        let t0 = *watch.flat_since.get_or_insert_with(Instant::now);
        t0.elapsed() > COOP_SEVERED_GRACE
    }

    /// Live metrics snapshot (also the body of the final report). On a
    /// still-running delta-merge session the fingerprint may lag the lanes'
    /// unflushed private windows; the final report never does (every lane
    /// flushes on its way out).
    fn metrics(&self) -> RunMetrics {
        let mut violations = self.form.conc().violations();
        // Lane interleaving is pool-schedule-dependent; canonical order
        // keeps reports deterministic.
        violations.sort_by_key(|v| (v.tid.0, v.rid.0));
        let total = self.applied.load(Ordering::Relaxed);
        let stalls = self.stalls.load(Ordering::Relaxed);
        let phases = PhaseBreakdown {
            capture: total * self.cost.record_drain,
            transport: PhaseBreakdown::transport_cycles(self.wire_bytes.load(Ordering::Relaxed)),
            order_wait: stalls * self.cost.stall_poll,
            analysis: self.analysis_cycles.load(Ordering::Relaxed),
            publish: self.publish_cycles.load(Ordering::Relaxed),
        };
        RunMetrics {
            app_threads: self.lanes,
            records: total,
            delivered_ops: total,
            dependence_stalls: stalls,
            versions_produced: self.versions.produced(),
            versions_consumed: self.versions.consumed(),
            violations,
            fingerprint: self.form.conc().fingerprint(),
            events: self.form.conc().session_events(),
            lg_finish: phases.total(),
            phases: Some(phases),
            ..RunMetrics::default()
        }
    }

    /// The last lane to finish composes the report.
    fn finalize(&self) {
        let failure = self.failure.lock().expect("poisoned").clone();
        let result = match failure {
            Some(err) => Err(err),
            None => Ok(self.metrics()),
        };
        *self.report.lock().expect("poisoned") = Some(result);
    }
}

/// Handle to one cooperative replay session: clone freely, observe from any
/// thread. The actual work happens in the session's [`CoopLane`]s, stepped
/// by whoever schedules them (the `paralogd` worker pool, a test loop, ...).
#[derive(Clone)]
pub struct CoopSession {
    shared: Arc<CoopShared>,
}

impl std::fmt::Debug for CoopSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopSession")
            .field("lanes", &self.shared.lanes)
            .field("applied", &self.shared.applied.load(Ordering::Relaxed))
            .field(
                "finished_lanes",
                &self.shared.finished_lanes.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

impl CoopSession {
    /// Builds a session over `streams` (one lane per stream) running
    /// `factory`'s concurrent form.
    ///
    /// `observer`, when given, is installed on the lifeguard before any
    /// record is applied, so [`SessionEvent`](paralog_lifeguards::SessionEvent)s
    /// fire incrementally.
    ///
    /// # Errors
    ///
    /// [`SessionError::EmptySource`] for zero streams,
    /// [`SessionError::Unsupported`] when the factory has no concurrent
    /// (`Send + Sync`) form.
    pub fn start(
        factory: &dyn LifeguardFactory,
        heap: AddrRange,
        streams: Vec<Box<dyn RecordStream>>,
        observer: Option<SessionEventObserver>,
    ) -> Result<(CoopSession, Vec<CoopLane>), SessionError> {
        CoopSession::start_with_mode(factory, heap, streams, observer, BackendMode::Auto)
    }

    /// [`start`](Self::start) with an explicit [`BackendMode`]: how lanes
    /// apply records (CAS-per-access vs delta-merge private windows).
    /// `Auto` defers to the factory's measured per-thread-count preference
    /// and falls back to CAS when no delta form exists; an explicit
    /// [`BackendMode::DeltaMerge`] without one is
    /// [`SessionError::Unsupported`].
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start), plus the explicit-mode mismatch above.
    pub fn start_with_mode(
        factory: &dyn LifeguardFactory,
        heap: AddrRange,
        streams: Vec<Box<dyn RecordStream>>,
        observer: Option<SessionEventObserver>,
        mode: BackendMode,
    ) -> Result<(CoopSession, Vec<CoopLane>), SessionError> {
        if streams.is_empty() {
            return Err(SessionError::EmptySource);
        }
        let k = streams.len();
        let form = resolve_replay_form(factory, heap, k, mode)?;
        if let Some(observer) = observer {
            form.conc().set_event_observer(observer);
        }
        let ca_policy = form.conc().ca_policy();
        let shared = Arc::new(CoopShared {
            form,
            ca_policy,
            progress: SharedProgressTable::new(k),
            versions: paralog_meta::ConcurrentVersionTable::new(k),
            lanes: k,
            cost: CostModel::calibrated(),
            applied: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            analysis_cycles: AtomicU64::new(0),
            publish_cycles: AtomicU64::new(0),
            wire_bytes: AtomicU64::new(0),
            blocked_polls: AtomicU64::new(0),
            eof_lanes: AtomicUsize::new(0),
            gated_lanes: AtomicUsize::new(0),
            finished_lanes: AtomicUsize::new(0),
            abort: AtomicBool::new(false),
            failure: Mutex::new(None),
            flat: Mutex::new(FlatWatch {
                last_applied: 0,
                flat_since: None,
            }),
            report: Mutex::new(None),
        });
        let lanes = streams
            .into_iter()
            .enumerate()
            .map(|(t, stream)| CoopLane {
                tid: ThreadId(t as u16),
                shared: Arc::clone(&shared),
                stream,
                pending: VecDeque::new(),
                batch: Vec::with_capacity(INGEST_BATCH),
                range_table: RangeTable::new(k),
                unadvertised: None,
                wire_seen: 0,
                eof: false,
                head_produced: false,
                parked: false,
                done: false,
            })
            .collect();
        Ok((CoopSession { shared }, lanes))
    }

    /// Fails the session with `reason`; every lane resolves to
    /// [`LaneStep::Failed`] on its next step. (Graceful detach is *not*
    /// this — close the producer side instead and let the lanes drain.)
    pub fn abort(&self, reason: impl Into<String>) {
        self.fail(SessionError::Deadlock(format!(
            "session aborted: {}",
            reason.into()
        )));
    }

    /// Fails the session with an explicit error — the hook for failures
    /// detected *outside* the lanes (a transport-layer protocol violation,
    /// an invalid frame). First failure wins; lanes fold on their next
    /// step.
    pub fn fail(&self, err: SessionError) {
        self.shared.fail(err);
    }

    /// Whether every lane reached a terminal state (the report is ready).
    pub fn is_complete(&self) -> bool {
        self.shared.finished_lanes.load(Ordering::SeqCst) >= self.shared.lanes
    }

    /// The final result, once every lane finished: full [`RunMetrics`] on a
    /// clean drain (partial if the producers detached early — that is the
    /// graceful-shutdown contract), the first [`SessionError`] otherwise.
    pub fn report(&self) -> Option<Result<RunMetrics, SessionError>> {
        self.shared.report.lock().expect("poisoned").clone()
    }

    /// Live metrics snapshot of a (possibly still-running) session.
    pub fn snapshot_metrics(&self) -> RunMetrics {
        self.shared.metrics()
    }

    /// Records applied so far.
    pub fn records(&self) -> u64 {
        self.shared.applied.load(Ordering::Relaxed)
    }

    /// The replay mode this session's lanes resolved to (status surfaces).
    pub fn mode(&self) -> ReplayMode {
        self.shared.form.mode()
    }

    /// Times a lane polled a `Blocked` stream (a genuinely non-blocking
    /// reader returned `WouldBlock`) and got no records.
    pub fn blocked_polls(&self) -> u64 {
        self.shared.blocked_polls.load(Ordering::Relaxed)
    }

    /// Peak dense chunks ever resident in the session's §5.5 version
    /// table — what adversarial rid sweeps assert stays window-bounded.
    pub fn version_peak_resident(&self) -> usize {
        self.shared.versions.peak_dense_resident()
    }

    /// Dense chunks reclaimed by the version table's epoch sweep so far.
    pub fn version_reclaimed(&self) -> u64 {
        self.shared.versions.reclaimed_chunks()
    }

    /// Violations observed so far, in raw accumulation order (stable
    /// prefix: the bundled lifeguards append under a lock and never
    /// reorder), so `violations_live()[cursor..]` is the incremental feed.
    pub fn violations_live(&self) -> Vec<Violation> {
        self.shared.form.conc().violations()
    }
}

/// One thread's stream as a pool-schedulable task. Exclusive (`&mut`)
/// access models the lane being checked out by exactly one pool worker at
/// a time; all cross-lane coordination goes through the shared tables.
pub struct CoopLane {
    tid: ThreadId,
    shared: Arc<CoopShared>,
    stream: Box<dyn RecordStream>,
    /// At most one pulled batch awaiting delivery.
    pending: VecDeque<EventRecord>,
    batch: Vec<EventRecord>,
    range_table: RangeTable,
    /// Delta mode's deferred-advertisement watermark (the last applied rid
    /// not yet published to the §5.2 progress table); always `None` on a
    /// CAS lane.
    unadvertised: Option<Rid>,
    /// Wire bytes already folded into the session's transport total.
    wire_seen: u64,
    eof: bool,
    /// Whether the head record's §5.5 produce annotations were already
    /// published (a consume-gated head must not re-produce on re-step).
    head_produced: bool,
    /// Whether this lane is counted in the session's `gated_lanes`.
    parked: bool,
    done: bool,
}

impl std::fmt::Debug for CoopLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopLane")
            .field("tid", &self.tid)
            .field("pending", &self.pending.len())
            .field("eof", &self.eof)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl CoopLane {
    /// The lane's thread id.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// Runs the lane forward without blocking: pulls at most one batch and
    /// delivers at most `budget` records. Returns what happened so the
    /// scheduler can prioritize; once it returns [`LaneStep::Finished`] or
    /// [`LaneStep::Failed`] the lane is inert.
    pub fn step(&mut self, budget: usize) -> LaneStep {
        if self.done {
            return LaneStep::Finished;
        }
        if self.shared.aborted() {
            self.finish();
            return LaneStep::Failed;
        }
        if self.pending.is_empty() {
            if let Some(step) = self.refill() {
                return step;
            }
        }
        let mut delivered = 0usize;
        while delivered < budget.max(1) {
            if self.pending.is_empty() {
                break;
            }
            if self.shared.aborted() {
                self.finish();
                return LaneStep::Failed;
            }
            // Delta flush point, mirroring the threaded worker: before the
            // head's ordered interaction — a gate it may park at (arc, CA
            // serialization, §5.5 consume) or a publish peers read (§5.5
            // produce snapshot, CA metadata update) — the lane's buffered
            // window and deferred watermark must be out.
            let ordered = {
                let head = self.pending.front().expect("checked above");
                !head.arcs.is_empty()
                    || head.consume_version.is_some()
                    || !head.produce_versions.is_empty()
                    || matches!(head.payload, paralog_events::EventPayload::Ca(_))
            };
            if ordered && self.shared.form.delta().is_some() {
                self.flush_window();
            }
            let head = self.pending.front().expect("checked above");
            // §5.2 arcs and §5.4 CA serialization, checked without waiting.
            let gated = head
                .arcs
                .iter()
                .any(|arc| !self.shared.progress.satisfies(arc.src, arc.src_rid))
                || ca_gate_unmet(
                    head,
                    self.tid.index(),
                    &self.shared.ca_policy,
                    |src, rid| self.shared.progress.satisfies(src, rid),
                );
            if gated {
                self.shared.stalls.fetch_add(1, Ordering::Relaxed);
                return self.gated(delivered);
            }
            // §5.5 produce points: exactly once per head, even across
            // consume-gated re-steps.
            if !self.head_produced {
                for (vid, mem, consumers) in &head.produce_versions {
                    let range = mem.range();
                    let snapshot = self.shared.form.conc().snapshot_meta(range);
                    if let Err(err) = self
                        .shared
                        .versions
                        .try_produce(*vid, range, snapshot, *consumers)
                    {
                        self.shared.fail(SessionError::MalformedStream(format!(
                            "thread {} stream carries an invalid produce annotation: {err}",
                            self.tid.0
                        )));
                        self.finish();
                        return LaneStep::Failed;
                    }
                }
                self.head_produced = true;
            }
            // §5.5 consume points: an unproduced version gates the lane
            // instead of parking a worker.
            let versioned = match head.consume_version {
                Some((vid, _)) => match self.shared.versions.consume(vid) {
                    Some(v) => Some(v),
                    None => {
                        self.shared.stalls.fetch_add(1, Ordering::Relaxed);
                        return self.gated(delivered);
                    }
                },
                None => None,
            };
            let rec = self.pending.pop_front().expect("peeked");
            let (analysis, publish) =
                PhaseBreakdown::record_cycles(&self.shared.cost, &rec, self.tid.index());
            self.shared
                .analysis_cycles
                .fetch_add(analysis, Ordering::Relaxed);
            self.shared
                .publish_cycles
                .fetch_add(publish, Ordering::Relaxed);
            self.head_produced = false;
            self.unpark();
            // §5.4: police the range table before applying.
            if let paralog_events::EventPayload::Instr(instr) = &rec.payload {
                if let Some((mem, _)) = instr.mem_access() {
                    if let Some(entry) = self.range_table.check(self.tid, mem.range()) {
                        self.shared.form.conc().on_syscall_race(
                            self.tid,
                            mem.range(),
                            &entry,
                            rec.rid,
                        );
                    }
                }
            }
            match self.shared.form.delta() {
                Some(d) => d.apply_delta(self.tid, &rec, versioned.as_ref()),
                None => self
                    .shared
                    .form
                    .conc()
                    .apply(self.tid, &rec, versioned.as_ref()),
            }
            if let paralog_events::EventPayload::Ca(ca) = &rec.payload {
                let actions = self.shared.ca_policy.actions(ca.what, ca.phase);
                if actions.track_range {
                    match (ca.phase, ca.range) {
                        (paralog_events::CaPhase::Begin, Some(range)) => {
                            self.range_table.insert(ca.issuer, ca.what, range)
                        }
                        (paralog_events::CaPhase::End, _) => self.range_table.remove(ca.issuer),
                        _ => {}
                    }
                }
            }
            if self.shared.form.delta().is_none()
                || matches!(rec.payload, paralog_events::EventPayload::Ca(_))
            {
                // CAS lanes advertise per record; a delta lane still
                // advertises CA copies immediately — remote copies gate on
                // the issuer's advertised progress, and the CA apply
                // self-flushed.
                self.shared.progress.advertise(self.tid, rec.rid);
            } else {
                self.unadvertised = Some(rec.rid);
            }
            self.shared.applied.fetch_add(1, Ordering::Relaxed);
            delivered += 1;
        }
        if self.pending.is_empty() && self.eof {
            self.finish();
            return LaneStep::Finished;
        }
        LaneStep::Progressed
    }

    /// Pulls one batch. `Some(step)` short-circuits the caller (idle,
    /// finished or failed); `None` means records are pending.
    fn refill(&mut self) -> Option<LaneStep> {
        // Batch boundary: a delta lane publishes its window *before* the
        // poll — the lane may go `Idle` on a lagging producer, and peers
        // must not wait out that idleness for progress already made.
        self.flush_window();
        if self.eof {
            self.finish();
            return Some(LaneStep::Finished);
        }
        let status = match self.stream.next_batch(&mut self.batch, INGEST_BATCH) {
            Ok(status) => status,
            Err(err) => {
                self.shared.fail(err);
                self.finish();
                return Some(LaneStep::Failed);
            }
        };
        // Drain whatever arrived regardless of status (a stream may deliver
        // a partial batch and *then* report Blocked).
        let got_records = !self.batch.is_empty();
        self.pending.extend(self.batch.drain(..));
        // Fold freshly consumed wire bytes into the transport total.
        let wired = self.stream.transport_bytes();
        if wired > self.wire_seen {
            self.shared
                .wire_bytes
                .fetch_add(wired - self.wire_seen, Ordering::Relaxed);
            self.wire_seen = wired;
        }
        match status {
            StreamStatus::Exhausted => {
                if !self.eof {
                    self.eof = true;
                    self.shared.eof_lanes.fetch_add(1, Ordering::SeqCst);
                }
                if !got_records {
                    self.finish();
                    return Some(LaneStep::Finished);
                }
            }
            StreamStatus::Yielded | StreamStatus::Blocked => {
                if !got_records {
                    // A genuinely non-blocking reader returned `WouldBlock`
                    // (or an empty Yielded — treated identically): hand the
                    // worker back instead of sleeping on the producer.
                    self.shared.blocked_polls.fetch_add(1, Ordering::Relaxed);
                    return Some(LaneStep::Idle);
                }
            }
        }
        // Batch boundary: the reclamation quiescence point, exactly as in
        // the threaded worker.
        self.shared.form.conc().epoch_boundary(self.tid);
        self.shared.versions.advance_epoch(self.tid);
        None
    }

    /// Delta-mode flush point: publish the lane's private window into the
    /// shared tables, then advertise the deferred §5.2 watermark
    /// (advertisement is monotone, so the last rid suffices). No-op on a
    /// CAS lane.
    fn flush_window(&mut self) {
        if let Some(d) = self.shared.form.delta() {
            d.flush_delta(self.tid);
        }
        if let Some(rid) = self.unadvertised.take() {
            self.shared.progress.advertise(self.tid, rid);
        }
    }

    /// Resolves a gated head: progress already made this step still counts;
    /// a hopeless gate (every lane parked or finished, session flat past
    /// the grace window) fails the run.
    fn gated(&mut self, delivered: usize) -> LaneStep {
        if delivered > 0 {
            return LaneStep::Progressed;
        }
        if !self.parked {
            self.parked = true;
            self.shared.gated_lanes.fetch_add(1, Ordering::SeqCst);
        }
        if self.shared.gate_is_deadlock() {
            let head = self.pending.front().expect("gated head");
            self.shared.fail(SessionError::Deadlock(format!(
                "thread {} gated at rid {} (arcs {:?}) with every peer parked or \
                 finished; nothing can ever satisfy it (truncated capture or \
                 dropped producer)",
                self.tid.0, head.rid, head.arcs
            )));
            self.finish();
            return LaneStep::Failed;
        }
        LaneStep::Gated
    }

    /// Leaves the parked-at-gate state (the gate cleared or the lane is
    /// going terminal).
    fn unpark(&mut self) {
        if self.parked {
            self.parked = false;
            self.shared.gated_lanes.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Terminal transition, runs exactly once: stops gating reclamation
    /// quiescence and, as the last lane out, composes the session report.
    fn finish(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.unpark();
        // However the lane exits (drained, failed, aborted), its buffered
        // window lands before the terminal quiescence transition.
        self.flush_window();
        self.shared.form.conc().stream_done(self.tid);
        self.shared.versions.advance_epoch(self.tid);
        let finished = self.shared.finished_lanes.fetch_add(1, Ordering::SeqCst) + 1;
        if finished == self.shared.lanes {
            self.shared.finalize();
        }
    }
}
