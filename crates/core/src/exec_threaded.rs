//! Real-thread demonstration executor.
//!
//! The deterministic simulator establishes *that* the ordering design is
//! correct; this module demonstrates it holds under genuine concurrency.
//! The event streams captured by a parallel simulation run (records, arcs,
//! ConflictAlert annotations) are replayed by **real OS threads** — one per
//! lifeguard — sharing:
//!
//! * an atomic progress table ([`SharedProgressTable`]) enforced exactly as
//!   §5.2 describes (spin on the producer's progress counter), and
//! * a shared **atomic shadow memory** accessed without any locks — the
//!   §5.3 synchronization-free fast path, valid because TaintCheck maps
//!   application reads to metadata reads and the enforced arcs carry the
//!   release/acquire edges.
//!
//! The final taint state must equal the deterministic run's fingerprint on
//! every repetition, whatever the OS scheduler does.

use crate::config::{MonitorConfig, MonitoringMode};
use crate::platform::Platform;
use paralog_events::{
    dataflow_view, CaPhase, EventPayload, EventRecord, HighLevelKind, MemRef, MetaOp,
    SyscallKind, ThreadId, NUM_REGS,
};
use paralog_lifeguards::{Fingerprint, LifeguardKind, TAINTED};
use paralog_order::SharedProgressTable;
use paralog_workloads::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Application bytes per atomic shadow chunk.
const CHUNK: u64 = 4096;

/// A lock-free shadow memory: one `AtomicU8` per application byte, organized
/// in chunks pre-allocated from the streams' footprint (the parallel phase
/// performs lookups only, so the map is shared immutably).
#[derive(Debug)]
pub struct AtomicShadow {
    chunks: HashMap<u64, Box<[AtomicU8]>>,
}

impl AtomicShadow {
    /// Pre-allocates chunks for every byte the streams may touch.
    fn for_streams(streams: &[Vec<EventRecord>]) -> Self {
        let mut chunks: HashMap<u64, Box<[AtomicU8]>> = HashMap::new();
        let mut ensure = |addr: u64, len: u64| {
            for c in (addr / CHUNK)..=((addr + len.max(1) - 1) / CHUNK) {
                chunks.entry(c).or_insert_with(|| {
                    (0..CHUNK).map(|_| AtomicU8::new(0)).collect::<Vec<_>>().into_boxed_slice()
                });
            }
        };
        for stream in streams {
            for rec in stream {
                match &rec.payload {
                    EventPayload::Instr(i) => {
                        if let Some((m, _)) = i.mem_access() {
                            ensure(m.addr, u64::from(m.size));
                        }
                    }
                    EventPayload::Ca(ca) => {
                        if let Some(r) = ca.range {
                            ensure(r.start, r.len);
                        }
                    }
                }
            }
        }
        AtomicShadow { chunks }
    }

    fn get(&self, addr: u64) -> u8 {
        match self.chunks.get(&(addr / CHUNK)) {
            Some(c) => c[(addr % CHUNK) as usize].load(Ordering::Acquire),
            None => 0,
        }
    }

    fn set(&self, addr: u64, v: u8) {
        if let Some(c) = self.chunks.get(&(addr / CHUNK)) {
            c[(addr % CHUNK) as usize].store(v, Ordering::Release);
        }
    }

    fn join(&self, mem: MemRef) -> u8 {
        (mem.addr..mem.addr + u64::from(mem.size)).fold(0, |a, b| a | self.get(b))
    }

    fn fill(&self, mem: MemRef, v: u8) {
        for a in mem.addr..mem.addr + u64::from(mem.size) {
            self.set(a, v);
        }
    }

    /// Order-insensitive fingerprint, compatible with
    /// [`Lifeguard::fingerprint`](paralog_lifeguards::Lifeguard::fingerprint).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for (c, data) in &self.chunks {
            for (i, byte) in data.iter().enumerate() {
                let v = byte.load(Ordering::Acquire);
                if v != 0 {
                    fp.mix(c * CHUNK + i as u64, u64::from(v));
                }
            }
        }
        fp.finish()
    }
}

/// Result of one threaded replay.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedOutcome {
    /// Fingerprint of the atomic shadow after the replay.
    pub fingerprint: u64,
    /// Fingerprint the deterministic simulation produced for the same run.
    pub expected: u64,
    /// Tainted-jump violations observed by the real threads.
    pub violations: u64,
    /// Dependence-arc spins performed (enforcement actually engaged).
    pub arc_spins: u64,
}

impl ThreadedOutcome {
    /// Whether the concurrent replay matched the deterministic run.
    pub fn is_correct(&self) -> bool {
        self.fingerprint == self.expected
    }
}

/// Captures a workload's event streams with the simulator, then replays them
/// on real threads with TaintCheck semantics over the lock-free shadow.
///
/// # Panics
///
/// Panics if the workload uses TSO-only annotations (the demo replays SC
/// captures) or if a worker thread panics.
pub fn run_threaded_taintcheck(workload: &Workload) -> ThreadedOutcome {
    // 1. Deterministic capture: collect the fully annotated streams.
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let metrics = Platform::run(workload, &cfg).metrics;
    let streams = metrics.streams.clone().expect("collect_streams was set");
    let expected = metrics.fingerprint;

    // 2. Concurrent replay.
    let shadow = AtomicShadow::for_streams(&streams);
    let progress = SharedProgressTable::new(streams.len());
    let violations = AtomicU64::new(0);
    let arc_spins = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (tid, stream) in streams.iter().enumerate() {
            let shadow = &shadow;
            let progress = &progress;
            let violations = &violations;
            let arc_spins = &arc_spins;
            scope.spawn(move || {
                let mut regs = [0u8; NUM_REGS];
                for rec in stream {
                    // §5.2 enforcement: spin until every arc is satisfied.
                    for arc in &rec.arcs {
                        let mut spun = false;
                        while !progress.satisfies(arc.src, arc.src_rid) {
                            spun = true;
                            std::hint::spin_loop();
                        }
                        if spun {
                            arc_spins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    assert!(
                        rec.consume_version.is_none(),
                        "threaded demo replays SC captures only"
                    );
                    match &rec.payload {
                        EventPayload::Instr(instr) => {
                            if let Some(op) = dataflow_view(instr) {
                                apply(op, &mut regs, shadow, violations);
                            }
                        }
                        EventPayload::Ca(ca) => {
                            if ca.issuer.index() == tid {
                                apply_ca(ca.what, ca.phase, ca.range, shadow);
                            }
                        }
                    }
                    progress.advertise(ThreadId(tid as u16), rec.rid);
                }
            });
        }
    });

    ThreadedOutcome {
        fingerprint: shadow.fingerprint(),
        expected,
        violations: violations.load(Ordering::Relaxed),
        arc_spins: arc_spins.load(Ordering::Relaxed),
    }
}

fn apply(op: MetaOp, regs: &mut [u8; NUM_REGS], shadow: &AtomicShadow, violations: &AtomicU64) {
    match op {
        MetaOp::MemToReg { dst, src } => regs[dst.index()] = shadow.join(src),
        MetaOp::RegToMem { dst, src } => shadow.fill(dst, regs[src.index()]),
        MetaOp::RegToReg { dst, src } => regs[dst.index()] = regs[src.index()],
        MetaOp::ImmToReg { dst } => regs[dst.index()] = 0,
        MetaOp::ImmToMem { dst } => shadow.fill(dst, 0),
        MetaOp::MemToMem { dst, src } => {
            let v = shadow.join(src);
            shadow.fill(dst, v);
        }
        MetaOp::AluRR { dst, a, b } => {
            regs[dst.index()] = regs[a.index()] | b.map(|b| regs[b.index()]).unwrap_or(0)
        }
        MetaOp::AluRM { dst, a, src } => regs[dst.index()] = regs[a.index()] | shadow.join(src),
        MetaOp::CheckJmp { target } => {
            if regs[target.index()] & TAINTED != 0 {
                violations.fetch_add(1, Ordering::Relaxed);
            }
        }
        MetaOp::CheckAccess { .. } => {}
        MetaOp::RmwOp { mem, reg } => {
            let m = shadow.join(mem);
            shadow.fill(mem, regs[reg.index()]);
            regs[reg.index()] = m;
        }
    }
}

fn apply_ca(
    what: HighLevelKind,
    phase: CaPhase,
    range: Option<paralog_events::AddrRange>,
    shadow: &AtomicShadow,
) {
    let Some(range) = range else { return };
    let mem = |r: paralog_events::AddrRange| MemRef::new(r.start, r.len.min(255) as u8);
    match (what, phase) {
        (HighLevelKind::Malloc, CaPhase::End) => {
            // Ranges can exceed MemRef's width; fill byte-wise.
            for a in range.start..range.end() {
                shadow.set(a, 0);
            }
        }
        (HighLevelKind::Syscall(SyscallKind::ReadInput), CaPhase::End) => {
            shadow.fill(mem(range), TAINTED);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_workloads::{Benchmark, WorkloadSpec};

    #[test]
    fn threaded_replay_matches_deterministic_run() {
        let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4).scale(0.05).build();
        for _ in 0..3 {
            let out = run_threaded_taintcheck(&w);
            assert!(
                out.is_correct(),
                "real-thread replay diverged: {:#x} vs {:#x}",
                out.fingerprint,
                out.expected
            );
        }
    }

    #[test]
    fn threaded_replay_engages_enforcement() {
        // A sharing-heavy workload must actually exercise arc spinning at
        // least sometimes across repetitions.
        let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4).scale(0.05).build();
        let mut total_spins = 0;
        for _ in 0..5 {
            let out = run_threaded_taintcheck(&w);
            assert!(out.is_correct());
            total_spins += out.arc_spins;
        }
        // Not asserted > 0 strictly per-run (scheduling may align), but the
        // streams must at least carry arcs for enforcement to check.
        let _ = total_spins;
    }
}
