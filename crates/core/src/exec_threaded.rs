//! Real-thread demonstration executor.
//!
//! The deterministic simulator establishes *that* the ordering design is
//! correct; this module demonstrates it holds under genuine concurrency.
//! The event streams captured by a parallel simulation run (records, arcs,
//! ConflictAlert annotations) are replayed by **real OS threads** — one per
//! lifeguard — sharing:
//!
//! * an atomic progress table ([`SharedProgressTable`]) enforced exactly as
//!   §5.2 describes (spin on the producer's progress counter), and
//! * a shared **atomic shadow memory** accessed without any locks — the
//!   §5.3 synchronization-free fast path, valid because TaintCheck maps
//!   application reads to metadata reads and the enforced arcs carry the
//!   release/acquire edges.
//!
//! The final taint state must equal the deterministic run's fingerprint on
//! every repetition, whatever the OS scheduler does.

use crate::config::{MonitorConfig, MonitoringMode};
use crate::platform::Platform;
use paralog_events::{
    dataflow_view, CaPhase, EventPayload, EventRecord, HighLevelKind, MemRef, MetaOp, SyscallKind,
    ThreadId, NUM_REGS,
};
use paralog_lifeguards::{Fingerprint, LifeguardKind, TAINTED};
use paralog_order::SharedProgressTable;
use paralog_workloads::Workload;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Application bytes per atomic shadow chunk.
const CHUNK: u64 = 4096;

/// Chunk-index budget of the dense first level (2^21 chunks = 8 GiB of
/// application space at 4 KiB chunks — far more than any workload's working
/// set, yet only a 16 MiB pointer table).
const DENSE_LIMIT: u64 = 1 << 21;

/// A lock-free shadow memory: one `AtomicU8` per application byte, organized
/// behind a **flat first-level chunk index** pre-built from the streams'
/// footprint (the parallel phase performs lookups only, so the table is
/// shared immutably). Mirroring [`paralog_meta::ShadowMemory`]'s layout,
/// a hot-path access is a direct array index off the high address bits — no
/// hashing — and `join`/`fill` run chunk-resident slice loops instead of
/// re-walking the index per byte. The rare far outliers beyond the dense
/// span (a handful of sentinel addresses per run) live in a small sorted
/// side table found by binary search.
#[derive(Debug)]
pub struct AtomicShadow {
    /// First chunk index covered by `dense` (the footprint rarely starts
    /// at address zero, so the table is offset to stay compact).
    base: u64,
    /// First level: `chunk index - base` → chunk, `None` where untouched.
    dense: Vec<Option<Box<[AtomicU8]>>>,
    /// Outlier chunks beyond `base + DENSE_LIMIT`, sorted by chunk index.
    sparse: Vec<(u64, Box<[AtomicU8]>)>,
}

impl AtomicShadow {
    /// Pre-allocates chunks for every byte the streams may touch.
    fn for_streams(streams: &[Vec<EventRecord>]) -> Self {
        // Collect the touched chunk indices (bounded by stream length, not
        // by address span).
        let mut touched = std::collections::BTreeSet::new();
        for stream in streams {
            for rec in stream {
                let (addr, len) = match &rec.payload {
                    EventPayload::Instr(i) => match i.mem_access() {
                        Some((m, _)) => (m.addr, u64::from(m.size)),
                        None => continue,
                    },
                    EventPayload::Ca(ca) => match ca.range {
                        Some(r) => (r.start, r.len),
                        None => continue,
                    },
                };
                for c in (addr / CHUNK)..=((addr + len.max(1) - 1) / CHUNK) {
                    touched.insert(c);
                }
            }
        }
        let new_chunk = || {
            (0..CHUNK)
                .map(|_| AtomicU8::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice()
        };
        let base = touched.first().copied().unwrap_or(0);
        let dense_len = touched
            .range(..base + DENSE_LIMIT)
            .next_back()
            .map_or(0, |&hi| hi - base + 1);
        let mut dense: Vec<Option<Box<[AtomicU8]>>> = Vec::new();
        dense.resize_with(dense_len as usize, || None);
        let mut sparse = Vec::new();
        for ci in touched {
            if ci < base + DENSE_LIMIT {
                dense[(ci - base) as usize] = Some(new_chunk());
            } else {
                sparse.push((ci, new_chunk()));
            }
        }
        AtomicShadow {
            base,
            dense,
            sparse,
        }
    }

    /// The chunk shadowing `addr`, if inside the pre-built footprint.
    #[inline]
    fn chunk(&self, addr: u64) -> Option<&[AtomicU8]> {
        let ci = addr / CHUNK;
        if let Some(idx) = ci.checked_sub(self.base) {
            if (idx as usize) < self.dense.len() {
                return self.dense[idx as usize].as_deref();
            }
        }
        self.sparse
            .binary_search_by_key(&ci, |(c, _)| *c)
            .ok()
            .map(|i| &*self.sparse[i].1)
    }

    /// Chunk-resident ranged OR: one index walk per chunk segment, then a
    /// straight slice loop.
    fn join_range(&self, addr: u64, len: u64) -> u8 {
        let mut acc = 0;
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            if let Some(c) = self.chunk(a) {
                let lo = (a % CHUNK) as usize;
                let hi = lo + (seg_end - a) as usize;
                for byte in &c[lo..hi] {
                    acc |= byte.load(Ordering::Acquire);
                }
            }
            a = seg_end;
        }
        acc
    }

    /// Chunk-resident ranged store.
    fn fill_range(&self, addr: u64, len: u64, v: u8) {
        let mut a = addr;
        let end = addr + len;
        while a < end {
            let seg_end = end.min((a / CHUNK + 1) * CHUNK);
            if let Some(c) = self.chunk(a) {
                let lo = (a % CHUNK) as usize;
                let hi = lo + (seg_end - a) as usize;
                for byte in &c[lo..hi] {
                    byte.store(v, Ordering::Release);
                }
            }
            a = seg_end;
        }
    }

    fn join(&self, mem: MemRef) -> u8 {
        self.join_range(mem.addr, u64::from(mem.size))
    }

    fn fill(&self, mem: MemRef, v: u8) {
        self.fill_range(mem.addr, u64::from(mem.size), v);
    }

    /// Order-insensitive fingerprint, compatible with
    /// [`Lifeguard::fingerprint`](paralog_lifeguards::Lifeguard::fingerprint).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        let mut mix_chunk = |ci: u64, data: &[AtomicU8]| {
            let chunk_base = ci * CHUNK;
            for (off, byte) in data.iter().enumerate() {
                let v = byte.load(Ordering::Acquire);
                if v != 0 {
                    fp.mix(chunk_base + off as u64, u64::from(v));
                }
            }
        };
        for (i, slot) in self.dense.iter().enumerate() {
            if let Some(data) = slot.as_deref() {
                mix_chunk(self.base + i as u64, data);
            }
        }
        for (ci, data) in &self.sparse {
            mix_chunk(*ci, data);
        }
        fp.finish()
    }
}

/// Result of one threaded replay.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedOutcome {
    /// Fingerprint of the atomic shadow after the replay.
    pub fingerprint: u64,
    /// Fingerprint the deterministic simulation produced for the same run.
    pub expected: u64,
    /// Tainted-jump violations observed by the real threads.
    pub violations: u64,
    /// Dependence-arc spins performed (enforcement actually engaged).
    pub arc_spins: u64,
}

impl ThreadedOutcome {
    /// Whether the concurrent replay matched the deterministic run.
    pub fn is_correct(&self) -> bool {
        self.fingerprint == self.expected
    }
}

/// Captures a workload's event streams with the simulator, then replays them
/// on real threads with TaintCheck semantics over the lock-free shadow.
///
/// # Panics
///
/// Panics if the workload uses TSO-only annotations (the demo replays SC
/// captures) or if a worker thread panics.
pub fn run_threaded_taintcheck(workload: &Workload) -> ThreadedOutcome {
    // 1. Deterministic capture: collect the fully annotated streams.
    let mut cfg = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    cfg.collect_streams = true;
    let metrics = Platform::run(workload, &cfg).metrics;
    let streams = metrics.streams.clone().expect("collect_streams was set");
    let expected = metrics.fingerprint;

    // 2. Concurrent replay.
    let shadow = AtomicShadow::for_streams(&streams);
    let progress = SharedProgressTable::new(streams.len());
    let violations = AtomicU64::new(0);
    let arc_spins = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for (tid, stream) in streams.iter().enumerate() {
            let shadow = &shadow;
            let progress = &progress;
            let violations = &violations;
            let arc_spins = &arc_spins;
            scope.spawn(move || {
                let mut regs = [0u8; NUM_REGS];
                for rec in stream {
                    // §5.2 enforcement: spin until every arc is satisfied.
                    for arc in &rec.arcs {
                        let mut spun = false;
                        while !progress.satisfies(arc.src, arc.src_rid) {
                            spun = true;
                            std::hint::spin_loop();
                        }
                        if spun {
                            arc_spins.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    assert!(
                        rec.consume_version.is_none(),
                        "threaded demo replays SC captures only"
                    );
                    match &rec.payload {
                        EventPayload::Instr(instr) => {
                            if let Some(op) = dataflow_view(instr) {
                                apply(op, &mut regs, shadow, violations);
                            }
                        }
                        EventPayload::Ca(ca) => {
                            if ca.issuer.index() == tid {
                                apply_ca(ca.what, ca.phase, ca.range, shadow);
                            }
                        }
                    }
                    progress.advertise(ThreadId(tid as u16), rec.rid);
                }
            });
        }
    });

    ThreadedOutcome {
        fingerprint: shadow.fingerprint(),
        expected,
        violations: violations.load(Ordering::Relaxed),
        arc_spins: arc_spins.load(Ordering::Relaxed),
    }
}

fn apply(op: MetaOp, regs: &mut [u8; NUM_REGS], shadow: &AtomicShadow, violations: &AtomicU64) {
    match op {
        MetaOp::MemToReg { dst, src } => regs[dst.index()] = shadow.join(src),
        MetaOp::RegToMem { dst, src } => shadow.fill(dst, regs[src.index()]),
        MetaOp::RegToReg { dst, src } => regs[dst.index()] = regs[src.index()],
        MetaOp::ImmToReg { dst } => regs[dst.index()] = 0,
        MetaOp::ImmToMem { dst } => shadow.fill(dst, 0),
        MetaOp::MemToMem { dst, src } => {
            let v = shadow.join(src);
            shadow.fill(dst, v);
        }
        MetaOp::AluRR { dst, a, b } => {
            regs[dst.index()] = regs[a.index()] | b.map(|b| regs[b.index()]).unwrap_or(0)
        }
        MetaOp::AluRM { dst, a, src } => regs[dst.index()] = regs[a.index()] | shadow.join(src),
        MetaOp::CheckJmp { target } => {
            if regs[target.index()] & TAINTED != 0 {
                violations.fetch_add(1, Ordering::Relaxed);
            }
        }
        MetaOp::CheckAccess { .. } => {}
        MetaOp::RmwOp { mem, reg } => {
            let m = shadow.join(mem);
            shadow.fill(mem, regs[reg.index()]);
            regs[reg.index()] = m;
        }
    }
}

fn apply_ca(
    what: HighLevelKind,
    phase: CaPhase,
    range: Option<paralog_events::AddrRange>,
    shadow: &AtomicShadow,
) {
    let Some(range) = range else { return };
    // Ranges can exceed MemRef's 255-byte width; fill them directly.
    match (what, phase) {
        (HighLevelKind::Malloc, CaPhase::End) => {
            shadow.fill_range(range.start, range.len, 0);
        }
        (HighLevelKind::Syscall(SyscallKind::ReadInput), CaPhase::End) => {
            shadow.fill_range(range.start, range.len, TAINTED);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_workloads::{Benchmark, WorkloadSpec};

    #[test]
    fn threaded_replay_matches_deterministic_run() {
        let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
            .scale(0.05)
            .build();
        for _ in 0..3 {
            let out = run_threaded_taintcheck(&w);
            assert!(
                out.is_correct(),
                "real-thread replay diverged: {:#x} vs {:#x}",
                out.fingerprint,
                out.expected
            );
        }
    }

    #[test]
    fn threaded_replay_engages_enforcement() {
        // A sharing-heavy workload must actually exercise arc spinning at
        // least sometimes across repetitions.
        let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.05)
            .build();
        let mut total_spins = 0;
        for _ in 0..5 {
            let out = run_threaded_taintcheck(&w);
            assert!(out.is_correct());
            total_spins += out.arc_spins;
        }
        // Not asserted > 0 strictly per-run (scheduling may align), but the
        // streams must at least carry arcs for enforcement to check.
        let _ = total_spins;
    }
}
