//! Real-thread demonstration executor (compatibility shim).
//!
//! The machinery behind this module moved into the composable session API:
//! [`ThreadedBackend`] replays any
//! lifeguard with a `Send + Sync` concurrent form
//! ([`ConcurrentLifeguard`](paralog_lifeguards::ConcurrentLifeguard)) on
//! real OS threads, enforcing dependence arcs by spinning on the atomic
//! progress table exactly as §5.2 describes, over lock-free shared metadata
//! ([`AtomicShadow`]) — the §5.3 synchronization-free fast path.
//!
//! [`run_threaded_taintcheck`] keeps the original one-call demonstration:
//! capture a workload's streams deterministically, replay them with real
//! TaintCheck threads, and report whether the concurrent metadata matched
//! the deterministic run's fingerprint on this repetition. TSO captures
//! replay too: their §5.5 produce/consume annotations resolve against the
//! backend's shared
//! [`ConcurrentVersionTable`](paralog_meta::ConcurrentVersionTable), so
//! the old "replays SC only" panic is gone.

use crate::config::{MonitorConfig, MonitoringMode};
use crate::session::{MonitorSession, ThreadedBackend, WorkloadSource};
use paralog_lifeguards::LifeguardKind;
use paralog_workloads::Workload;

pub use paralog_meta::AtomicShadow;

/// Result of one threaded replay.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedOutcome {
    /// Fingerprint of the atomic shadow after the replay.
    pub fingerprint: u64,
    /// Fingerprint the deterministic simulation produced for the same run.
    pub expected: u64,
    /// Violations observed by the real threads.
    pub violations: u64,
    /// Dependence-arc spins performed (enforcement actually engaged).
    pub arc_spins: u64,
}

impl ThreadedOutcome {
    /// Whether the concurrent replay matched the deterministic run.
    pub fn is_correct(&self) -> bool {
        self.fingerprint == self.expected
    }
}

/// Captures a workload's event streams with the simulator, then replays them
/// on real threads with TaintCheck semantics over the lock-free shadow.
/// Pass `tso` to capture (and replay) under Total Store Ordering with §5.5
/// versioned metadata.
///
/// # Panics
///
/// Panics if the capture itself is malformed (a truncated stream would
/// deadlock the replay) or if a worker thread panics.
pub fn run_threaded_taintcheck_on(workload: &Workload, tso: bool) -> ThreadedOutcome {
    let mut config = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
    if tso {
        config = config.with_tso();
    }
    let outcome = MonitorSession::builder()
        .source(WorkloadSource::new(workload.clone()))
        .config(config)
        .backend(ThreadedBackend)
        .build()
        .expect("a sourced session is complete")
        .run()
        .expect("a deterministic TaintCheck capture is replayable");
    let m = outcome.metrics;
    ThreadedOutcome {
        fingerprint: m.fingerprint,
        expected: m
            .reference_fingerprint
            .expect("workload capture records the deterministic fingerprint"),
        violations: m.violations.len() as u64,
        arc_spins: m.dependence_stalls,
    }
}

/// [`run_threaded_taintcheck_on`] under sequential consistency (the
/// original demo entry point).
pub fn run_threaded_taintcheck(workload: &Workload) -> ThreadedOutcome {
    run_threaded_taintcheck_on(workload, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_workloads::{Benchmark, WorkloadSpec};

    #[test]
    fn threaded_replay_matches_deterministic_run() {
        let w = WorkloadSpec::benchmark(Benchmark::Fluidanimate, 4)
            .scale(0.05)
            .build();
        for _ in 0..3 {
            let out = run_threaded_taintcheck(&w);
            assert!(
                out.is_correct(),
                "real-thread replay diverged: {:#x} vs {:#x}",
                out.fingerprint,
                out.expected
            );
        }
    }

    #[test]
    fn threaded_replay_handles_tso_captures() {
        // The demo path used to panic on TSO-annotated workloads ("replays
        // SC only"); the §5.5 annotations now resolve against the shared
        // concurrent version table instead.
        let w = WorkloadSpec::benchmark(Benchmark::Ocean, 4)
            .scale(0.05)
            .build();
        for _ in 0..3 {
            let out = run_threaded_taintcheck_on(&w, true);
            assert!(
                out.is_correct(),
                "TSO real-thread replay diverged: {:#x} vs {:#x}",
                out.fingerprint,
                out.expected
            );
        }
    }

    #[test]
    fn threaded_replay_engages_enforcement() {
        // A sharing-heavy workload must actually exercise arc spinning at
        // least sometimes across repetitions.
        let w = WorkloadSpec::benchmark(Benchmark::Barnes, 4)
            .scale(0.05)
            .build();
        let mut total_spins = 0;
        for _ in 0..5 {
            let out = run_threaded_taintcheck(&w);
            assert!(out.is_correct());
            total_spins += out.arc_spins;
        }
        // Not asserted > 0 strictly per-run (scheduling may align), but the
        // streams must at least carry arcs for enforcement to check.
        let _ = total_spins;
    }
}
