//! The in-line sequential reference analysis.
//!
//! Correctness invariant #1 (DESIGN.md): parallel monitoring — arcs, delayed
//! advertising, ConflictAlert barriers, TSO versioning and all — must leave
//! the *same final metadata* as a sequential analysis applied in the
//! application's global retirement/visibility order. This module is that
//! oracle: an independent, accelerator-free implementation of the bundled
//! dataflow/check analyses, driven directly by the simulator's global event
//! order (not by the lifeguard pipeline), producing a fingerprint compatible
//! with [`Lifeguard::fingerprint`](paralog_lifeguards::Lifeguard).
//!
//! Under TSO a store's metadata becomes globally visible at *drain* time,
//! while a forwarded load must take the pending store's metadata — the
//! reference stashes per-store metadata in a mirror of the store buffer.
//!
//! The race lifeguards are excluded: LockSet's state machine is
//! order-sensitive between unordered (non-conflicting) accesses, so
//! equivalent legal schedules may legitimately differ; HappensBefore keeps
//! word-table metadata (epochs and vector clocks) with no byte-shadow
//! form for this oracle to mirror — its cross-backend determinism is
//! checked by the dedicated parity suite instead
//! (`tests/concurrent_lifeguards.rs`).

use paralog_events::{AddrRange, HighLevelKind, Instr, MemRef, Rid, SyscallKind, NUM_REGS};
use paralog_lifeguards::{Fingerprint, LifeguardKind, TAINTED, UNDEFINED};
use paralog_meta::ShadowMemory;
use std::collections::VecDeque;

/// The reference engine.
#[derive(Debug)]
pub struct Reference {
    kind: LifeguardKind,
    mem: ShadowMemory,
    regs: Vec<[u8; NUM_REGS]>,
    /// TSO mirror of each store buffer: `(rid, target, metadata value)`.
    pending: Vec<VecDeque<(Rid, MemRef, u8)>>,
    tso: bool,
}

impl Reference {
    /// Creates a reference for `kind` over `threads` application threads.
    ///
    /// # Panics
    ///
    /// Panics for the race lifeguards ([`LifeguardKind::LockSet`],
    /// [`LifeguardKind::HappensBefore`] — see module docs).
    pub fn new(kind: LifeguardKind, threads: usize, tso: bool) -> Self {
        assert!(
            kind != LifeguardKind::LockSet && kind != LifeguardKind::HappensBefore,
            "race lifeguards have no byte-shadow sequential reference"
        );
        let bits = match kind {
            LifeguardKind::TaintCheck | LifeguardKind::MemCheck => 2,
            LifeguardKind::AddrCheck => 1,
            LifeguardKind::LockSet | LifeguardKind::HappensBefore => unreachable!(),
        };
        Reference {
            kind,
            mem: ShadowMemory::new(bits),
            regs: vec![[0; NUM_REGS]; threads],
            pending: (0..threads).map(|_| VecDeque::new()).collect(),
            tso,
        }
    }

    fn mem_value(&self, tid: usize, src: MemRef) -> u8 {
        if self.tso {
            // Store-to-load forwarding: youngest fully-covering pending store.
            if let Some((_, _, v)) = self.pending[tid].iter().rev().find(|(_, m, _)| {
                m.addr <= src.addr && src.addr + u64::from(src.size) <= m.addr + u64::from(m.size)
            }) {
                return *v;
            }
        }
        self.mem.join_range(src.range())
    }

    /// Applies one retired instruction of thread `tid` (call in global
    /// retirement order).
    pub fn on_instr(&mut self, tid: usize, rid: Rid, instr: &Instr) {
        match self.kind {
            LifeguardKind::TaintCheck | LifeguardKind::MemCheck => {
                self.dataflow_instr(tid, rid, instr)
            }
            LifeguardKind::AddrCheck => { /* checks do not mutate metadata */ }
            LifeguardKind::LockSet | LifeguardKind::HappensBefore => unreachable!(),
        }
    }

    fn dataflow_instr(&mut self, tid: usize, rid: Rid, instr: &Instr) {
        match *instr {
            Instr::Load { dst, src } => {
                self.regs[tid][dst.index()] = self.mem_value(tid, src);
            }
            Instr::Store { dst, src } => {
                let v = self.regs[tid][src.index()];
                if self.tso {
                    self.pending[tid].push_back((rid, dst, v));
                } else {
                    self.mem.set_range(dst.range(), v);
                }
            }
            Instr::MovRR { dst, src } | Instr::Alu1 { dst, a: src } => {
                self.regs[tid][dst.index()] = self.regs[tid][src.index()];
            }
            Instr::MovRI { dst } => self.regs[tid][dst.index()] = 0,
            Instr::Alu2 { dst, a, b } => {
                self.regs[tid][dst.index()] = self.regs[tid][a.index()] | self.regs[tid][b.index()];
            }
            Instr::AluMem { dst, a, src } => {
                self.regs[tid][dst.index()] = self.regs[tid][a.index()] | self.mem_value(tid, src);
            }
            Instr::JmpReg { .. } | Instr::Nop => {}
            Instr::Rmw { mem, reg } => {
                let m = self.mem_value(tid, mem);
                let r = self.regs[tid][reg.index()];
                if self.tso {
                    // RMW drains the buffer (fence) before executing.
                    self.drain_all(tid);
                    self.mem.set_range(mem.range(), r);
                } else {
                    self.mem.set_range(mem.range(), r);
                }
                self.regs[tid][reg.index()] = m;
            }
        }
    }

    /// Applies the metadata effect of thread `tid`'s store `rid` draining to
    /// the cache (TSO only; call in global drain order).
    pub fn on_store_drain(&mut self, tid: usize, rid: Rid) {
        debug_assert!(self.tso, "drains only exist under TSO");
        if self.kind == LifeguardKind::AddrCheck {
            return;
        }
        // FIFO drains: the front entry must be `rid`.
        if let Some((front_rid, mem, v)) = self.pending[tid].pop_front() {
            debug_assert_eq!(front_rid, rid, "stores drain in order");
            self.mem.set_range(mem.range(), v);
        }
    }

    /// Drains every pending store of `tid` (fences, thread end).
    pub fn drain_all(&mut self, tid: usize) {
        while let Some((_, mem, v)) = self.pending[tid].pop_front() {
            self.mem.set_range(mem.range(), v);
        }
    }

    /// Applies a high-level event's metadata effect at its global-order
    /// point (the issuer's broadcast step). Updates fire at the phase the
    /// lifeguards apply them: malloc at End, free at Begin, `read()` at End.
    pub fn on_high_level(
        &mut self,
        what: HighLevelKind,
        phase: paralog_events::CaPhase,
        range: Option<AddrRange>,
    ) {
        use paralog_events::CaPhase;
        let Some(range) = range else { return };
        match (self.kind, what, phase) {
            (LifeguardKind::TaintCheck, HighLevelKind::Malloc, CaPhase::End) => {
                self.mem.set_range(range, 0);
            }
            (
                LifeguardKind::TaintCheck,
                HighLevelKind::Syscall(SyscallKind::ReadInput),
                CaPhase::End,
            ) => {
                self.mem.set_range(range, TAINTED);
            }
            (LifeguardKind::MemCheck, HighLevelKind::Malloc, CaPhase::End)
            | (LifeguardKind::MemCheck, HighLevelKind::Free, CaPhase::Begin) => {
                self.mem.set_range(range, UNDEFINED);
            }
            (LifeguardKind::AddrCheck, HighLevelKind::Malloc, CaPhase::End) => {
                self.mem.set_range(range, 1);
            }
            (LifeguardKind::AddrCheck, HighLevelKind::Free, CaPhase::Begin) => {
                self.mem.set_range(range, 0);
            }
            _ => {}
        }
    }

    /// Sorted dump of non-clean shadow bytes (debugging aid).
    pub fn dump(&self) -> Vec<(u64, u8)> {
        let mut v: Vec<(u64, u8)> = self.mem.iter_nonzero().collect();
        v.sort_unstable();
        v
    }

    /// Fingerprint compatible with the lifeguards' (memory shadow only).
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        for (addr, v) in self.mem.iter_nonzero() {
            fp.mix(addr, u64::from(v));
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::Reg;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn sc_taint_propagation_matches_lifeguard_semantics() {
        let mut rf = Reference::new(LifeguardKind::TaintCheck, 1, false);
        rf.on_high_level(
            HighLevelKind::Syscall(SyscallKind::ReadInput),
            paralog_events::CaPhase::End,
            Some(AddrRange::new(0x100, 8)),
        );
        rf.on_instr(
            0,
            Rid(1),
            &Instr::Load {
                dst: r(0),
                src: MemRef::new(0x100, 4),
            },
        );
        rf.on_instr(
            0,
            Rid(2),
            &Instr::Store {
                dst: MemRef::new(0x200, 4),
                src: r(0),
            },
        );
        assert_eq!(rf.mem.join_range(AddrRange::new(0x200, 4)), TAINTED);
    }

    #[test]
    fn tso_store_defers_until_drain() {
        let mut rf = Reference::new(LifeguardKind::TaintCheck, 2, true);
        rf.mem.set_range(AddrRange::new(0x100, 4), TAINTED);
        rf.on_instr(
            0,
            Rid(1),
            &Instr::Load {
                dst: r(0),
                src: MemRef::new(0x100, 4),
            },
        );
        rf.on_instr(
            0,
            Rid(2),
            &Instr::Store {
                dst: MemRef::new(0x200, 4),
                src: r(0),
            },
        );
        // Thread 1 reads before the drain: old (clean) metadata.
        rf.on_instr(
            1,
            Rid(1),
            &Instr::Load {
                dst: r(1),
                src: MemRef::new(0x200, 4),
            },
        );
        assert_eq!(rf.regs[1][1], 0);
        rf.on_store_drain(0, Rid(2));
        rf.on_instr(
            1,
            Rid(2),
            &Instr::Load {
                dst: r(1),
                src: MemRef::new(0x200, 4),
            },
        );
        assert_eq!(rf.regs[1][1], TAINTED);
    }

    #[test]
    fn tso_forwarding_sees_own_pending_store() {
        let mut rf = Reference::new(LifeguardKind::TaintCheck, 1, true);
        rf.mem.set_range(AddrRange::new(0x100, 4), TAINTED);
        rf.on_instr(
            0,
            Rid(1),
            &Instr::Load {
                dst: r(0),
                src: MemRef::new(0x100, 4),
            },
        );
        rf.on_instr(
            0,
            Rid(2),
            &Instr::Store {
                dst: MemRef::new(0x200, 4),
                src: r(0),
            },
        );
        // Load of own pending store forwards the tainted value.
        rf.on_instr(
            0,
            Rid(3),
            &Instr::Load {
                dst: r(2),
                src: MemRef::new(0x200, 4),
            },
        );
        assert_eq!(
            rf.regs[0][2], TAINTED,
            "forwarded load takes pending metadata"
        );
    }

    #[test]
    fn addrcheck_reference_tracks_allocation_only() {
        let mut rf = Reference::new(LifeguardKind::AddrCheck, 1, false);
        let range = AddrRange::new(0x1000, 64);
        rf.on_high_level(
            HighLevelKind::Malloc,
            paralog_events::CaPhase::End,
            Some(range),
        );
        let before = rf.fingerprint();
        // Instructions do not change AddrCheck metadata.
        rf.on_instr(
            0,
            Rid(1),
            &Instr::Store {
                dst: MemRef::new(0x1000, 4),
                src: r(0),
            },
        );
        assert_eq!(rf.fingerprint(), before);
        rf.on_high_level(
            HighLevelKind::Free,
            paralog_events::CaPhase::Begin,
            Some(range),
        );
        assert_ne!(rf.fingerprint(), before);
    }

    #[test]
    #[should_panic(expected = "race lifeguards")]
    fn lockset_reference_rejected() {
        let _ = Reference::new(LifeguardKind::LockSet, 1, false);
    }

    #[test]
    #[should_panic(expected = "race lifeguards")]
    fn happensbefore_reference_rejected() {
        let _ = Reference::new(LifeguardKind::HappensBefore, 1, false);
    }
}
