//! Run metrics: everything Figures 6–8 are built from.
//!
//! Figure 7 decomposes lifeguard time into *useful work*, *waiting for
//! dependence* and *waiting for application*; the application side
//! symmetrically splits into execution, log-full stalls, synchronization and
//! syscall-containment stalls. All counters are simulated cycles.

use paralog_accel::{IfStats, ItStats, MtlbStats};
use paralog_lifeguards::{SessionEvent, Violation};
use paralog_order::CaptureStats;

/// Cycle buckets of one application thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppBuckets {
    /// Executing instructions (incl. memory latency).
    pub exec: u64,
    /// Stalled because the log buffer was full.
    pub log_stall: u64,
    /// Stalled on application synchronization (locks, barriers).
    pub sync_stall: u64,
    /// Stalled at a system call waiting for the lifeguard (damage
    /// containment).
    pub syscall_stall: u64,
    /// Stalled on a full store buffer (TSO).
    pub sb_stall: u64,
}

impl AppBuckets {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.exec + self.log_stall + self.sync_stall + self.syscall_stall + self.sb_stall
    }
}

/// Cycle buckets of one lifeguard thread (Figure 7's decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LgBuckets {
    /// Processing delivered events (handler + metadata accesses).
    pub useful: u64,
    /// Stalled on unmet dependence arcs, CA barriers or pending versions.
    pub wait_dependence: u64,
    /// Stalled on an empty log buffer (application not producing).
    pub wait_application: u64,
}

impl LgBuckets {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.useful + self.wait_dependence + self.wait_application
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Application thread count.
    pub app_threads: usize,
    /// Completion time of the application side (cycles).
    pub app_finish: u64,
    /// Completion time of the lifeguard side (cycles; 0 when unmonitored).
    pub lg_finish: u64,
    /// Per-application-thread buckets.
    pub app: Vec<AppBuckets>,
    /// Per-lifeguard-thread buckets.
    pub lifeguard: Vec<LgBuckets>,
    /// Event records produced across all threads.
    pub records: u64,
    /// Metadata ops delivered to handlers.
    pub delivered_ops: u64,
    /// Order-capture statistics (arcs observed/recorded/reduced).
    pub capture: CaptureStats,
    /// Dependence-stall episodes at lifeguards.
    pub dependence_stalls: u64,
    /// Aggregated Inheritance Tracking statistics.
    pub it: ItStats,
    /// Aggregated Idempotent Filter statistics.
    pub ifilter: IfStats,
    /// Aggregated Metadata-TLB statistics.
    pub mtlb: MtlbStats,
    /// ConflictAlert broadcasts issued.
    pub ca_broadcasts: u64,
    /// TSO metadata versions produced.
    pub versions_produced: u64,
    /// TSO metadata versions consumed.
    pub versions_consumed: u64,
    /// Violations reported by the lifeguards.
    pub violations: Vec<Violation>,
    /// Final metadata fingerprint (equivalence testing).
    pub fingerprint: u64,
    /// Fingerprint of the in-line sequential reference, when enabled.
    pub reference_fingerprint: Option<u64>,
    /// Debug dump of non-clean shadow bytes `(addr, value)` (sorted), when
    /// [`MonitorConfig::dump_shadows`](crate::MonitorConfig) is set.
    pub shadow_dump: Option<Vec<(u64, u8)>>,
    /// Debug dump of the reference's non-clean shadow bytes.
    pub reference_dump: Option<Vec<(u64, u8)>>,
    /// Fully annotated per-thread event streams, when
    /// [`MonitorConfig::collect_streams`](crate::MonitorConfig) is set.
    pub streams: Option<Vec<Vec<paralog_events::EventRecord>>>,
    /// Non-fatal session diagnostics surfaced by the lifeguards (e.g. a
    /// [`SessionEvent::DegradedPrecision`] notice when an interner saturates
    /// and the analysis falls back to a sound over-approximation).
    pub events: Vec<SessionEvent>,
}

impl RunMetrics {
    /// End-to-end execution time: the application stalls when the log is
    /// full, so application and lifeguard finish together up to buffering
    /// (§2); the run ends when the *last* entity finishes.
    pub fn execution_cycles(&self) -> u64 {
        self.app_finish.max(self.lg_finish)
    }

    /// This run's slowdown relative to `baseline` execution time.
    ///
    /// # Panics
    ///
    /// Panics if `baseline_cycles` is zero.
    pub fn slowdown_vs(&self, baseline_cycles: u64) -> f64 {
        assert!(baseline_cycles > 0, "baseline must have run");
        self.execution_cycles() as f64 / baseline_cycles as f64
    }

    /// Sum of lifeguard buckets across threads.
    pub fn lifeguard_totals(&self) -> LgBuckets {
        let mut out = LgBuckets::default();
        for b in &self.lifeguard {
            out.useful += b.useful;
            out.wait_dependence += b.wait_dependence;
            out.wait_application += b.wait_application;
        }
        out
    }

    /// Whether the parallel run's final metadata matches the sequential
    /// reference (always true when the check was disabled).
    pub fn matches_reference(&self) -> bool {
        match self.reference_fingerprint {
            Some(r) => r == self.fingerprint,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_is_max_of_sides() {
        let m = RunMetrics {
            app_finish: 100,
            lg_finish: 140,
            ..Default::default()
        };
        assert_eq!(m.execution_cycles(), 140);
        assert!((m.slowdown_vs(70) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn totals_sum_buckets() {
        let m = RunMetrics {
            lifeguard: vec![
                LgBuckets {
                    useful: 10,
                    wait_dependence: 5,
                    wait_application: 1,
                },
                LgBuckets {
                    useful: 20,
                    wait_dependence: 0,
                    wait_application: 4,
                },
            ],
            ..Default::default()
        };
        let t = m.lifeguard_totals();
        assert_eq!(t.useful, 30);
        assert_eq!(t.wait_dependence, 5);
        assert_eq!(t.wait_application, 5);
        assert_eq!(t.total(), 40);
    }

    #[test]
    fn reference_match_semantics() {
        let mut m = RunMetrics {
            fingerprint: 7,
            ..Default::default()
        };
        assert!(m.matches_reference(), "no reference = vacuously true");
        m.reference_fingerprint = Some(7);
        assert!(m.matches_reference());
        m.reference_fingerprint = Some(8);
        assert!(!m.matches_reference());
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        let m = RunMetrics::default();
        let _ = m.slowdown_vs(0);
    }
}
