//! Run metrics: everything Figures 6–8 are built from.
//!
//! Figure 7 decomposes lifeguard time into *useful work*, *waiting for
//! dependence* and *waiting for application*; the application side
//! symmetrically splits into execution, log-full stalls, synchronization and
//! syscall-containment stalls. All counters are simulated cycles.

use paralog_accel::{IfStats, ItStats, MtlbStats};
use paralog_events::{EventPayload, EventRecord};
use paralog_lifeguards::{CostModel, SessionEvent, Violation};
use paralog_order::CaptureStats;

/// Transport throughput of the modeled log channel: one cycle moves this
/// many wire bytes (a 128-bit log-transfer port, matching the CA handler's
/// 16-byte range granularity).
pub const TRANSPORT_BYTES_PER_CYCLE: u64 = 16;

/// Figure-7-style *per-phase* timed breakdown of a captured-stream replay
/// under the DES cost model.
///
/// Where [`LgBuckets`] decomposes a co-simulated lifeguard's time by *why*
/// it was (or was not) making progress, this decomposes an **ingestion**
/// run — a raw or wire capture replayed through the lifeguard cores — by
/// *pipeline phase*:
///
/// * `capture` — draining records out of the log (per-record drain cost);
/// * `transport` — moving and decoding wire bytes (zero for raw streams:
///   an already-materialized capture has no transport to model);
/// * `order_wait` — stall polls on unmet §5.2 arcs, §5.4 CA serialization
///   and §5.5 unproduced versions;
/// * `analysis` — handler work per delivered record (dispatch, handler
///   body, metadata address walk, CA range painting);
/// * `publish` — §5.5 version production and §5.2 progress advertisement.
///
/// All values are simulated cycles from the session's
/// [`CostModel`]; phases are disjoint by construction, so
/// [`total`](Self::total) is the run's modeled execution time (mirrored
/// into [`RunMetrics::lg_finish`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Record-drain cycles (log consumption).
    pub capture: u64,
    /// Wire-byte movement/decode cycles; zero on raw replay.
    pub transport: u64,
    /// Stall-poll cycles on unmet ordering gates.
    pub order_wait: u64,
    /// Handler/analysis cycles per delivered record.
    pub analysis: u64,
    /// Version-produce and progress-advertise cycles.
    pub publish: u64,
}

impl PhaseBreakdown {
    /// Total modeled cycles: phases are disjoint, so this is their sum.
    pub fn total(&self) -> u64 {
        self.capture + self.order_wait + self.transport + self.analysis + self.publish
    }

    /// The (analysis, publish) cycle charge for ingesting one record into
    /// thread `t`'s lifeguard. Depends only on the record's *payload* —
    /// never on its transport form — which is what makes raw and wire
    /// replays of the same capture report identical analysis time.
    pub fn record_cycles(cost: &CostModel, rec: &EventRecord, t: usize) -> (u64, u64) {
        let analysis = match &rec.payload {
            EventPayload::Instr(instr) => {
                if instr.mem_access().is_some() {
                    cost.dispatch + cost.propagation_handler + cost.meta_addr_walk
                } else {
                    cost.dispatch
                }
            }
            EventPayload::Ca(ca) => {
                let mut c = cost.ca_handler;
                if ca.issuer.index() == t {
                    if let Some(range) = ca.range {
                        // The issuer's copy performs the range metadata
                        // update (taint the read() buffer, clear the
                        // allocation, ...).
                        c += cost.ca_per_16_bytes * range.len.div_ceil(16);
                    }
                }
                c
            }
        };
        // Publishing: one propagation-handler body per §5.5 version
        // snapshot produced, plus the progress-advertisement store.
        let publish = cost.propagation_handler * rec.produce_versions.len() as u64 + cost.dispatch;
        (analysis, publish)
    }

    /// Cycles to move `bytes` wire bytes through the modeled transport.
    pub fn transport_cycles(bytes: u64) -> u64 {
        bytes.div_ceil(TRANSPORT_BYTES_PER_CYCLE)
    }
}

/// Cycle buckets of one application thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppBuckets {
    /// Executing instructions (incl. memory latency).
    pub exec: u64,
    /// Stalled because the log buffer was full.
    pub log_stall: u64,
    /// Stalled on application synchronization (locks, barriers).
    pub sync_stall: u64,
    /// Stalled at a system call waiting for the lifeguard (damage
    /// containment).
    pub syscall_stall: u64,
    /// Stalled on a full store buffer (TSO).
    pub sb_stall: u64,
}

impl AppBuckets {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.exec + self.log_stall + self.sync_stall + self.syscall_stall + self.sb_stall
    }
}

/// Cycle buckets of one lifeguard thread (Figure 7's decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LgBuckets {
    /// Processing delivered events (handler + metadata accesses).
    pub useful: u64,
    /// Stalled on unmet dependence arcs, CA barriers or pending versions.
    pub wait_dependence: u64,
    /// Stalled on an empty log buffer (application not producing).
    pub wait_application: u64,
}

impl LgBuckets {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.useful + self.wait_dependence + self.wait_application
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Application thread count.
    pub app_threads: usize,
    /// Completion time of the application side (cycles).
    pub app_finish: u64,
    /// Completion time of the lifeguard side (cycles; 0 when unmonitored).
    pub lg_finish: u64,
    /// Per-application-thread buckets.
    pub app: Vec<AppBuckets>,
    /// Per-lifeguard-thread buckets.
    pub lifeguard: Vec<LgBuckets>,
    /// Event records produced across all threads.
    pub records: u64,
    /// Metadata ops delivered to handlers.
    pub delivered_ops: u64,
    /// Order-capture statistics (arcs observed/recorded/reduced).
    pub capture: CaptureStats,
    /// Dependence-stall episodes at lifeguards.
    pub dependence_stalls: u64,
    /// Aggregated Inheritance Tracking statistics.
    pub it: ItStats,
    /// Aggregated Idempotent Filter statistics.
    pub ifilter: IfStats,
    /// Aggregated Metadata-TLB statistics.
    pub mtlb: MtlbStats,
    /// ConflictAlert broadcasts issued.
    pub ca_broadcasts: u64,
    /// TSO metadata versions produced.
    pub versions_produced: u64,
    /// TSO metadata versions consumed.
    pub versions_consumed: u64,
    /// Violations reported by the lifeguards.
    pub violations: Vec<Violation>,
    /// Final metadata fingerprint (equivalence testing).
    pub fingerprint: u64,
    /// Fingerprint of the in-line sequential reference, when enabled.
    pub reference_fingerprint: Option<u64>,
    /// Debug dump of non-clean shadow bytes `(addr, value)` (sorted), when
    /// [`MonitorConfig::dump_shadows`](crate::MonitorConfig) is set.
    pub shadow_dump: Option<Vec<(u64, u8)>>,
    /// Debug dump of the reference's non-clean shadow bytes.
    pub reference_dump: Option<Vec<(u64, u8)>>,
    /// Fully annotated per-thread event streams, when
    /// [`MonitorConfig::collect_streams`](crate::MonitorConfig) is set.
    pub streams: Option<Vec<Vec<paralog_events::EventRecord>>>,
    /// Non-fatal session diagnostics surfaced by the lifeguards (e.g. a
    /// [`SessionEvent::DegradedPrecision`] notice when an interner saturates
    /// and the analysis falls back to a sound over-approximation).
    pub events: Vec<SessionEvent>,
    /// Per-phase timed breakdown when the run replayed *captured* streams
    /// (raw or wire) under the DES cycle model. `None` for co-simulated or
    /// wall-clock (threaded) runs, whose time is bucketed in
    /// [`lifeguard`](Self::lifeguard) instead.
    pub phases: Option<PhaseBreakdown>,
}

impl RunMetrics {
    /// End-to-end execution time: the application stalls when the log is
    /// full, so application and lifeguard finish together up to buffering
    /// (§2); the run ends when the *last* entity finishes.
    pub fn execution_cycles(&self) -> u64 {
        self.app_finish.max(self.lg_finish)
    }

    /// This run's slowdown relative to `baseline` execution time.
    ///
    /// # Panics
    ///
    /// Panics if `baseline_cycles` is zero.
    pub fn slowdown_vs(&self, baseline_cycles: u64) -> f64 {
        assert!(baseline_cycles > 0, "baseline must have run");
        self.execution_cycles() as f64 / baseline_cycles as f64
    }

    /// Sum of lifeguard buckets across threads.
    pub fn lifeguard_totals(&self) -> LgBuckets {
        let mut out = LgBuckets::default();
        for b in &self.lifeguard {
            out.useful += b.useful;
            out.wait_dependence += b.wait_dependence;
            out.wait_application += b.wait_application;
        }
        out
    }

    /// Whether the parallel run's final metadata matches the sequential
    /// reference (always true when the check was disabled).
    pub fn matches_reference(&self) -> bool {
        match self.reference_fingerprint {
            Some(r) => r == self.fingerprint,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{
        AddrRange, CaPhase, CaRecord, HighLevelKind, Instr, MemRef, Reg, Rid, ThreadId,
    };

    #[test]
    fn phase_total_sums_all_buckets() {
        let p = PhaseBreakdown {
            capture: 1,
            transport: 2,
            order_wait: 4,
            analysis: 8,
            publish: 16,
        };
        assert_eq!(p.total(), 31);
        assert_eq!(PhaseBreakdown::default().total(), 0);
    }

    #[test]
    fn record_cycles_follow_payload_shape() {
        let cost = CostModel::calibrated();
        let mem = EventRecord::instr(
            Rid(1),
            Instr::Load {
                dst: Reg::new(0),
                src: MemRef::new(0x100, 8),
            },
        );
        let (mem_analysis, mem_publish) = PhaseBreakdown::record_cycles(&cost, &mem, 0);
        assert_eq!(
            mem_analysis,
            cost.dispatch + cost.propagation_handler + cost.meta_addr_walk
        );
        assert_eq!(mem_publish, cost.dispatch, "no versions produced");

        let reg = EventRecord::instr(Rid(2), Instr::MovRI { dst: Reg::new(1) });
        let (reg_analysis, _) = PhaseBreakdown::record_cycles(&cost, &reg, 0);
        assert_eq!(
            reg_analysis, cost.dispatch,
            "register-only op skips the walk"
        );
    }

    #[test]
    fn ca_range_charges_only_the_issuer() {
        let cost = CostModel::calibrated();
        let ca = EventRecord::ca(
            Rid(3),
            CaRecord {
                what: HighLevelKind::Malloc,
                phase: CaPhase::End,
                range: Some(AddrRange::new(0x2000, 33)),
                issuer: ThreadId(1),
                issuer_rid: Rid(3),
                seq: 0,
            },
        );
        let (own, _) = PhaseBreakdown::record_cycles(&cost, &ca, 1);
        let (remote, _) = PhaseBreakdown::record_cycles(&cost, &ca, 0);
        assert_eq!(remote, cost.ca_handler, "remote copies only flush");
        assert_eq!(
            own,
            cost.ca_handler + cost.ca_per_16_bytes * 3,
            "33 bytes round up to three 16-byte chunks on the issuer's copy"
        );
    }

    #[test]
    fn transport_cycles_round_up() {
        assert_eq!(PhaseBreakdown::transport_cycles(0), 0);
        assert_eq!(PhaseBreakdown::transport_cycles(1), 1);
        assert_eq!(PhaseBreakdown::transport_cycles(16), 1);
        assert_eq!(PhaseBreakdown::transport_cycles(17), 2);
    }

    #[test]
    fn execution_is_max_of_sides() {
        let m = RunMetrics {
            app_finish: 100,
            lg_finish: 140,
            ..Default::default()
        };
        assert_eq!(m.execution_cycles(), 140);
        assert!((m.slowdown_vs(70) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn totals_sum_buckets() {
        let m = RunMetrics {
            lifeguard: vec![
                LgBuckets {
                    useful: 10,
                    wait_dependence: 5,
                    wait_application: 1,
                },
                LgBuckets {
                    useful: 20,
                    wait_dependence: 0,
                    wait_application: 4,
                },
            ],
            ..Default::default()
        };
        let t = m.lifeguard_totals();
        assert_eq!(t.useful, 30);
        assert_eq!(t.wait_dependence, 5);
        assert_eq!(t.wait_application, 5);
        assert_eq!(t.total(), 40);
    }

    #[test]
    fn reference_match_semantics() {
        let mut m = RunMetrics {
            fingerprint: 7,
            ..Default::default()
        };
        assert!(m.matches_reference(), "no reference = vacuously true");
        m.reference_fingerprint = Some(7);
        assert!(m.matches_reference());
        m.reference_fingerprint = Some(8);
        assert!(!m.matches_reference());
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        let m = RunMetrics::default();
        let _ = m.slowdown_vs(0);
    }
}
