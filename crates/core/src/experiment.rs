//! The evaluation harness: regenerates every table and figure of §7.
//!
//! Each `figure*` function runs the corresponding sweep and returns
//! structured rows; `render_*` turns them into the text tables the
//! `paralog-bench` binaries print. Absolute cycle counts differ from the
//! paper's Simics testbed; the claims under test are the *shapes* (see
//! EXPERIMENTS.md).

use crate::config::{MonitorConfig, MonitoringMode};
use crate::metrics::RunMetrics;
use crate::platform::Platform;
use paralog_lifeguards::LifeguardKind;
use paralog_order::{CapturePolicy, Reduction};
use paralog_sim::MachineConfig;
use paralog_workloads::{Benchmark, WorkloadSpec};
use std::fmt::Write as _;

/// Thread counts used throughout the evaluation (Figure 6's x-axis).
pub const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One benchmark × thread-count cell of Figure 6.
#[derive(Debug, Clone)]
pub struct Figure6Cell {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Application thread count.
    pub threads: usize,
    /// NO MONITORING execution cycles (k threads on 2k cores).
    pub no_monitoring: u64,
    /// TIMESLICED MONITORING execution cycles (2 cores).
    pub timesliced: u64,
    /// PARALLEL MONITORING execution cycles (2k cores).
    pub parallel: u64,
}

impl Figure6Cell {
    /// Execution time normalized to the 1-thread unmonitored run.
    pub fn normalized(&self, sequential_baseline: u64) -> (f64, f64, f64) {
        let b = sequential_baseline as f64;
        (
            self.no_monitoring as f64 / b,
            self.timesliced as f64 / b,
            self.parallel as f64 / b,
        )
    }

    /// Speedup of parallel over timesliced monitoring — the headline
    /// 5–126X claim.
    pub fn parallel_speedup(&self) -> f64 {
        self.timesliced as f64 / self.parallel as f64
    }
}

/// Figure 6 for one lifeguard: normalized execution time of the three
/// schemes across thread counts.
pub fn figure6(lifeguard: LifeguardKind, benchmarks: &[Benchmark], scale: f64) -> Vec<Figure6Cell> {
    let mut out = Vec::new();
    for &bench in benchmarks {
        for &k in &THREAD_COUNTS {
            let w = WorkloadSpec::benchmark(bench, k).scale(scale).build();
            let base = Platform::run(&w, &MonitorConfig::new(MonitoringMode::None, lifeguard));
            let ts = Platform::run(
                &w,
                &MonitorConfig::new(MonitoringMode::Timesliced, lifeguard),
            );
            let par = Platform::run(&w, &MonitorConfig::new(MonitoringMode::Parallel, lifeguard));
            out.push(Figure6Cell {
                benchmark: bench,
                threads: k,
                no_monitoring: base.metrics.execution_cycles(),
                timesliced: ts.metrics.execution_cycles(),
                parallel: par.metrics.execution_cycles(),
            });
        }
    }
    out
}

/// Renders Figure 6 rows as the paper's normalized series.
pub fn render_figure6(lifeguard: LifeguardKind, cells: &[Figure6Cell]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 6 ({lifeguard}): execution time normalized to 1-thread NO MONITORING"
    );
    let _ = writeln!(
        s,
        "{:<11} {:>3} | {:>12} {:>12} {:>12} | {:>9}",
        "benchmark", "k", "no-monitor", "timesliced", "parallel", "par-spdup"
    );
    let mut seq_base = 0;
    for c in cells {
        if c.threads == 1 {
            seq_base = c.no_monitoring;
            let _ = writeln!(s, "{:-<70}", "");
        }
        let (n, t, p) = c.normalized(seq_base);
        let _ = writeln!(
            s,
            "{:<11} {:>3} | {:>12.3} {:>12.3} {:>12.3} | {:>8.1}x",
            c.benchmark.label(),
            c.threads,
            n,
            t,
            p,
            c.parallel_speedup()
        );
    }
    s
}

/// One bar of Figure 7: slowdown vs. the same-thread-count unmonitored run,
/// decomposed into the three lifeguard time buckets.
#[derive(Debug, Clone)]
pub struct Figure7Bar {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Application thread count.
    pub threads: usize,
    /// Total slowdown (PARALLEL / NO-MONITORING at equal threads).
    pub slowdown: f64,
    /// Fraction of lifeguard time doing useful work.
    pub useful_fraction: f64,
    /// Fraction waiting on dependences (arcs, CA barriers, versions).
    pub wait_dependence_fraction: f64,
    /// Fraction waiting for the application to produce events.
    pub wait_application_fraction: f64,
}

/// Figure 7 for one lifeguard.
pub fn figure7(lifeguard: LifeguardKind, benchmarks: &[Benchmark], scale: f64) -> Vec<Figure7Bar> {
    let mut out = Vec::new();
    for &bench in benchmarks {
        for &k in &THREAD_COUNTS {
            let w = WorkloadSpec::benchmark(bench, k).scale(scale).build();
            let base = Platform::run(&w, &MonitorConfig::new(MonitoringMode::None, lifeguard));
            let par = Platform::run(&w, &MonitorConfig::new(MonitoringMode::Parallel, lifeguard));
            let buckets = par.metrics.lifeguard_totals();
            let total = buckets.total().max(1) as f64;
            out.push(Figure7Bar {
                benchmark: bench,
                threads: k,
                slowdown: par.metrics.slowdown_vs(base.metrics.execution_cycles()),
                useful_fraction: buckets.useful as f64 / total,
                wait_dependence_fraction: buckets.wait_dependence as f64 / total,
                wait_application_fraction: buckets.wait_application as f64 / total,
            });
        }
    }
    out
}

/// Renders Figure 7 bars.
pub fn render_figure7(lifeguard: LifeguardKind, bars: &[Figure7Bar]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 7 ({lifeguard}): slowdown vs same-thread-count application, with lifeguard time decomposition"
    );
    let _ = writeln!(
        s,
        "{:<11} {:>3} | {:>9} | {:>8} {:>9} {:>9}",
        "benchmark", "k", "slowdown", "useful", "wait-dep", "wait-app"
    );
    for b in bars {
        if b.threads == 1 {
            let _ = writeln!(s, "{:-<60}", "");
        }
        let _ = writeln!(
            s,
            "{:<11} {:>3} | {:>8.2}x | {:>7.1}% {:>8.1}% {:>8.1}%",
            b.benchmark.label(),
            b.threads,
            b.slowdown,
            b.useful_fraction * 100.0,
            b.wait_dependence_fraction * 100.0,
            b.wait_application_fraction * 100.0
        );
    }
    s
}

/// One benchmark group of Figure 8 (8 application threads).
#[derive(Debug, Clone)]
pub struct Figure8Group {
    /// Benchmark.
    pub benchmark: Benchmark,
    /// Slowdown without accelerators (aggressive dependence reduction).
    pub not_accelerated: f64,
    /// Slowdown with accelerators but the reduced-hardware per-core capture
    /// ("limited reduction"; TaintCheck only in the paper).
    pub accelerated_limited: f64,
    /// Slowdown with accelerators and per-block capture + transitive
    /// reduction ("aggressive reduction").
    pub accelerated_aggressive: f64,
}

impl Figure8Group {
    /// Speedup delivered by the accelerators (not-accelerated over
    /// accelerated-aggressive) — the 2–9X / 1.13–3.4X claims.
    pub fn accelerator_speedup(&self) -> f64 {
        self.not_accelerated / self.accelerated_aggressive
    }
}

/// Figure 8 for one lifeguard at 8 application threads.
pub fn figure8(
    lifeguard: LifeguardKind,
    benchmarks: &[Benchmark],
    scale: f64,
) -> Vec<Figure8Group> {
    let k = 8;
    let mut out = Vec::new();
    for &bench in benchmarks {
        let w = WorkloadSpec::benchmark(bench, k).scale(scale).build();
        let base = Platform::run(&w, &MonitorConfig::new(MonitoringMode::None, lifeguard));
        let b = base.metrics.execution_cycles();
        let noacc = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::Parallel, lifeguard).without_accelerators(),
        );
        let limited = Platform::run(
            &w,
            &MonitorConfig::new(MonitoringMode::Parallel, lifeguard)
                .with_capture(CapturePolicy::PerCore, Reduction::Direct),
        );
        let aggressive =
            Platform::run(&w, &MonitorConfig::new(MonitoringMode::Parallel, lifeguard));
        out.push(Figure8Group {
            benchmark: bench,
            not_accelerated: noacc.metrics.slowdown_vs(b),
            accelerated_limited: limited.metrics.slowdown_vs(b),
            accelerated_aggressive: aggressive.metrics.slowdown_vs(b),
        });
    }
    out
}

/// Renders Figure 8 groups.
pub fn render_figure8(lifeguard: LifeguardKind, groups: &[Figure8Group]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "Figure 8 ({lifeguard}): slowdown at 8 threads, accelerator & capture variants"
    );
    let _ = writeln!(
        s,
        "{:<11} | {:>10} {:>13} {:>13} | {:>10}",
        "benchmark", "no-accel", "accel(ltd)", "accel(aggr)", "accel-gain"
    );
    let _ = writeln!(s, "{:-<68}", "");
    for g in groups {
        let _ = writeln!(
            s,
            "{:<11} | {:>9.2}x {:>12.2}x {:>12.2}x | {:>9.2}x",
            g.benchmark.label(),
            g.not_accelerated,
            g.accelerated_limited,
            g.accelerated_aggressive,
            g.accelerator_speedup()
        );
    }
    s
}

/// Renders Table 1: the simulated machine and benchmark inputs.
pub fn table1() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Table 1: Experimental Setup");
    let _ = writeln!(s, "--- Simulator description ---");
    let _ = writeln!(s, "Simulator       : paralog-sim deterministic CMP model");
    let _ = writeln!(
        s,
        "Extensions      : log capture and dispatch; FDR/RTR order capture"
    );
    let _ = writeln!(s, "--- Simulation parameters (per core count) ---");
    for cores in [4usize, 8, 16] {
        let m = MachineConfig::paper(cores);
        let _ = writeln!(s, "[{} cores]", cores);
        let _ = write!(s, "{m}");
    }
    let _ = writeln!(s, "log buffer      : 64KB, ~1B per compressed record");
    let _ = writeln!(
        s,
        "--- Benchmarks (paper inputs -> synthetic equivalents) ---"
    );
    for b in Benchmark::all() {
        let spec = WorkloadSpec::benchmark(b, 8);
        let _ = writeln!(
            s,
            "{:<11} paper: {:<26} model: {} idiom slots/thread, {}KB private, {}KB shared{}",
            b.label(),
            b.paper_input(),
            spec.ops_per_thread,
            spec.private_bytes / 1024,
            spec.shared_words * 8 / 1024,
            if spec.malloc_every.is_some() {
                ", malloc churn"
            } else {
                ""
            }
        );
    }
    s
}

/// The §7 headline numbers, extracted from already-computed figure data.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// Range of parallel-over-timesliced speedups at 8 threads.
    pub speedup_over_timesliced: (f64, f64),
    /// Average monitoring overhead (slowdown − 1) at 8 threads.
    pub average_overhead_8t: f64,
    /// Range of accelerator speedups.
    pub accelerator_speedup: (f64, f64),
}

/// Extracts the headline claims for one lifeguard.
pub fn headline(cells: &[Figure6Cell], groups: &[Figure8Group]) -> Headline {
    let mut spd_min = f64::MAX;
    let mut spd_max = 0.0f64;
    let mut overhead_sum = 0.0;
    let mut overhead_n = 0;
    for c in cells.iter().filter(|c| c.threads == 8) {
        let spd = c.parallel_speedup();
        spd_min = spd_min.min(spd);
        spd_max = spd_max.max(spd);
        overhead_sum += c.parallel as f64 / c.no_monitoring as f64 - 1.0;
        overhead_n += 1;
    }
    let mut acc_min = f64::MAX;
    let mut acc_max = 0.0f64;
    for g in groups {
        let a = g.accelerator_speedup();
        acc_min = acc_min.min(a);
        acc_max = acc_max.max(a);
    }
    Headline {
        speedup_over_timesliced: (spd_min, spd_max),
        average_overhead_8t: if overhead_n > 0 {
            overhead_sum / overhead_n as f64
        } else {
            0.0
        },
        accelerator_speedup: (acc_min, acc_max),
    }
}

/// Runs one configuration and returns its metrics (ablation helper).
pub fn run_once(
    bench: Benchmark,
    threads: usize,
    scale: f64,
    config: &MonitorConfig,
) -> RunMetrics {
    let w = WorkloadSpec::benchmark(bench, threads).scale(scale).build();
    Platform::run(&w, config).metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_small_smoke() {
        let cells = figure6(LifeguardKind::AddrCheck, &[Benchmark::Lu], 0.03);
        assert_eq!(cells.len(), THREAD_COUNTS.len());
        for c in &cells {
            assert!(c.parallel > 0 && c.timesliced > 0 && c.no_monitoring > 0);
        }
        // At 8 threads parallel must beat timesliced decisively.
        let c8 = cells.iter().find(|c| c.threads == 8).expect("has k=8");
        assert!(
            c8.parallel_speedup() > 1.5,
            "got {:.2}",
            c8.parallel_speedup()
        );
        let rendered = render_figure6(LifeguardKind::AddrCheck, &cells);
        assert!(rendered.contains("LU"));
    }

    #[test]
    fn figure7_fractions_sum_to_one() {
        let bars = figure7(LifeguardKind::TaintCheck, &[Benchmark::Swaptions], 0.03);
        for b in &bars {
            let sum = b.useful_fraction + b.wait_dependence_fraction + b.wait_application_fraction;
            assert!((sum - 1.0).abs() < 1e-9, "fractions sum to 1, got {sum}");
            assert!(b.slowdown >= 0.9);
        }
        assert!(render_figure7(LifeguardKind::TaintCheck, &bars).contains("SWAPTIONS"));
    }

    #[test]
    fn figure8_accelerators_help() {
        let groups = figure8(LifeguardKind::TaintCheck, &[Benchmark::Barnes], 0.03);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert!(
            g.accelerator_speedup() > 1.0,
            "accelerators must help TaintCheck on BARNES, got {:.2}",
            g.accelerator_speedup()
        );
        assert!(render_figure8(LifeguardKind::TaintCheck, &groups).contains("BARNES"));
    }

    #[test]
    fn table1_mentions_all_benchmarks() {
        let t = table1();
        for b in Benchmark::all() {
            assert!(t.contains(b.label()), "missing {b}");
        }
        assert!(t.contains("64KB"));
    }

    #[test]
    fn headline_extraction() {
        let cells = vec![Figure6Cell {
            benchmark: Benchmark::Lu,
            threads: 8,
            no_monitoring: 100,
            timesliced: 1000,
            parallel: 150,
        }];
        let groups = vec![Figure8Group {
            benchmark: Benchmark::Lu,
            not_accelerated: 4.0,
            accelerated_limited: 2.0,
            accelerated_aggressive: 1.5,
        }];
        let h = headline(&cells, &groups);
        assert!((h.speedup_over_timesliced.0 - 1000.0 / 150.0).abs() < 1e-9);
        assert!((h.average_overhead_8t - 0.5).abs() < 1e-9);
        assert!((h.accelerator_speedup.0 - 4.0 / 1.5).abs() < 1e-9);
    }
}
