//! Application-side stepping: instruction retirement, event capture, order
//! capture, store-buffer drains, ConflictAlert broadcasts and the blocking
//! protocol (log backpressure, locks, barriers, damage containment).

use super::{Block, Sim};
use crate::config::MonitoringMode;
use paralog_events::{
    AccessKind, AddrRange, ArcList, CaPhase, CaRecord, EventRecord, HighLevelKind, Instr, MemRef,
    Op, ProduceList, Rid, ThreadId, VersionId,
};
use paralog_sim::sync::{barrier_flag, barrier_slot, SYNC_BASE};
use paralog_sim::{BarrierOutcome, LockAttempt};

/// Staging headroom beyond the store buffer (records held while stores are
/// pending plus a burst allowance for CA insertions).
const STAGING_CAP: usize = 64;

/// Cycles charged to the allocator library for a malloc/free call.
const ALLOC_LIB_CYCLES: u64 = 150;

/// Cycles the kernel spends in a modeled system call.
const SYSCALL_KERNEL_CYCLES: u64 = 300;

/// Timesliced scheduling quantum, in operations.
pub(super) const TS_QUANTUM_OPS: u32 = 5_000;

/// Context-switch penalty in timesliced mode, in cycles.
const TS_SWITCH_CYCLES: u64 = 1_000;

impl<'w> Sim<'w> {
    /// One step of application thread `tid` (parallel / no-monitoring
    /// modes: entity index == tid).
    pub(super) fn step_app(&mut self, tid: usize) {
        let now = self.sched.clock(tid);
        self.drain_due_stores(tid, now);
        self.flush_staging(tid);

        if self.app[tid].finished {
            self.sched.finish(tid);
            return;
        }
        if let Some(block) = self.app[tid].blocked {
            self.service_block(tid, block);
            return;
        }
        if self.app[tid].pc >= self.workload.threads[tid].len() {
            self.finish_app_thread(tid);
            return;
        }
        let op = self.workload.threads[tid][self.app[tid].pc];
        self.execute_op(tid, op);
    }

    /// One step of the timesliced application multiplexer (entity 0).
    pub(super) fn step_timesliced_app(&mut self) {
        // Find a runnable thread, starting at the current one.
        for probe in 0..self.k {
            let tid = (self.ts_current + probe) % self.k;
            if self.app[tid].finished {
                continue;
            }
            if let Some(block) = self.app[tid].blocked {
                if !self.block_resolved(tid, block) {
                    continue;
                }
                self.app[tid].blocked = None;
                self.resume_from_block(tid, block);
            }
            if probe != 0 {
                // Context switch.
                self.sched.advance(0, TS_SWITCH_CYCLES);
                self.ts_current = tid;
                self.ts_quantum_left = TS_QUANTUM_OPS;
            }
            if self.app[tid].pc >= self.workload.threads[tid].len() {
                self.app[tid].finished = true;
                if self.app.iter().all(|a| a.finished) {
                    self.rings[0].close();
                    self.sched.finish(0);
                }
                return;
            }
            let op = self.workload.threads[tid][self.app[tid].pc];
            self.execute_op(tid, op);
            if self.ts_quantum_left == 0 {
                self.ts_current = (tid + 1) % self.k;
                self.ts_quantum_left = TS_QUANTUM_OPS;
            } else {
                self.ts_quantum_left -= 1;
                self.ts_current = tid;
            }
            return;
        }
        // Everyone blocked or finished.
        if self.app.iter().all(|a| a.finished) {
            self.rings[0].close();
            self.sched.finish(0);
            return;
        }
        let quantum = self.machine.poll_quantum;
        self.sched.advance(0, quantum);
        let cur = self.ts_current;
        self.app[cur].buckets.sync_stall += quantum;
    }

    // --- blocking -------------------------------------------------------

    fn block_resolved(&mut self, tid: usize, block: Block) -> bool {
        match block {
            Block::LogFull => {
                self.flush_staging(tid);
                self.app[tid].staging.len() < STAGING_CAP && !self.ring_of(tid).is_full()
            }
            Block::Lock(lock, _) => self.locks.owner(lock).is_none(),
            Block::Barrier(b, target) => self.barriers.generation(b) >= target,
            Block::Syscall => !self.config.damage_containment || self.records_drained(tid),
            Block::StoreBufferFull => self.app[tid]
                .sb
                .as_ref()
                .map(|sb| !sb.is_full())
                .unwrap_or(true),
        }
    }

    /// Work performed when a block lifts (parallel mode runs this from
    /// `service_block`, timesliced from the multiplexer).
    fn resume_from_block(&mut self, tid: usize, block: Block) {
        match block {
            Block::Lock(lock, addr) => {
                // The lock is free: acquire and retire the RMW.
                let att = self.locks.acquire(lock, tid);
                assert_eq!(
                    att,
                    LockAttempt::Acquired,
                    "resolved block implies free lock"
                );
                self.retire_lock_acquire(tid, lock, addr);
            }
            Block::Barrier(b, _) => {
                // Released: read the flag word (RAW arc from the releaser).
                let flag = barrier_flag(b);
                let lat = self.retire_instr(
                    tid,
                    Instr::Load {
                        dst: paralog_events::Reg(15),
                        src: MemRef::new(flag, 8),
                    },
                );
                self.app[tid].buckets.exec += lat;
                self.sched_advance_app(tid, lat);
            }
            Block::Syscall => {
                // Lifeguard caught up: run the kernel part, then CA-End.
                let (kind, buf) = self.app[tid]
                    .syscall_cont
                    .take()
                    .expect("syscall in flight");
                self.app[tid].buckets.exec += SYSCALL_KERNEL_CYCLES;
                self.sched_advance_app(tid, SYSCALL_KERNEL_CYCLES);
                self.broadcast_ca(tid, HighLevelKind::Syscall(kind), CaPhase::End, buf);
            }
            Block::LogFull | Block::StoreBufferFull => {}
        }
    }

    fn service_block(&mut self, tid: usize, block: Block) {
        if self.block_resolved(tid, block) {
            self.app[tid].blocked = None;
            self.resume_from_block(tid, block);
            return;
        }
        // Still blocked: charge a poll quantum to the right bucket.
        let q = self.machine.poll_quantum;
        match block {
            Block::LogFull => self.app[tid].buckets.log_stall += q,
            Block::Lock(..) | Block::Barrier(..) => self.app[tid].buckets.sync_stall += q,
            Block::Syscall => self.app[tid].buckets.syscall_stall += q,
            Block::StoreBufferFull => {
                // Jump straight to the next drain instead of spinning.
                let now = self.sched.clock(tid);
                let next = self.app[tid]
                    .sb
                    .as_ref()
                    .and_then(|sb| sb.next_drain_at())
                    .unwrap_or(now + q)
                    .max(now + 1);
                self.app[tid].buckets.sb_stall += next - now;
                self.sched.advance_to(tid, next);
                return;
            }
        }
        self.sched_advance_app(tid, q);
    }

    fn finish_app_thread(&mut self, tid: usize) {
        // Drain any pending stores first (TSO), then the staging buffer.
        if let Some(next) = self.app[tid].sb.as_ref().and_then(|sb| sb.next_drain_at()) {
            let now = self.sched.clock(tid);
            self.sched.advance_to(tid, next.max(now + 1));
            return; // drains happen at the top of the next step
        }
        self.flush_staging(tid);
        if !self.app[tid].staging.is_empty() {
            let q = self.machine.poll_quantum;
            self.app[tid].buckets.log_stall += q;
            self.sched_advance_app(tid, q);
            return;
        }
        self.app[tid].finished = true;
        if self.config.mode == MonitoringMode::Parallel {
            self.rings[tid].close();
        }
        if let Some(r) = self.reference.as_mut() {
            r.drain_all(tid);
        }
        self.sched.finish(tid);
    }

    // --- op execution ---------------------------------------------------

    fn execute_op(&mut self, tid: usize, op: Op) {
        // Backpressure: every op may produce a record; require headroom.
        if self.monitored() {
            self.flush_staging(tid);
            if self.app[tid].staging.len() >= STAGING_CAP
                || (self.app[tid].sb.is_none() && self.ring_of(tid).is_full())
            {
                self.app[tid].blocked = Some(Block::LogFull);
                let q = self.machine.poll_quantum;
                self.app[tid].buckets.log_stall += q;
                self.sched_advance_app(tid, q);
                return;
            }
        }
        match op {
            Op::Instr(instr) => {
                // TSO: a full store buffer stalls stores.
                if let Some((_, kind)) = instr.mem_access() {
                    if kind == AccessKind::Write {
                        if let Some(sb) = self.app[tid].sb.as_ref() {
                            if sb.is_full() {
                                self.app[tid].blocked = Some(Block::StoreBufferFull);
                                return;
                            }
                        }
                    }
                }
                let lat = self.retire_instr(tid, instr);
                self.app[tid].buckets.exec += lat;
                self.sched_advance_app(tid, lat);
                self.app[tid].pc += 1;
            }
            Op::Malloc { range } => {
                self.app[tid].pc += 1;
                self.app[tid].buckets.exec += ALLOC_LIB_CYCLES;
                self.sched_advance_app(tid, ALLOC_LIB_CYCLES);
                self.broadcast_ca(tid, HighLevelKind::Malloc, CaPhase::End, Some(range));
            }
            Op::Free { range } => {
                self.app[tid].pc += 1;
                self.app[tid].buckets.exec += ALLOC_LIB_CYCLES;
                self.sched_advance_app(tid, ALLOC_LIB_CYCLES);
                self.broadcast_ca(tid, HighLevelKind::Free, CaPhase::Begin, Some(range));
            }
            Op::Lock { lock, addr } => {
                self.app[tid].pc += 1;
                match self.locks.acquire(lock, tid) {
                    LockAttempt::Acquired => self.retire_lock_acquire(tid, lock, addr),
                    LockAttempt::Contended(_) => {
                        self.app[tid].blocked = Some(Block::Lock(lock, addr));
                        let q = self.machine.poll_quantum;
                        self.app[tid].buckets.sync_stall += q;
                        self.sched_advance_app(tid, q);
                    }
                }
            }
            Op::Unlock { lock, addr } => {
                self.app[tid].pc += 1;
                self.emit_own_ca(tid, HighLevelKind::Unlock(lock), CaPhase::Begin, None);
                let lat = self.retire_instr(
                    tid,
                    Instr::Store {
                        dst: MemRef::new(addr, 8),
                        src: paralog_events::Reg(15),
                    },
                );
                // The release store must be globally visible before the next
                // owner's RMW can succeed (it reads the unlocked value), so a
                // TSO buffer drains here — otherwise the capture would order
                // the handoff backwards (acquirer's RMW before the release
                // store via a WAW arc) and order-sensitive lifeguards would
                // miss the synchronization edge.
                self.drain_all_stores(tid);
                self.locks.release(lock, tid);
                self.app[tid].buckets.exec += lat;
                self.sched_advance_app(tid, lat);
            }
            Op::Barrier { barrier } => {
                self.app[tid].pc += 1;
                // Arrival: write our slot word.
                let slot = barrier_slot(barrier, tid);
                let lat = self.retire_instr(
                    tid,
                    Instr::Store {
                        dst: MemRef::new(slot, 8),
                        src: paralog_events::Reg(15),
                    },
                );
                // Barrier arrival is a release fence: the slot store (and
                // every pre-barrier store) must be visible before the
                // releaser reads the slots, or the capture would order the
                // releaser's read before the arrival.
                self.drain_all_stores(tid);
                self.app[tid].buckets.exec += lat;
                self.sched_advance_app(tid, lat);
                match self.barriers.arrive(barrier, tid) {
                    BarrierOutcome::Wait => {
                        let target = self.barriers.generation(barrier) + 1;
                        self.app[tid].blocked = Some(Block::Barrier(barrier, target));
                    }
                    BarrierOutcome::Release => {
                        // Read every slot (arcs from all arrivals), write the
                        // flag (waiters read it on wake-up).
                        let mut total = 0;
                        for t in 0..self.k {
                            if t == tid {
                                continue;
                            }
                            total += self.retire_instr(
                                tid,
                                Instr::Load {
                                    dst: paralog_events::Reg(15),
                                    src: MemRef::new(barrier_slot(barrier, t), 8),
                                },
                            );
                        }
                        total += self.retire_instr(
                            tid,
                            Instr::Store {
                                dst: MemRef::new(barrier_flag(barrier), 8),
                                src: paralog_events::Reg(15),
                            },
                        );
                        // The flag store must be visible before any waiter
                        // can read it (waiters wake on the generation bump
                        // below); drain so their flag loads collect a proper
                        // release→waiter arc instead of a reversed one.
                        self.drain_all_stores(tid);
                        self.barriers.release(barrier);
                        self.app[tid].buckets.exec += total;
                        self.sched_advance_app(tid, total);
                    }
                }
            }
            Op::Syscall { kind, buf } => {
                self.app[tid].pc += 1;
                self.broadcast_ca(tid, HighLevelKind::Syscall(kind), CaPhase::Begin, buf);
                self.app[tid].syscall_cont = Some((kind, buf));
                self.app[tid].blocked = Some(Block::Syscall);
            }
        }
    }

    fn retire_lock_acquire(&mut self, tid: usize, lock: paralog_events::LockId, addr: u64) {
        // x86 locked RMW: drains the store buffer (fence), then accesses.
        self.drain_all_stores(tid);
        let lat = self.retire_instr(
            tid,
            Instr::Rmw {
                mem: MemRef::new(addr, 8),
                reg: paralog_events::Reg(15),
            },
        );
        self.app[tid].buckets.exec += lat;
        self.sched_advance_app(tid, lat);
        self.emit_own_ca(tid, HighLevelKind::Lock(lock), CaPhase::End, None);
    }

    /// Retires one instruction: memory access (with order capture), record
    /// creation and the reference hook. Returns the latency.
    fn retire_instr(&mut self, tid: usize, instr: Instr) -> u64 {
        let rid = self.app[tid].rid.next();
        self.app[tid].rid = rid;
        let core = self.app[tid].core;
        self.mem.set_core_rid(core, rid);

        let mut record = self.monitored().then(|| EventRecord::instr(rid, instr));
        let latency = match instr.mem_access() {
            Some((mem, kind)) => {
                if kind == AccessKind::Write && self.app[tid].sb.is_some() {
                    // TSO store: retire into the buffer; coherence and arcs
                    // happen at drain time, annotated onto the staged record.
                    // Synthesized stores (unlock, barrier words) may arrive
                    // with a full buffer: retire the head early to make room.
                    while self.app[tid]
                        .sb
                        .as_ref()
                        .map(|sb| sb.is_full())
                        .unwrap_or(false)
                    {
                        let head = self.app[tid]
                            .sb
                            .as_mut()
                            .and_then(|sb| sb.force_drain_head())
                            .expect("full buffer has a head");
                        self.drain_one_store(tid, head);
                    }
                    let now = self.sched.clock(tid);
                    let sb = self.app[tid].sb.as_mut().expect("checked above");
                    sb.push(rid, mem.addr, u64::from(mem.size), now);
                    1
                } else if kind == AccessKind::Read
                    && self.app[tid]
                        .sb
                        .as_ref()
                        .map(|sb| sb.forwards_would_hit(mem.addr, u64::from(mem.size)))
                        .unwrap_or(false)
                {
                    // Store-to-load forwarding. Instead of modeling the
                    // forwarded value as invisible to coherence (which makes
                    // remote writers unable to order against this read, the
                    // deep end of §5.5), stores up to the forwarding one are
                    // drained early — always legal under TSO — and the load
                    // becomes a plain read of the now-dirty line. The load
                    // keeps forwarding *timing* (an L1-latency access).
                    self.drain_through(tid, mem.addr, u64::from(mem.size));
                    let res = self
                        .mem
                        .access(core, rid, mem.addr, u64::from(mem.size), kind);
                    if let Some(rec) = record.as_mut() {
                        self.capture_touches(tid, rid, &res.touches, rec);
                    }
                    self.machine.l1d.latency
                } else {
                    if kind == AccessKind::Rmw {
                        self.drain_all_stores(tid);
                    }
                    let res = self
                        .mem
                        .access(core, rid, mem.addr, u64::from(mem.size), kind);
                    if let Some(rec) = record.as_mut() {
                        self.capture_touches(tid, rid, &res.touches, rec);
                    }
                    res.latency
                }
            }
            None => 1,
        };
        if let Some(r) = self.reference.as_mut() {
            r.on_instr(tid, rid, &instr);
        }
        if let Some(rec) = record {
            self.stage_record(tid, rec);
        }
        latency
    }

    /// Converts coherence touches into arcs on `rec` (parallel mode only —
    /// timesliced threads share one core and produce no touches).
    fn capture_touches(
        &mut self,
        tid: usize,
        rid: Rid,
        touches: &[paralog_sim::RemoteTouch],
        rec: &mut EventRecord,
    ) {
        if self.config.mode != MonitoringMode::Parallel {
            return;
        }
        for touch in touches {
            // Only touches against application cores are inter-thread
            // dependences (lifeguard cores share the metadata space).
            if touch.remote_core >= self.k {
                continue;
            }
            let src = ThreadId(touch.remote_core as u16);
            if let Some(arc) = self.capture.on_touch(ThreadId(tid as u16), rid, src, touch) {
                rec.arcs.push(arc);
            }
        }
    }

    // --- TSO store drains -------------------------------------------------

    fn drain_due_stores(&mut self, tid: usize, now: u64) {
        let Some(sb) = self.app[tid].sb.as_mut() else {
            return;
        };
        let drained = sb.drain_ready(now);
        for store in drained {
            self.drain_one_store(tid, store);
        }
    }

    fn drain_all_stores(&mut self, tid: usize) {
        let Some(sb) = self.app[tid].sb.as_mut() else {
            return;
        };
        let drained = sb.drain_all();
        for store in drained {
            self.drain_one_store(tid, store);
        }
    }

    /// Drains stores in FIFO order until the youngest store overlapping the
    /// given access has become visible (store-to-load forwarding as an early
    /// drain).
    fn drain_through(&mut self, tid: usize, addr: u64, size: u64) {
        loop {
            let still_pending = self.app[tid]
                .sb
                .as_ref()
                .map(|sb| sb.forwards_would_hit(addr, size))
                .unwrap_or(false);
            if !still_pending {
                return;
            }
            let head = self.app[tid]
                .sb
                .as_mut()
                .and_then(|sb| sb.force_drain_head())
                .expect("pending store exists");
            self.drain_one_store(tid, head);
        }
    }

    /// A store becomes globally visible: run coherence, decide arc vs.
    /// version reversal per touch, annotate the staged store record.
    fn drain_one_store(&mut self, tid: usize, store: paralog_sim::PendingStore) {
        let core = self.app[tid].core;
        let res = self
            .mem
            .access(core, store.rid, store.addr, store.size, AccessKind::Write);
        // The drained line's timestamp must cover loads that forwarded from
        // this store while it was buffered.
        if store.last_forward > store.rid {
            self.mem
                .bump_line_access(core, store.addr, store.size, store.last_forward);
        }
        if self.config.mode == MonitoringMode::Parallel {
            // Inline lists keep the drain hot path allocation-free.
            let mut arcs = ArcList::new();
            let mut produces = ProduceList::new();
            for touch in &res.touches {
                if touch.remote_core >= self.k {
                    continue;
                }
                let reader = touch.remote_core;
                let src = ThreadId(reader as u16);
                let dst = ThreadId(tid as u16);
                // 1. Write-vs-write ordering. Write timestamps follow the
                //    drain order, which is total, so these arcs can never
                //    form a cycle and are always safe to record.
                if touch.block_write_rid > Rid::ZERO {
                    if let Some(arc) = self.capture.on_conflict_unordered(
                        dst,
                        store.rid,
                        src,
                        touch.block_write_rid,
                        paralog_events::ArcKind::Waw,
                    ) {
                        arcs.push(arc);
                    }
                }
                // 2. Read coverage: the remote's reads up to `block_rid`
                //    must see pre-store metadata. §5.5: reads that violated
                //    SC (an older store still buffered) are *reversed* into
                //    versioned metadata; buffered readers get per-record
                //    versions, absorbed (IT-held) state falls back to a WAR
                //    arc guarded by delayed advertising.
                if touch.block_rid > touch.block_write_rid {
                    // Sync words are never version-reversed: their metadata
                    // is lifeguard-interpreted (vector clocks), not a byte
                    // snapshot, so order-sensitive analyses need the WAR-arc
                    // fallback's deterministic ordering. The sync-op drain
                    // fences make this unreachable in practice; the guard
                    // keeps it an invariant rather than an accident.
                    let sc_violating = store.addr < SYNC_BASE
                        && self.app[reader]
                            .sb
                            .as_ref()
                            .map(|sb| sb.has_store_older_than(touch.block_rid))
                            .unwrap_or(false);
                    if sc_violating {
                        let versioned =
                            self.annotate_block_readers(reader, touch.block_rid, touch.block);
                        if !versioned.is_empty() {
                            produces.extend(versioned.iter().copied());
                            continue;
                        }
                    }
                    if let Some(arc) = self.capture.on_conflict_unordered(
                        dst,
                        store.rid,
                        src,
                        touch.block_rid,
                        paralog_events::ArcKind::War,
                    ) {
                        arcs.push(arc);
                    }
                }
            }
            if !arcs.is_empty() || !produces.is_empty() {
                let ok = self.annotate_staged(tid, store.rid, |r| {
                    r.arcs.extend(arcs.iter().copied());
                    r.produce_versions.extend(produces.iter().copied());
                    true
                });
                assert!(ok, "store record must still be staged while undrained");
            }
        }
        if let Some(r) = self.reference.as_mut() {
            r.on_store_drain(tid, store.rid);
        }
    }

    /// Annotates every still-buffered record of `reader` at or below
    /// `last_rid` that reads any byte of `block` with its own version id
    /// (keyed by the record itself) covering the record's own operand
    /// bytes. Returns the produce annotations for the writer's record.
    fn annotate_block_readers(
        &mut self,
        reader: usize,
        last_rid: Rid,
        block: paralog_events::BlockId,
    ) -> ProduceList {
        let block_range = block.range();
        let reader_tid = ThreadId(reader as u16);
        let mut produces = ProduceList::new();
        let mut annotate = |r: &mut EventRecord| -> bool {
            if r.rid > last_rid || r.consume_version.is_some() || r.forwarded {
                // Forwarded loads read their own store's metadata (enforced
                // by stream order); a remote version would be stale.
                return false;
            }
            let mem = match &r.payload {
                paralog_events::EventPayload::Instr(i) => match i.mem_access() {
                    Some((m, k)) if k.reads() && m.range().overlaps(&block_range) => m,
                    _ => return false,
                },
                paralog_events::EventPayload::Ca(_) => return false,
            };
            let vid = VersionId {
                consumer: reader_tid,
                consumer_rid: r.rid,
            };
            r.consume_version = Some((vid, mem));
            produces.push((vid, mem, 1));
            true
        };
        for rec in self.app[reader].staging.iter_mut() {
            annotate(rec);
        }
        if self.config.mode == MonitoringMode::Parallel {
            self.rings[reader].annotate_matching(&mut annotate);
        }
        // Ring-resident records were cloned into the collected streams when
        // they left staging; patch those clones with the same consume
        // annotations so a TSO capture replays faithfully. (Staging-resident
        // records are cloned later, annotation already in place.)
        if let Some(collected) = self.collected.as_mut() {
            let stream = &mut collected[reader];
            for (vid, mem, _) in produces.iter() {
                for rec in stream.iter_mut().rev() {
                    if rec.rid == vid.consumer_rid {
                        rec.consume_version = Some((*vid, *mem));
                        break;
                    }
                    if rec.rid < vid.consumer_rid {
                        break; // rid-ordered: not collected yet
                    }
                }
            }
        }
        produces
    }

    fn annotate_staged<F>(&mut self, tid: usize, rid: Rid, f: F) -> bool
    where
        F: FnOnce(&mut EventRecord) -> bool,
    {
        for rec in self.app[tid].staging.iter_mut() {
            if rec.rid == rid {
                return f(rec);
            }
        }
        false
    }

    // --- event capture / transport ---------------------------------------

    fn monitored(&self) -> bool {
        self.config.mode != MonitoringMode::None
    }

    fn ring_of(&self, tid: usize) -> &paralog_events::LogRing {
        match self.config.mode {
            MonitoringMode::Timesliced => &self.rings[0],
            _ => &self.rings[tid],
        }
    }

    fn stage_record(&mut self, tid: usize, rec: EventRecord) {
        if !self.monitored() {
            return;
        }
        self.app[tid].staging.push_back(rec);
        self.flush_staging(tid);
    }

    /// Releases staged records to the ring: a record may leave staging only
    /// once no *older or equal* store is still undrained (its arcs and
    /// version annotations would otherwise be lost).
    fn flush_staging(&mut self, tid: usize) {
        if !self.monitored() {
            return;
        }
        let hold_from = self.app[tid]
            .sb
            .as_ref()
            .and_then(|sb| sb.oldest_rid())
            .unwrap_or(Rid(u64::MAX));
        while let Some(front) = self.app[tid].staging.front() {
            if front.rid >= hold_from {
                break;
            }
            match self.config.mode {
                MonitoringMode::Timesliced => {
                    if self.rings[0].is_full() {
                        break;
                    }
                    let rec = self.app[tid].staging.pop_front().expect("front exists");
                    self.rings[0].push(rec).expect("checked not full");
                    self.ring_tags.push_back(tid);
                    self.ts_outstanding[tid] += 1;
                }
                MonitoringMode::Parallel => {
                    if self.rings[tid].is_full() {
                        break;
                    }
                    let rec = self.app[tid].staging.pop_front().expect("front exists");
                    if let Some(collected) = self.collected.as_mut() {
                        collected[tid].push(rec.clone());
                    }
                    self.rings[tid].push(rec).expect("checked not full");
                }
                MonitoringMode::None => unreachable!("guarded by monitored()"),
            }
        }
    }

    fn records_drained(&self, tid: usize) -> bool {
        match self.config.mode {
            MonitoringMode::None => true,
            MonitoringMode::Parallel => {
                self.app[tid].staging.is_empty() && self.rings[tid].is_empty()
            }
            MonitoringMode::Timesliced => {
                self.app[tid].staging.is_empty() && self.ts_outstanding[tid] == 0
            }
        }
    }

    fn sched_advance_app(&mut self, tid: usize, cycles: u64) {
        let entity = match self.config.mode {
            MonitoringMode::Timesliced => 0,
            _ => tid,
        };
        self.sched.advance(entity, cycles);
    }

    // --- ConflictAlert -----------------------------------------------------

    /// Emits a CA record in the issuer's own stream only (lock/unlock and
    /// unsubscribed events — the local lifeguard may still care).
    fn emit_own_ca(
        &mut self,
        tid: usize,
        what: HighLevelKind,
        phase: CaPhase,
        range: Option<AddrRange>,
    ) {
        if !self.monitored() {
            return;
        }
        let rid = self.app[tid].rid.next();
        self.app[tid].rid = rid;
        let ca = CaRecord {
            what,
            phase,
            range,
            issuer: ThreadId(tid as u16),
            issuer_rid: rid,
            seq: u64::MAX, // no broadcast sequence
        };
        self.stage_record(tid, EventRecord::ca(rid, ca));
    }

    /// Issues a ConflictAlert: a record in the issuer's stream, plus — when
    /// any lifeguard subscribes and we run in parallel — a serialized
    /// broadcast inserting the record into every executing thread's stream.
    pub(super) fn broadcast_ca(
        &mut self,
        tid: usize,
        what: HighLevelKind,
        phase: CaPhase,
        range: Option<AddrRange>,
    ) {
        if let Some(r) = self.reference.as_mut() {
            r.on_high_level(what, phase, range);
        }
        if !self.monitored() {
            return;
        }
        let broadcast =
            self.config.mode == MonitoringMode::Parallel && self.ca_policy.subscribes(what);
        let rid = self.app[tid].rid.next();
        self.app[tid].rid = rid;
        if !broadcast {
            let ca = CaRecord {
                what,
                phase,
                range,
                issuer: ThreadId(tid as u16),
                issuer_rid: rid,
                seq: u64::MAX,
            };
            self.stage_record(tid, EventRecord::ca(rid, ca));
            return;
        }
        let ca = self
            .broadcaster
            .broadcast(what, phase, range, ThreadId(tid as u16), rid);
        // The issuer serializes: it waits for acknowledgements from every
        // other executing capture unit (§5.4).
        let participants: Vec<usize> = (0..self.k)
            .filter(|t| !self.app[*t].finished || *t == tid)
            .collect();
        self.ca_barrier.expect(ca.seq, participants.len());
        for &t in &participants {
            let trid = if t == tid {
                rid
            } else {
                let r = self.app[t].rid.next();
                self.app[t].rid = r;
                r
            };
            self.stage_record(t, EventRecord::ca(trid, ca));
        }
        let ack_cycles = 30 + 10 * self.k as u64;
        self.app[tid].buckets.exec += ack_cycles;
        self.sched_advance_app(tid, ack_cycles);
    }
}
