//! The ParaLog platform: Figure 2 assembled and simulated.
//!
//! [`Platform::run`] simulates a complete monitored execution: application
//! cores retire the workload's instruction streams through the cache/
//! coherence model, event capture turns them into per-thread logs with
//! dependence arcs, and lifeguard cores consume the logs through order
//! enforcement and the accelerators. Everything advances under one
//! deterministic discrete-event scheduler (smallest local clock first), so a
//! run is exactly reproducible.
//!
//! Three modes (Figure 6): `None` (application alone), `Timesliced` (all
//! application threads serialized on one core, one sequential lifeguard) and
//! `Parallel` (ParaLog proper: one lifeguard thread per application thread).

mod app;
pub(crate) mod lg;

use crate::config::{MonitorConfig, MonitoringMode};
use crate::metrics::{AppBuckets, LgBuckets, RunMetrics};
use crate::reference::Reference;
use paralog_accel::{IdempotentFilter, InheritanceTracker, MetadataTlb};
use paralog_events::{EventRecord, LogRing, Rid, ThreadId};
use paralog_lifeguards::{Lifeguard, LifeguardFamily, Violation};
use paralog_order::{
    CaBarrier, CaBroadcaster, CaPolicy, OrderCapture, OrderEnforcer, ProgressTable, RangeTable,
};
use paralog_sim::{BarrierTable, LockTable, MachineConfig, MemorySystem, Scheduler, StoreBuffer};
use paralog_workloads::Workload;
use std::collections::VecDeque;

/// Outcome of one monitored (or unmonitored) run.
#[derive(Debug)]
pub struct RunOutcome {
    /// All measurements.
    pub metrics: RunMetrics,
}

impl RunOutcome {
    /// Violations reported during the run.
    pub fn violations(&self) -> &[Violation] {
        &self.metrics.violations
    }
}

/// The classic batch entry point, kept as a thin shim over the composable
/// [`MonitorSession`](crate::session::MonitorSession) API.
#[derive(Debug)]
pub struct Platform;

impl Platform {
    /// Runs `workload` under `config` to completion and returns the
    /// measurements.
    ///
    /// Equivalent to a [`MonitorSession`](crate::session::MonitorSession)
    /// over a workload source, the deterministic backend, and the bundled
    /// lifeguard named by `config.lifeguard`.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no threads, or if an internal invariant of
    /// the simulated protocol is violated (which is a bug, not an input
    /// error).
    pub fn run(workload: &Workload, config: &MonitorConfig) -> RunOutcome {
        // The borrowing fast path of the session API's deterministic
        // backend: identical to `builder().source(workload.clone())…` but
        // without copying the instruction streams on every sweep iteration.
        crate::session::run_platform(workload, config)
    }
}

/// Why an application thread cannot currently make progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// Log buffer (or staging) is full.
    LogFull,
    /// Spinning on a held lock.
    Lock(paralog_events::LockId, u64),
    /// Waiting at a barrier for the given generation.
    Barrier(paralog_events::BarrierId, u64),
    /// Damage containment: waiting for the lifeguard to drain this thread's
    /// records; the payload is the phase of the two-phase syscall protocol.
    Syscall,
    /// Store buffer full (TSO).
    StoreBufferFull,
}

/// Per-application-thread simulation state.
#[derive(Debug)]
struct AppThread {
    core: usize,
    pc: usize,
    rid: Rid,
    sb: Option<StoreBuffer>,
    /// Records retired but not yet released to the ring (held behind
    /// undrained stores under TSO; pass-through under SC).
    staging: VecDeque<EventRecord>,
    blocked: Option<Block>,
    buckets: AppBuckets,
    finished: bool,
    /// Pending syscall continuation (kind/buffer of the in-flight call).
    syscall_cont: Option<(
        paralog_events::SyscallKind,
        Option<paralog_events::AddrRange>,
    )>,
}

/// Per-lifeguard-thread simulation state. In timesliced mode there is one
/// engine holding one lifeguard *instance per application thread* but a
/// single set of accelerators (they are per-core hardware).
struct LgThread {
    core: usize,
    /// Lifeguard instances indexed by application thread.
    lgs: Vec<Box<dyn Lifeguard>>,
    it: InheritanceTracker,
    ifilter: IdempotentFilter,
    mtlb: MetadataTlb,
    enforcer: OrderEnforcer,
    range_table: RangeTable,
    buckets: LgBuckets,
    finished: bool,
    delivered_ops: u64,
    /// Batches the cost of records the event mux skips (absorbed /
    /// filtered / unsubscribed): hardware retires several per cycle.
    skip_credit: u32,
    /// Timesliced: the application thread of the last processed record
    /// (context-switch detection for IT flushes).
    last_tag: Option<usize>,
}

impl LgThread {
    /// The lifeguard instance responsible for application thread `tag`: in
    /// parallel mode each engine has exactly one instance (its paired
    /// thread); the timesliced engine holds one per application thread.
    fn lg(&mut self, tag: usize) -> &mut Box<dyn Lifeguard> {
        let idx = if self.lgs.len() == 1 { 0 } else { tag };
        &mut self.lgs[idx]
    }

    /// Read-only variant of [`LgThread::lg`].
    fn lg_ref(&self, tag: usize) -> &dyn Lifeguard {
        let idx = if self.lgs.len() == 1 { 0 } else { tag };
        self.lgs[idx].as_ref()
    }
}

impl std::fmt::Debug for LgThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LgThread")
            .field("core", &self.core)
            .field("finished", &self.finished)
            .field("delivered_ops", &self.delivered_ops)
            .finish_non_exhaustive()
    }
}

/// The assembled simulation.
pub(crate) struct Sim<'w> {
    config: MonitorConfig,
    machine: MachineConfig,
    workload: &'w Workload,
    k: usize,

    mem: MemorySystem,
    sched: Scheduler,
    locks: LockTable,
    barriers: BarrierTable,

    /// Per-app-thread rings (parallel); single ring in timesliced mode.
    rings: Vec<LogRing>,
    /// Timesliced: thread tag per buffered record, aligned with `rings[0]`.
    ring_tags: VecDeque<usize>,

    app: Vec<AppThread>,
    capture: OrderCapture,
    broadcaster: CaBroadcaster,
    ca_policy: CaPolicy,

    lgs: Vec<LgThread>,
    family: LifeguardFamily,
    progress: ProgressTable,
    ca_barrier: CaBarrier,
    versions: paralog_meta::VersionTable,

    reference: Option<Reference>,
    metrics: RunMetrics,

    /// Timesliced-mode scheduler state: current thread and remaining quantum.
    ts_current: usize,
    ts_quantum_left: u32,
    /// Timesliced-mode per-thread count of records still in the shared ring
    /// (damage-containment checks).
    ts_outstanding: Vec<u64>,
    /// Stream collection (when configured): clone of every record released
    /// to a ring, per thread.
    collected: Option<Vec<Vec<EventRecord>>>,
}

impl<'w> std::fmt::Debug for Sim<'w> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("mode", &self.config.mode)
            .field("threads", &self.k)
            .finish_non_exhaustive()
    }
}

impl<'w> Sim<'w> {
    /// Assembles the simulation from an already-built lifeguard `family`
    /// (constructed by the session's factory) and optional sequential
    /// `reference` (equivalence checking; only bundled analyses have one).
    pub(crate) fn new(
        workload: &'w Workload,
        config: &MonitorConfig,
        family: LifeguardFamily,
        reference: Option<Reference>,
    ) -> Self {
        let k = workload.thread_count();
        assert!(k > 0, "workload needs at least one thread");
        let machine = config.machine_for(k);
        assert!(
            !(machine.is_tso() && config.mode == MonitoringMode::Timesliced),
            "timesliced monitoring is modeled under SC only (single application core)"
        );
        let probe = family.thread(ThreadId(0));
        let ca_policy = probe.spec().ca_policy.clone();
        drop(probe);

        let entities = match config.mode {
            MonitoringMode::None => k,
            MonitoringMode::Timesliced => 2,
            MonitoringMode::Parallel => 2 * k,
        };

        let app = (0..k)
            .map(|tid| AppThread {
                core: match config.mode {
                    MonitoringMode::Timesliced => 0,
                    _ => tid,
                },
                pc: 0,
                rid: Rid::ZERO,
                sb: match machine.model {
                    paralog_sim::MemoryModel::Tso(t) => {
                        Some(StoreBuffer::new(t.entries, t.drain_latency))
                    }
                    paralog_sim::MemoryModel::Sc => None,
                },
                staging: VecDeque::new(),
                blocked: None,
                buckets: AppBuckets::default(),
                finished: false,
                syscall_cont: None,
            })
            .collect();

        let lg_count = match config.mode {
            MonitoringMode::None => 0,
            MonitoringMode::Timesliced => 1,
            MonitoringMode::Parallel => k,
        };
        let lgs: Vec<LgThread> = (0..lg_count)
            .map(|i| {
                let (core, instances) = match config.mode {
                    MonitoringMode::Timesliced => (
                        1,
                        (0..k).map(|t| family.thread(ThreadId(t as u16))).collect(),
                    ),
                    _ => (k + i, vec![family.thread(ThreadId(i as u16))]),
                };
                LgThread {
                    core,
                    lgs: instances,
                    it: InheritanceTracker::new(config.it_threshold),
                    ifilter: IdempotentFilter::new(64, true),
                    mtlb: MetadataTlb::new(32),
                    enforcer: OrderEnforcer::new(),
                    range_table: RangeTable::new(k),
                    buckets: LgBuckets::default(),
                    finished: false,
                    delivered_ops: 0,
                    skip_credit: 0,
                    last_tag: None,
                }
            })
            .collect();

        let rings = match config.mode {
            MonitoringMode::None => Vec::new(),
            MonitoringMode::Timesliced => vec![LogRing::new(config.log_capacity)],
            MonitoringMode::Parallel => (0..k).map(|_| LogRing::new(config.log_capacity)).collect(),
        };

        Sim {
            machine,
            workload,
            k,
            mem: MemorySystem::new(&machine),
            sched: Scheduler::new(entities),
            locks: LockTable::new(),
            barriers: BarrierTable::new(k),
            rings,
            ring_tags: VecDeque::new(),
            app,
            capture: OrderCapture::new(k.max(1), config.capture, config.reduction),
            broadcaster: CaBroadcaster::new(),
            ca_policy,
            lgs,
            family,
            progress: ProgressTable::new(k),
            ca_barrier: CaBarrier::new(k),
            versions: paralog_meta::VersionTable::new(),
            reference,
            metrics: RunMetrics {
                app_threads: k,
                ..RunMetrics::default()
            },
            ts_current: 0,
            ts_quantum_left: app::TS_QUANTUM_OPS,
            ts_outstanding: vec![0; k],
            // Under TSO, consume annotations can land on records already
            // released to a ring; `annotate_block_readers` patches the
            // collected clones too, so captures stay faithful.
            collected: if config.collect_streams && config.mode == MonitoringMode::Parallel {
                Some(vec![Vec::new(); k])
            } else {
                None
            },
            config: config.clone(),
        }
    }

    /// Runs the discrete-event loop to completion.
    pub(crate) fn drive(&mut self) {
        let mut guard: u64 = 0;
        let budget = self.step_budget();
        while let Some(entity) = self.sched.pick_next() {
            guard += 1;
            assert!(
                guard < budget,
                "simulation exceeded {budget} steps — livelock? mode={:?}\n{}",
                self.config.mode,
                self.livelock_report()
            );
            match self.config.mode {
                MonitoringMode::None => self.step_app(entity),
                MonitoringMode::Parallel => {
                    if entity < self.k {
                        self.step_app(entity);
                    } else {
                        self.step_lg(entity - self.k);
                    }
                }
                MonitoringMode::Timesliced => {
                    if entity == 0 {
                        self.step_timesliced_app();
                    } else {
                        self.step_lg(0);
                    }
                }
            }
        }
    }

    /// Functional cache warming (§6): walk every thread's memory footprint
    /// through the hierarchy without timing, including the lifeguard cores'
    /// metadata footprint.
    pub(crate) fn warm(&mut self) {
        let monitored = self.config.mode != MonitoringMode::None;
        let bits = if monitored {
            self.family.thread(ThreadId(0)).spec().bits_per_byte as u64
        } else {
            0
        };
        for tid in 0..self.k {
            let app_core = self.app[tid].core;
            let lg_core = match self.config.mode {
                MonitoringMode::None => None,
                MonitoringMode::Timesliced => Some(1),
                MonitoringMode::Parallel => Some(self.k + tid),
            };
            for op in &self.workload.threads[tid] {
                let paralog_events::Op::Instr(instr) = op else {
                    continue;
                };
                let Some((mem, kind)) = instr.mem_access() else {
                    continue;
                };
                self.mem
                    .warm_access(app_core, mem.addr, u64::from(mem.size), kind);
                if let Some(lg_core) = lg_core {
                    let meta = paralog_meta::META_BASE + mem.addr * bits / 8;
                    let meta_len = (u64::from(mem.size) * bits).div_ceil(8).max(1);
                    self.mem.warm_access(lg_core, meta, meta_len, kind);
                }
            }
        }
    }

    /// Diagnostic dump for livelock panics.
    fn livelock_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, a) in self.app.iter().enumerate() {
            let _ = writeln!(
                out,
                "app{i}: pc={}/{} rid={} blocked={:?} staging={} finished={} sb={:?}",
                a.pc,
                self.workload.threads[i].len(),
                a.rid,
                a.blocked,
                a.staging.len(),
                a.finished,
                a.sb.as_ref().map(|s| s.len())
            );
        }
        for (i, l) in self.lgs.iter().enumerate() {
            let ring = if self.config.mode == MonitoringMode::Timesliced {
                &self.rings[0]
            } else {
                &self.rings[i]
            };
            let _ = writeln!(
                out,
                "lg{i}: finished={} ring_len={} head={:?} progress={}",
                l.finished,
                ring.len(),
                ring.peek().map(|r| (
                    r.rid,
                    r.arcs.clone(),
                    r.consume_version,
                    match &r.payload {
                        paralog_events::EventPayload::Ca(ca) => format!(
                            "CA {} {:?} seq={} issuer={}",
                            ca.what, ca.phase, ca.seq, ca.issuer
                        ),
                        paralog_events::EventPayload::Instr(ins) => format!("{ins}"),
                    }
                )),
                if i < self.progress.len() {
                    format!("{}", self.progress.get(ThreadId(i as u16)))
                } else {
                    "-".into()
                }
            );
        }
        out
    }

    fn step_budget(&self) -> u64 {
        // Generous: every op can stall a bounded number of times; CA
        // broadcasts and barriers add per-thread records.
        let ops = self.workload.total_ops() as u64;
        2_000 * ops + 50_000_000
    }

    pub(crate) fn into_metrics(mut self) -> RunMetrics {
        for a in &self.app {
            self.metrics.app.push(a.buckets);
        }
        for l in &self.lgs {
            self.metrics.lifeguard.push(l.buckets);
            self.metrics.delivered_ops += l.delivered_ops;
            self.metrics.dependence_stalls += l.enforcer.stalls();
            let s = l.it.stats();
            self.metrics.it.absorbed += s.absorbed;
            self.metrics.it.delivered += s.delivered;
            self.metrics.it.local_conflict_flushes += s.local_conflict_flushes;
            self.metrics.it.stall_flushes += s.stall_flushes;
            self.metrics.it.ca_flushes += s.ca_flushes;
            self.metrics.it.threshold_flushes += s.threshold_flushes;
            let f = l.ifilter.stats();
            self.metrics.ifilter.hits += f.hits;
            self.metrics.ifilter.misses += f.misses;
            self.metrics.ifilter.invalidations += f.invalidations;
            self.metrics.ifilter.range_invalidated += f.range_invalidated;
            let m = l.mtlb.stats();
            self.metrics.mtlb.hits += m.hits;
            self.metrics.mtlb.misses += m.misses;
            self.metrics.mtlb.flushed += m.flushed;
        }
        self.metrics.app_finish = (0..self.k)
            .map(|i| match self.config.mode {
                MonitoringMode::Timesliced => self.sched.clock(0),
                _ => self.sched.clock(i),
            })
            .max()
            .unwrap_or(0);
        self.metrics.lg_finish = match self.config.mode {
            MonitoringMode::None => 0,
            MonitoringMode::Timesliced => self.sched.clock(1),
            MonitoringMode::Parallel => (self.k..2 * self.k)
                .map(|e| self.sched.clock(e))
                .max()
                .unwrap_or(0),
        };
        self.metrics.capture = self.capture.stats();
        self.metrics.records = self.rings.iter().map(|r| r.produced()).sum();
        self.metrics.ca_broadcasts = self.broadcaster.broadcasts();
        self.metrics.versions_produced = self.versions.produced();
        self.metrics.versions_consumed = self.versions.consumed();
        self.metrics.fingerprint = self.family.fingerprint();
        self.metrics.reference_fingerprint = self.reference.as_ref().map(|r| r.fingerprint());
        if self.config.dump_shadows {
            self.metrics.shadow_dump = Some(self.family.thread(ThreadId(0)).dump_shadow());
            self.metrics.reference_dump = self.reference.as_ref().map(|r| r.dump());
        }
        self.metrics.streams = self.collected.take();
        self.metrics
    }
}
