//! Lifeguard-side stepping: order enforcement, accelerators, event delivery,
//! ConflictAlert handling and progress advertising.
//!
//! Delivery is zero-copy: a deliverable record is processed **in place**
//! through [`LogRing::pop_with`](paralog_events::LogRing::pop_with) — the
//! ring hands out a borrow and the record is dropped after the handlers ran,
//! never cloned or moved between staging, ring and handler. [`DeliveryCtx`]
//! is the borrow split that makes this possible: every piece of lifeguard
//! state *except* the rings, so the closure over the ring borrow can still
//! reach the engines.
//!
//! Two delivery paths live here: the co-simulation path (`step_lg`, with
//! accelerators and cycle accounting) and the ingestion path
//! ([`deliver_ingested`], driven by the deterministic backend's streaming
//! replay loop). Both already treat "my stream's tail has not arrived yet"
//! as *wait for the producer*, not as completion or deadlock — `step_lg`
//! via the ring's open-but-empty state, the replay loop via the source
//! protocol's `Blocked` status — which is what lets a session's input be
//! produced online.

use super::{LgThread, Sim};
use crate::config::{CaMode, MonitorConfig, MonitoringMode};
use paralog_accel::FlushReason;
use paralog_events::{
    check_view, dataflow_view, AddrRange, CaPhase, CaRecord, EventPayload, EventRecord, MetaOp,
    Rid, ThreadId,
};
use paralog_lifeguards::{CostModel, EventView, HandlerCtx, Violation};
use paralog_order::{CaBarrier, CaPolicy, Gate, ProgressTable};
use paralog_sim::MemorySystem;

/// Everything [`DeliveryCtx::process_record`] needs, split off [`Sim`] so a
/// record can be delivered while the ring still owns it (the ring borrow and
/// these field borrows are disjoint).
pub(super) struct DeliveryCtx<'a> {
    config: &'a MonitorConfig,
    mem: &'a mut MemorySystem,
    lgs: &'a mut [LgThread],
    progress: &'a mut ProgressTable,
    ca_barrier: &'a mut CaBarrier,
    ca_policy: &'a CaPolicy,
    versions: &'a mut paralog_meta::VersionTable,
    violations: &'a mut Vec<Violation>,
}

impl<'w> Sim<'w> {
    /// One step of lifeguard engine `li` (parallel: lifeguard thread `li`
    /// paired with application thread `li`; timesliced: the single engine).
    pub(super) fn step_lg(&mut self, li: usize) {
        let entity = match self.config.mode {
            MonitoringMode::Timesliced => 1,
            _ => self.k + li,
        };
        if self.lgs[li].finished {
            self.sched.finish(entity);
            return;
        }
        let ring_idx = if self.config.mode == MonitoringMode::Timesliced {
            0
        } else {
            li
        };

        // Is there a record to look at?
        let Some(head) = self.rings[ring_idx].peek() else {
            if self.rings[ring_idx].is_closed() {
                self.finish_lg(li, entity);
            } else {
                // The lifeguard has caught up with its application thread.
                // Holding IT rows now only suppresses our advertised
                // progress (and can deadlock a remote lifeguard whose arc
                // targets a held record while our thread is blocked on it
                // transitively): flush and publish accurate progress — the
                // idle-time analogue of §4.2's stall-flush rule.
                let mut flush_cycles = 0;
                if self.config.accelerators && self.lgs[li].it.live_mem_rows() > 0 {
                    let tag = self.lgs[li].last_tag.unwrap_or(li);
                    let ops = self.lgs[li].it.flush_all(FlushReason::DependenceStall);
                    for op in &ops {
                        flush_cycles += deliver_op(
                            &mut self.lgs[li],
                            tag,
                            &mut self.mem,
                            &self.config.cost,
                            true,
                            op,
                            self.progress.get(ThreadId(li as u16)),
                            &None,
                            &mut self.metrics.violations,
                        );
                    }
                }
                if self.config.mode == MonitoringMode::Parallel {
                    let accurate = self.lgs[li].it.advertisable_progress();
                    let cur = self.progress.get(ThreadId(li as u16));
                    if accurate > cur {
                        self.progress.advertise(ThreadId(li as u16), accurate);
                    }
                }
                let q = self.machine.poll_quantum;
                self.lgs[li].buckets.useful += flush_cycles;
                self.lgs[li].buckets.wait_application += q;
                self.sched.advance(entity, q + flush_cycles);
            }
            return;
        };

        // --- gating (parallel mode only; a timesliced stream is already a
        // total order) -----------------------------------------------------
        if self.config.mode == MonitoringMode::Parallel {
            // ConflictAlert barrier (§5.4).
            if let EventPayload::Ca(ca) = &head.payload {
                let ca = *ca;
                if ca.seq != u64::MAX
                    && self.config.ca_mode == CaMode::Barrier
                    && self.ca_policy.actions(ca.what, ca.phase).barrier
                {
                    self.ca_barrier.arrive(ca.seq, ThreadId(li as u16));
                    if !self
                        .ca_barrier
                        .may_pass(ca.seq, ThreadId(li as u16), ca.issuer)
                    {
                        self.dependence_stall(li, entity);
                        return;
                    }
                }
            }
            // Dependence arcs (§5.2).
            let head = self.rings[ring_idx].peek().expect("still buffered");
            let gate = {
                let rec_ref: &EventRecord = head;
                self.lgs[li].enforcer.regate(rec_ref, &self.progress)
            };
            if let Gate::Blocked { .. } = gate {
                self.dependence_stall(li, entity);
                return;
            }
            // TSO versioned metadata (§5.5) never blocks: if the producer
            // has not yet produced, it also has not applied its store, and
            // every later write to the range is gated behind its progress —
            // the live shadow is still the correct pre-store state. The
            // consume below simply prefers the snapshot when it exists.
        }

        // --- deliverable: process in place, then discard (zero-copy) -------
        let tag = match self.config.mode {
            MonitoringMode::Timesliced => {
                let t = self.ring_tags.pop_front().expect("tag per record");
                self.ts_outstanding[t] -= 1;
                t
            }
            _ => li,
        };
        let mut ctx = DeliveryCtx {
            config: &self.config,
            mem: &mut self.mem,
            lgs: &mut self.lgs,
            progress: &mut self.progress,
            ca_barrier: &mut self.ca_barrier,
            ca_policy: &self.ca_policy,
            versions: &mut self.versions,
            violations: &mut self.metrics.violations,
        };
        let cycles = self.rings[ring_idx]
            .pop_with(|rec| ctx.process_record(li, tag, rec))
            .expect("peeked");
        self.lgs[li].buckets.useful += cycles;
        self.sched.advance(entity, cycles);
    }

    /// §4.2's no-deadlock rule: on a dependence stall, flush the IT table
    /// (delivering pending rows) and publish accurate progress, then wait.
    fn dependence_stall(&mut self, li: usize, entity: usize) {
        // §5.2: the consumer spins re-reading the progress counter — a
        // cached location — far faster than the application-side poll.
        let q = self.config.cost.stall_poll.max(1);
        let accel = self.config.accelerators;
        let mut flush_cycles = 0;
        if accel && self.lgs[li].it.live_mem_rows() > 0 {
            let tag = self.lgs[li].last_tag.unwrap_or(li);
            let ops = self.lgs[li].it.flush_all(FlushReason::DependenceStall);
            for op in &ops {
                flush_cycles += deliver_op(
                    &mut self.lgs[li],
                    tag,
                    &mut self.mem,
                    &self.config.cost,
                    accel,
                    op,
                    self.progress.get(ThreadId(li as u16)),
                    &None,
                    &mut self.metrics.violations,
                );
            }
        }
        if self.config.mode == MonitoringMode::Parallel {
            let accurate = self.lgs[li].it.advertisable_progress();
            let cur = self.progress.get(ThreadId(li as u16));
            if accurate > cur {
                self.progress.advertise(ThreadId(li as u16), accurate);
            }
        }
        self.lgs[li].enforcer.record_stall(q);
        self.lgs[li].buckets.useful += flush_cycles;
        self.lgs[li].buckets.wait_dependence += q;
        self.sched.advance(entity, q + flush_cycles);
    }

    fn finish_lg(&mut self, li: usize, entity: usize) {
        let accel = self.config.accelerators;
        let mut cycles = 0;
        if accel && self.lgs[li].it.live_mem_rows() > 0 {
            let tag = self.lgs[li].last_tag.unwrap_or(li);
            let ops = self.lgs[li].it.flush_all(FlushReason::DependenceStall);
            for op in &ops {
                cycles += deliver_op(
                    &mut self.lgs[li],
                    tag,
                    &mut self.mem,
                    &self.config.cost,
                    accel,
                    op,
                    self.progress.get(ThreadId(li as u16)),
                    &None,
                    &mut self.metrics.violations,
                );
            }
        }
        if self.config.mode == MonitoringMode::Parallel {
            let final_progress = self.app[li]
                .rid
                .max(self.lgs[li].it.advertisable_progress());
            let cur = self.progress.get(ThreadId(li as u16));
            if final_progress > cur {
                self.progress.advertise(ThreadId(li as u16), final_progress);
            }
        }
        self.lgs[li].buckets.useful += cycles;
        self.sched.advance(entity, cycles.max(1));
        self.lgs[li].finished = true;
        self.sched.finish(entity);
    }
}

impl<'a> DeliveryCtx<'a> {
    /// Processes one ring-resident record (borrowed, never copied); returns
    /// the cycles it cost.
    ///
    /// Records that deliver nothing (IT-absorbed, IF-filtered, or simply not
    /// subscribed by the lifeguard's event view) are near-free: the event
    /// mux in hardware retires several per cycle, modeled by batching
    /// [`LgThread::skip_credit`].
    fn process_record(&mut self, li: usize, tag: usize, rec: &EventRecord) -> u64 {
        let cost = self.config.cost;
        let accel = self.config.accelerators;
        let mut cycles = 0;
        let rid = rec.rid;

        // Timesliced context switch: IT rows describe the previous thread's
        // registers; materialize them into that thread's lifeguard first.
        if self.config.mode == MonitoringMode::Timesliced {
            if let Some(prev) = self.lgs[li].last_tag {
                if prev != tag && accel && self.lgs[li].it.live_rows() > 0 {
                    let ops = self.lgs[li].it.flush_all(FlushReason::ContextSwitch);
                    for op in &ops {
                        cycles += deliver_op(
                            &mut self.lgs[li],
                            prev,
                            self.mem,
                            &cost,
                            accel,
                            op,
                            rid,
                            &None,
                            self.violations,
                        );
                    }
                }
            }
        }
        self.lgs[li].last_tag = Some(tag);

        // TSO: produce versions before the record's own effect (§5.5).
        for (vid, mem, consumers) in &rec.produce_versions {
            if accel {
                let flushed = self.lgs[li].it.flush_overlapping_public(*mem);
                for op in &flushed {
                    cycles += deliver_op(
                        &mut self.lgs[li],
                        tag,
                        self.mem,
                        &cost,
                        accel,
                        op,
                        rid,
                        &None,
                        self.violations,
                    );
                }
            }
            let range = mem.range();
            let snapshot = self.lgs[li].lg(tag).snapshot_meta(range);
            self.versions.produce(*vid, range, snapshot, *consumers);
            cycles += cost.propagation_handler;
        }

        // The versioned snapshot this record consumes, if any. An absent
        // version means the producer has not reached its store yet: the live
        // shadow is still pre-store, so reading it directly is correct (the
        // bypass is recorded so the eventual snapshot retires properly).
        let versioned: Option<(AddrRange, Vec<u8>)> = rec.consume_version.and_then(|(vid, _)| {
            let got = self.versions.consume(vid);
            if got.is_none() {
                self.versions.bypass(vid);
            }
            got
        });

        match rec.payload {
            EventPayload::Instr(instr) => {
                // Syscall race detection against the range table (§5.4).
                if let Some((mem, _)) = instr.mem_access() {
                    let hit = self.lgs[li]
                        .range_table
                        .check(ThreadId(tag as u16), mem.range());
                    if let Some(entry) = hit {
                        let mut ctx = HandlerCtx::new();
                        self.lgs[li]
                            .lg(tag)
                            .on_syscall_race(mem.range(), &entry, rid, &mut ctx);
                        cycles += charge_ctx(
                            &mut self.lgs[li],
                            self.mem,
                            &cost,
                            rid,
                            ctx,
                            self.violations,
                        );
                    }
                }
                let view = self.lgs[li].lg_ref(tag).spec().view;
                let uses_it = self.lgs[li].lg_ref(tag).spec().uses_it;
                let uses_if = self.lgs[li].lg_ref(tag).spec().uses_if;
                let mut ops: Vec<MetaOp> = Vec::new();
                match view {
                    EventView::Dataflow => {
                        if accel && uses_it {
                            if let Some((_, mem)) = rec.consume_version {
                                // §5.5: deliver versioned accesses directly,
                                // materializing same-address rows first. The
                                // delivery bypasses the IT table, so (i)
                                // rows of the instruction's *source*
                                // registers must be materialized (their
                                // lifeguard-side state is stale while held)
                                // and (ii) the destination's stale row must
                                // be dropped — the direct delivery updates
                                // the lifeguard's register state.
                                ops.extend(self.lgs[li].it.flush_overlapping_public(mem));
                                for src in instr.src_regs().into_iter().flatten() {
                                    ops.extend(self.lgs[li].it.flush_reg_public(src));
                                }
                                ops.extend(dataflow_view(&instr));
                                if let Some(dst) = instr.dst_reg() {
                                    self.lgs[li].it.clear_reg(dst);
                                }
                                self.lgs[li].it.note_processed(rid);
                            } else {
                                ops = self.lgs[li].it.process(&instr, rid);
                                if ops.is_empty() {
                                    cycles += cost.it_absorb;
                                }
                            }
                        } else {
                            ops.extend(dataflow_view(&instr));
                        }
                    }
                    EventView::Check => {
                        if let Some(op) = check_view(&instr) {
                            let filtered = if accel && uses_if && rec.consume_version.is_none() {
                                if let MetaOp::CheckAccess { mem, kind } = op {
                                    self.lgs[li].ifilter.filter(mem, kind)
                                } else {
                                    false
                                }
                            } else {
                                false
                            };
                            if filtered {
                                cycles += cost.if_hit;
                            } else {
                                ops.push(op);
                            }
                        }
                        if accel && uses_it {
                            self.lgs[li].it.note_processed(rid);
                        }
                    }
                }
                for op in &ops {
                    cycles += deliver_op(
                        &mut self.lgs[li],
                        tag,
                        self.mem,
                        &cost,
                        accel,
                        op,
                        rid,
                        &versioned,
                        self.violations,
                    );
                }
            }
            EventPayload::Ca(ca) => {
                cycles += self.process_ca(li, tag, rid, ca);
            }
        }

        if cycles == 0 {
            // Skipped record: batch four skips per cycle.
            self.lgs[li].skip_credit += 1;
            if self.lgs[li].skip_credit >= 4 {
                self.lgs[li].skip_credit = 0;
                cycles = 1;
            }
        } else {
            cycles += cost.record_drain;
        }

        // Advertise progress — delayed by IT-held state (§4.2).
        if self.config.mode == MonitoringMode::Parallel {
            let uses_it = self.lgs[li].lg_ref(tag).spec().uses_it;
            let adv = if accel && uses_it {
                self.lgs[li].it.note_processed(rid);
                if self.config.delayed_advertising {
                    self.lgs[li].it.advertisable_progress()
                } else {
                    // Unsound ablation: ignore IT-held state (Figure 3's
                    // remote conflict becomes reachable).
                    rid
                }
            } else {
                rid
            };
            let cur = self.progress.get(ThreadId(li as u16));
            if adv > cur {
                self.progress.advertise(ThreadId(li as u16), adv);
            }
        }
        cycles
    }

    fn process_ca(&mut self, li: usize, tag: usize, rid: Rid, ca: CaRecord) -> u64 {
        let cost = self.config.cost;
        let accel = self.config.accelerators;
        let mut cycles = cost.ca_handler;
        let actions = self.ca_policy.actions(ca.what, ca.phase);

        if accel && actions.flush_it && self.lgs[li].it.live_mem_rows() > 0 {
            let ops = self.lgs[li].it.flush_all(FlushReason::ConflictAlert);
            for op in &ops {
                cycles += deliver_op(
                    &mut self.lgs[li],
                    tag,
                    self.mem,
                    &cost,
                    accel,
                    op,
                    rid,
                    &None,
                    self.violations,
                );
            }
        }
        if accel && actions.flush_if {
            match ca.range {
                Some(range) => self.lgs[li].ifilter.invalidate_range(range),
                None => self.lgs[li].ifilter.invalidate_all(),
            }
        }
        if accel && actions.flush_mtlb {
            match ca.range {
                Some(range) => self.lgs[li].mtlb.flush_range(range),
                None => self.lgs[li].mtlb.flush_all(),
            }
        }
        if actions.track_range {
            match (ca.phase, ca.range) {
                (CaPhase::Begin, Some(range)) => {
                    self.lgs[li].range_table.insert(ca.issuer, ca.what, range);
                }
                (CaPhase::End, _) => self.lgs[li].range_table.remove(ca.issuer),
                _ => {}
            }
        }

        let own = ca.issuer.index() == tag;
        let mut ctx = HandlerCtx::new();
        self.lgs[li].lg(tag).handle_ca(&ca, own, rid, &mut ctx);
        if own {
            if let Some(range) = ca.range {
                cycles += cost.ca_per_16_bytes * range.len.div_ceil(16);
            }
        }
        cycles += charge_ctx(
            &mut self.lgs[li],
            self.mem,
            &cost,
            rid,
            ctx,
            self.violations,
        );
        if own
            && ca.seq != u64::MAX
            && self.config.mode == MonitoringMode::Parallel
            && self.config.ca_mode == CaMode::Barrier
            && actions.barrier
        {
            self.ca_barrier.mark_applied(ca.seq);
        }
        if accel {
            self.lgs[li].it.note_processed(rid);
        }
        cycles
    }
}

/// Delivers one ingested (replayed) record to thread `t`'s lifeguard:
/// produce/consume version bookkeeping (§5.5), syscall range-table policing
/// (§5.4), view decoding and the handler call — the ingestion mirror of
/// [`DeliveryCtx::process_record`], minus accelerators and cycle
/// accounting. Called by the deterministic backend's streaming replay loop
/// once a record's arcs are satisfied.
///
/// A structurally invalid produce annotation (duplicate version id, length
/// mismatch, empty consumer set) is a malformed *stream*, not a platform
/// bug: it is reported as [`MalformedStream`] rather than panicking, so a
/// corrupted transport cannot take the monitor down.
///
/// [`MalformedStream`]: crate::session::SessionError::MalformedStream
#[allow(clippy::too_many_arguments)] // the replay loop's split borrows
pub(crate) fn deliver_ingested(
    rec: &EventRecord,
    t: usize,
    lgs: &mut [Box<dyn paralog_lifeguards::Lifeguard>],
    range_table: &mut paralog_order::RangeTable,
    versions: &mut paralog_meta::VersionTable,
    ca_policy: &CaPolicy,
    violations: &mut Vec<Violation>,
    delivered_ops: &mut u64,
) -> Result<(), crate::session::SessionError> {
    let lg = &mut lgs[t];
    let rid = rec.rid;
    for (vid, mem, consumers) in &rec.produce_versions {
        let range = mem.range();
        let snapshot = lg.snapshot_meta(range);
        versions
            .try_produce(*vid, range, snapshot, *consumers)
            .map_err(|err| {
                crate::session::SessionError::MalformedStream(format!(
                    "thread {t} stream carries an invalid produce annotation: {err}"
                ))
            })?;
    }
    let versioned: Option<(AddrRange, Vec<u8>)> = rec.consume_version.and_then(|(vid, _)| {
        let got = versions.consume(vid);
        if got.is_none() {
            versions.bypass(vid);
        }
        got
    });
    match &rec.payload {
        EventPayload::Instr(instr) => {
            if let Some((mem, _)) = instr.mem_access() {
                if let Some(entry) = range_table.check(ThreadId(t as u16), mem.range()) {
                    let mut ctx = HandlerCtx::new();
                    lg.on_syscall_race(mem.range(), &entry, rid, &mut ctx);
                    violations.append(&mut ctx.violations);
                }
            }
            let op = match lg.spec().view {
                EventView::Dataflow => dataflow_view(instr),
                EventView::Check => check_view(instr),
            };
            if let Some(op) = op {
                let mut ctx = HandlerCtx::new();
                ctx.inject_versioned(&op, versioned.as_ref());
                lg.handle(&op, rid, &mut ctx);
                violations.append(&mut ctx.violations);
                *delivered_ops += 1;
            }
        }
        EventPayload::Ca(ca) => {
            let actions = ca_policy.actions(ca.what, ca.phase);
            if actions.track_range {
                match (ca.phase, ca.range) {
                    (CaPhase::Begin, Some(range)) => range_table.insert(ca.issuer, ca.what, range),
                    (CaPhase::End, _) => range_table.remove(ca.issuer),
                    _ => {}
                }
            }
            let own = ca.issuer.index() == t;
            let mut ctx = HandlerCtx::new();
            lg.handle_ca(ca, own, rid, &mut ctx);
            violations.append(&mut ctx.violations);
            *delivered_ops += 1;
        }
    }
    Ok(())
}

/// Delivers one metadata op to the lifeguard: dispatch + handler cost,
/// metadata address computation (M-TLB or two-level walk), handler
/// execution, metadata cache accesses and slow-path synchronization.
#[allow(clippy::too_many_arguments)] // mirrors the hardware ports it models
fn deliver_op(
    lgt: &mut LgThread,
    tag: usize,
    mem: &mut MemorySystem,
    cost: &CostModel,
    accel: bool,
    op: &MetaOp,
    rid: Rid,
    versioned: &Option<(AddrRange, Vec<u8>)>,
    violations: &mut Vec<Violation>,
) -> u64 {
    let mut cycles = cost.op_cost(op);
    let uses_mtlb = lgt.lg_ref(tag).spec().uses_mtlb;
    let mut ctx = HandlerCtx::new();
    // Only the op reading the versioned location uses the snapshot.
    ctx.inject_versioned(op, versioned.as_ref());
    lgt.lg(tag).handle(op, rid, &mut ctx);
    // Metadata address computation: charged per operand when the handler
    // reached metadata; a NULL first-level entry (address outside tracked
    // space) is a one-cycle early exit regardless of the M-TLB.
    let operands = usize::from(op.mem_src().is_some()) + usize::from(op.mem_dst().is_some());
    if ctx.meta_touches.is_empty() {
        cycles += operands.min(1) as u64;
    } else {
        for operand in [op.mem_src(), op.mem_dst()].into_iter().flatten() {
            if accel && uses_mtlb {
                if lgt.mtlb.lookup(operand.addr) {
                    cycles += cost.mtlb_hit;
                } else {
                    cycles += cost.meta_addr_walk;
                }
            } else {
                cycles += cost.meta_addr_walk;
            }
        }
    }
    lgt.delivered_ops += 1;
    cycles + charge_ctx_inner(lgt, mem, cost, rid, ctx, violations)
}

/// Charges a handler context's side effects: metadata cache traffic,
/// slow-path synchronization, and collects violations.
fn charge_ctx(
    lgt: &mut LgThread,
    mem: &mut MemorySystem,
    cost: &CostModel,
    rid: Rid,
    ctx: HandlerCtx,
    violations: &mut Vec<Violation>,
) -> u64 {
    charge_ctx_inner(lgt, mem, cost, rid, ctx, violations)
}

fn charge_ctx_inner(
    lgt: &mut LgThread,
    mem: &mut MemorySystem,
    cost: &CostModel,
    rid: Rid,
    ctx: HandlerCtx,
    violations: &mut Vec<Violation>,
) -> u64 {
    let mut cycles = 0;
    for (range, is_write) in &ctx.meta_touches {
        let kind = if *is_write {
            paralog_events::AccessKind::Write
        } else {
            paralog_events::AccessKind::Read
        };
        let res = mem.access(lgt.core, rid, range.start, range.len.max(1), kind);
        cycles += res.latency;
    }
    if ctx.slow_path {
        cycles += cost.slow_path_sync;
    }
    violations.extend(ctx.violations);
    cycles
}
