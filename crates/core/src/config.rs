//! Monitoring configuration: which mode, which lifeguard, which knobs.

use paralog_events::ring::DEFAULT_CAPACITY;
use paralog_lifeguards::{CostModel, LifeguardKind};
use paralog_order::{CapturePolicy, Reduction};
use paralog_sim::MachineConfig;

/// The three execution schemes of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MonitoringMode {
    /// Application alone (NO MONITORING): `k` threads on `2k` cores.
    None,
    /// State-of-the-art baseline (TIMESLICED MONITORING): all application
    /// threads multiplexed onto one core, one sequential lifeguard on a
    /// second core.
    Timesliced,
    /// ParaLog (PARALLEL MONITORING): `k` application + `k` lifeguard cores.
    Parallel,
}

impl std::fmt::Display for MonitoringMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MonitoringMode::None => "No Monitoring",
            MonitoringMode::Timesliced => "Timesliced Monitoring",
            MonitoringMode::Parallel => "Parallel Monitoring",
        };
        f.write_str(s)
    }
}

/// How ConflictAlert records with barrier actions are enforced — the §7
/// discussion of SWAPTIONS suggests the conservative barrier could be
/// replaced by induced dependence arcs for small allocations; `FlushOnly` is
/// that ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaMode {
    /// Conservative: all lifeguards rendezvous at each subscribed CA (§5.4).
    #[default]
    Barrier,
    /// Ablation: accelerator flushes only, ordering left to dependence arcs.
    FlushOnly,
}

/// Full configuration of one monitored run.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Execution scheme.
    pub mode: MonitoringMode,
    /// Which analysis runs.
    pub lifeguard: LifeguardKind,
    /// Enable the hardware accelerators (IT/IF/M-TLB per lifeguard spec).
    pub accelerators: bool,
    /// Dependence-capture timestamp policy (§5.1).
    pub capture: CapturePolicy,
    /// Arc-reduction aggressiveness (Figure 8's middle/right bars).
    pub reduction: Reduction,
    /// Log-buffer capacity in records (64 K ≈ 64 KB at 1 B/record).
    pub log_capacity: usize,
    /// Handler cost model.
    pub cost: CostModel,
    /// IT advertising-lag threshold (§4.2).
    pub it_threshold: Option<u64>,
    /// Stall application threads at system calls until the lifeguard catches
    /// up (§3 "Accurate Asynchronous Analysis").
    pub damage_containment: bool,
    /// ConflictAlert enforcement mode.
    pub ca_mode: CaMode,
    /// Run the machine under TSO with the versioned-metadata protocol (§5.5).
    pub tso: bool,
    /// Override the machine model (`None` = paper configuration sized to the
    /// mode: `2k` cores for None/Parallel, 2 for Timesliced).
    pub machine: Option<MachineConfig>,
    /// Run the in-line sequential reference analysis and compare fingerprints
    /// (testing/validation; adds simulation time, not modeled cycles).
    pub check_equivalence: bool,
    /// Functionally warm application and lifeguard caches before the timed
    /// window, as the paper's measurement methodology does (§6).
    pub warm_caches: bool,
    /// Dump final shadow states into the metrics (debugging aid; implies
    /// nothing about modeled cycles).
    pub dump_shadows: bool,
    /// Collect each thread's fully annotated event stream into the metrics
    /// (feeds the real-thread demonstration executor).
    pub collect_streams: bool,
    /// Delayed advertising (§4.2). Disabling it is an *unsound* ablation that
    /// demonstrates the Figure 3 remote-conflict corruption: progress is
    /// advertised past records whose inherits-from state is still cached in
    /// the IT table.
    pub delayed_advertising: bool,
}

impl MonitorConfig {
    /// The default configuration for `mode` and `lifeguard`: accelerators
    /// on, per-block capture, transitive reduction, SC, damage containment.
    pub fn new(mode: MonitoringMode, lifeguard: LifeguardKind) -> Self {
        MonitorConfig {
            mode,
            lifeguard,
            accelerators: true,
            capture: CapturePolicy::PerBlock,
            reduction: Reduction::Transitive,
            log_capacity: DEFAULT_CAPACITY,
            cost: CostModel::calibrated(),
            it_threshold: Some(4096),
            damage_containment: true,
            ca_mode: CaMode::Barrier,
            tso: false,
            machine: None,
            check_equivalence: false,
            warm_caches: true,
            dump_shadows: false,
            collect_streams: false,
            delayed_advertising: true,
        }
    }

    /// Disables the accelerators (Figure 8's "Not Accelerated" bars).
    #[must_use]
    pub fn without_accelerators(mut self) -> Self {
        self.accelerators = false;
        self
    }

    /// Uses the reduced-hardware per-core capture policy (Figure 8's
    /// "limited reduction" variant).
    #[must_use]
    pub fn with_capture(mut self, capture: CapturePolicy, reduction: Reduction) -> Self {
        self.capture = capture;
        self.reduction = reduction;
        self
    }

    /// Switches the machine to TSO.
    #[must_use]
    pub fn with_tso(mut self) -> Self {
        self.tso = true;
        self
    }

    /// Enables the in-line equivalence check against the sequential
    /// reference analysis.
    #[must_use]
    pub fn with_equivalence_check(mut self) -> Self {
        self.check_equivalence = true;
        self
    }

    /// The machine this configuration runs on for `app_threads` application
    /// threads.
    pub fn machine_for(&self, app_threads: usize) -> MachineConfig {
        if let Some(m) = self.machine {
            return m;
        }
        let cores = match self.mode {
            MonitoringMode::None | MonitoringMode::Parallel => 2 * app_threads,
            MonitoringMode::Timesliced => 2,
        };
        if self.tso {
            MachineConfig::paper_tso(cores)
        } else {
            MachineConfig::paper(cores)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_sizing_follows_figure6() {
        let par = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck);
        assert_eq!(par.machine_for(8).cores, 16);
        let ts = MonitorConfig::new(MonitoringMode::Timesliced, LifeguardKind::TaintCheck);
        assert_eq!(ts.machine_for(8).cores, 2);
        let none = MonitorConfig::new(MonitoringMode::None, LifeguardKind::TaintCheck);
        assert_eq!(none.machine_for(4).cores, 8);
    }

    #[test]
    fn tso_flag_reaches_machine() {
        let c = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::TaintCheck).with_tso();
        assert!(c.machine_for(2).is_tso());
    }

    #[test]
    fn builder_knobs() {
        let c = MonitorConfig::new(MonitoringMode::Parallel, LifeguardKind::AddrCheck)
            .without_accelerators()
            .with_capture(CapturePolicy::PerCore, Reduction::Direct);
        assert!(!c.accelerators);
        assert_eq!(c.capture, CapturePolicy::PerCore);
        assert_eq!(c.reduction, Reduction::Direct);
    }

    #[test]
    fn mode_display() {
        assert_eq!(MonitoringMode::Parallel.to_string(), "Parallel Monitoring");
    }
}
