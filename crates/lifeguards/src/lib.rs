//! Instruction-grain lifeguards for the ParaLog platform.
//!
//! A *lifeguard* (§2) maintains metadata (shadow state) for every application
//! memory location and register, updates it on application events, and checks
//! invariants against it. This crate bundles:
//!
//! * [`TaintCheck`] — dynamic taint analysis (the paper's primary lifeguard);
//! * [`AddrCheck`] — memory-allocation checking (the second evaluated
//!   lifeguard);
//! * [`MemCheck`] — initialized-ness tracking (the §4.1 example of high-level
//!   IT conflicts);
//! * [`LockSet`] — Eraser-style race detection (the §5.3 example of a
//!   lifeguard needing the fast-path/slow-path atomicity split);
//! * [`HappensBefore`] — FastTrack-style happens-before race detection
//!   (packed epochs with read vector clocks on the interned wide-word
//!   tier);
//!
//! plus the [`Lifeguard`] trait they implement, the declarative
//! [`LifeguardSpec`] the platform wires accelerators from, and the calibrated
//! [`CostModel`].
//!
//! Each bundled analysis also ships a hand-written lock-free
//! [`ConcurrentLifeguard`] form for real-thread replay ([`TaintConcurrent`],
//! [`AddrCheckConcurrent`], [`MemCheckConcurrent`], [`LockSetConcurrent`],
//! [`HappensBeforeConcurrent`]) —
//! §5.3's synchronization-free fast paths, with mutex-guarded slow paths
//! only for rare structural events. Out-of-tree analyses start with the
//! generic [`LockedConcurrent`] adapter and graduate the same way (see
//! [`factory::LifeguardFactory::concurrent`]).
//!
//! # Example
//!
//! ```rust
//! use paralog_lifeguards::{HandlerCtx, LifeguardFamily, LifeguardKind};
//! use paralog_events::{AddrRange, MemRef, MetaOp, Reg, Rid, ThreadId};
//!
//! let family = LifeguardFamily::new(
//!     LifeguardKind::TaintCheck,
//!     AddrRange::new(0x1000_0000, 0x1000_0000),
//! );
//! let mut lifeguard = family.thread(ThreadId(0));
//! let mut ctx = HandlerCtx::new();
//! lifeguard.handle(
//!     &MetaOp::MemToReg { dst: Reg::new(0), src: MemRef::new(0x1000_0000, 4) },
//!     Rid(1),
//!     &mut ctx,
//! );
//! assert!(ctx.violations.is_empty());
//! ```

#![warn(missing_debug_implementations)]

pub mod addrcheck;
pub mod cost;
pub mod factory;
pub mod happensbefore;
pub mod lifeguard;
pub mod locked;
pub mod lockset;
pub mod memcheck;
pub mod taintcheck;
pub mod wordmeta;

pub use addrcheck::{AddrCheck, AddrCheckConcurrent, AddrShared, ALLOCATED};
pub use cost::CostModel;
pub use factory::{
    ConcurrentLifeguard, DeltaLifeguard, LifeguardFactory, LifeguardFamily, LifeguardKind,
    LifeguardRegistry, MetadataShape, ReplayMode, SessionEvent, SessionEventObserver,
    VersionedMeta,
};
pub use happensbefore::{HappensBefore, HappensBeforeConcurrent, HbShared, HbWide};
pub use lifeguard::{
    join_atomic_shadow, snapshot_byte, snapshot_coverage, AtomicityClass, EventView, Fingerprint,
    HandlerCtx, Lifeguard, LifeguardSpec, SnapshotCoverage, Violation, ViolationKind,
};
pub use locked::LockedConcurrent;
pub use lockset::{LockSet, LockSetConcurrent, LockSetShared, VarState};
pub use memcheck::{MemCheck, MemCheckConcurrent, MemShared, UNDEFINED};
pub use taintcheck::{TaintCheck, TaintConcurrent, TaintShared, TAINTED};
pub use wordmeta::{apply_delta_via_overlay, flush_delta_via_overlay, WordAnalysis, WordOverlay};
