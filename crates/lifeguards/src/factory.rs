//! Construction of lifeguard families: the open factory registry.
//!
//! ParaLog's pitch (§3) is that a lifeguard written for sequential
//! monitoring ports to parallel monitoring with minimal effort. The platform
//! is therefore generic over [`Lifeguard`] trait objects, wired through
//! three pieces:
//!
//! * [`LifeguardFamily`] — owns one analysis' shared metadata (Figure 2's
//!   global metadata) and hands out one [`Lifeguard`] instance per monitored
//!   thread;
//! * [`LifeguardFactory`] — builds a family for a run. Out-of-tree analyses
//!   implement this (plus [`Lifeguard`]) and register; nothing in the
//!   platform is edited;
//! * [`LifeguardRegistry`] — name → factory resolution. The five bundled
//!   analyses are pre-registered (each [`LifeguardKind`] *is* a factory;
//!   the enum survives purely as shorthand for them).
//!
//! A factory may additionally provide a [`ConcurrentLifeguard`], the
//! `Send + Sync` replay form the real-thread backend drives. All five
//! bundled analyses ship hand-written §5.3 forms: TaintCheck and AddrCheck
//! are synchronization-free over an
//! [`AtomicShadow`](paralog_meta::AtomicShadow); MemCheck and LockSet run a
//! lock-free fast path with a mutex-guarded slow path for their rare
//! structural events (wholesale malloc/free rewrites, lockset interning —
//! see [`MemCheckConcurrent`] and [`LockSetConcurrent`]). An out-of-tree
//! factory either writes its own lock-free form (see
//! [`LifeguardFactory::concurrent`] for a worked example) or opts into the
//! generic mutex-serialized [`LockedConcurrent`](crate::LockedConcurrent)
//! fallback with a one-line override.

use crate::addrcheck::{AddrCheck, AddrCheckConcurrent, AddrShared};
use crate::happensbefore::{HappensBefore, HappensBeforeConcurrent, HbShared};
use crate::lifeguard::{Lifeguard, Violation};
use crate::lockset::{LockSet, LockSetConcurrent, LockSetShared};
use crate::memcheck::{MemCheck, MemCheckConcurrent, MemShared};
use crate::taintcheck::{TaintCheck, TaintConcurrent, TaintShared};
use paralog_events::{AddrRange, EventRecord, Rid, ThreadId};
use paralog_order::{CaPolicy, RangeEntry};
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// The bundled lifeguards, as named in the paper's evaluation (§6) plus the
/// two discussed qualitatively (§4.1, §5.3). Each kind doubles as the
/// built-in [`LifeguardFactory`] registration for that analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifeguardKind {
    /// Dynamic taint analysis (2 bits/byte, IT + M-TLB).
    TaintCheck,
    /// Allocation checking (1 bit/byte, IF + M-TLB).
    AddrCheck,
    /// Initialized-ness tracking (IT + M-TLB, IT flushed on malloc/free).
    MemCheck,
    /// Eraser-style data-race detection (fast/slow path atomicity).
    LockSet,
    /// FastTrack-style happens-before race detection (packed epochs with
    /// read vector clocks on the interned wide-word tier).
    HappensBefore,
}

impl LifeguardKind {
    /// All five bundled analyses.
    pub const ALL: [LifeguardKind; 5] = [
        LifeguardKind::TaintCheck,
        LifeguardKind::AddrCheck,
        LifeguardKind::MemCheck,
        LifeguardKind::LockSet,
        LifeguardKind::HappensBefore,
    ];

    /// The registry name of this bundled analysis.
    pub fn name(&self) -> &'static str {
        match self {
            LifeguardKind::TaintCheck => "TaintCheck",
            LifeguardKind::AddrCheck => "AddrCheck",
            LifeguardKind::MemCheck => "MemCheck",
            LifeguardKind::LockSet => "LockSet",
            LifeguardKind::HappensBefore => "HappensBefore",
        }
    }
}

impl fmt::Display for LifeguardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds [`LifeguardFamily`] instances for monitoring sessions.
///
/// This is the open extension seam: implement [`Lifeguard`] for the analysis
/// logic, implement this trait to construct its analysis-wide shared state,
/// and register it in a [`LifeguardRegistry`] (or hand it to a session
/// builder directly). The platform never needs to know the concrete type.
///
/// Factories are `Send + Sync`: a long-lived supervisor (the `paralogd`
/// daemon) resolves them from a shared registry on whatever thread accepts
/// an attach request. Factories are *constructors* — per-run state lives in
/// the [`LifeguardFamily`] / [`ConcurrentLifeguard`] they build, so the
/// bound costs implementors nothing (every bundled factory is a unit-like
/// value).
pub trait LifeguardFactory: fmt::Debug + Send + Sync {
    /// Registry name (what a session resolves by string).
    fn name(&self) -> &str;

    /// Creates a fresh family for one run. `heap` is the monitored
    /// application's heap region (analyses like AddrCheck scope their
    /// checks to it).
    fn build(&self, heap: AddrRange) -> LifeguardFamily;

    /// The `Send + Sync` form of the analysis replayed by the real-thread
    /// backend, for `threads` monitored streams. Streams arrive
    /// incrementally, so implementations must not assume the event
    /// footprint is known up front.
    ///
    /// Returns `None` by default: an analysis does not replay concurrently
    /// unless its factory says so. Every bundled analysis overrides this
    /// with a hand-written lock-free §5.3 form. An out-of-tree factory has
    /// two options:
    ///
    /// * wrap its family in the mutex-serialized
    ///   [`LockedConcurrent`](crate::LockedConcurrent) — one line, no
    ///   concurrency reasoning; see the
    ///   [`locked`](crate::locked) module docs for the worked example and
    ///   the safety contract that one line asserts;
    /// * graduate to a custom **lock-free** [`ConcurrentLifeguard`], the
    ///   §5.3 route the bundled analyses take. State lives in atomics (or
    ///   the [`AtomicShadow`](paralog_meta::AtomicShadow) /
    ///   [`AtomicWordTable`](paralog_meta::AtomicWordTable) substrates), so
    ///   the hot path never serializes:
    ///
    /// ```rust
    /// use paralog_events::{AddrRange, EventPayload, EventRecord, ThreadId};
    /// use paralog_lifeguards::{
    ///     ConcurrentLifeguard, LifeguardFactory, LifeguardFamily, LifeguardKind, VersionedMeta,
    ///     Violation,
    /// };
    /// use std::sync::atomic::{AtomicU64, Ordering};
    ///
    /// /// Counts delivered instruction records. All shared state is one
    /// /// atomic, so the concurrent form is lock-free by construction —
    /// /// no `unsafe`, no mutex, nothing for workers to contend on.
    /// #[derive(Debug, Default)]
    /// struct OpCountConcurrent(AtomicU64);
    ///
    /// impl ConcurrentLifeguard for OpCountConcurrent {
    ///     fn apply(&self, _tid: ThreadId, rec: &EventRecord, _v: Option<&VersionedMeta>) {
    ///         if matches!(rec.payload, EventPayload::Instr(_)) {
    ///             self.0.fetch_add(1, Ordering::Relaxed);
    ///         }
    ///     }
    ///     fn fingerprint(&self) -> u64 {
    ///         self.0.load(Ordering::Relaxed)
    ///     }
    ///     fn violations(&self) -> Vec<Violation> {
    ///         Vec::new()
    ///     }
    /// }
    ///
    /// #[derive(Debug)]
    /// struct OpCountFactory;
    ///
    /// impl LifeguardFactory for OpCountFactory {
    ///     fn name(&self) -> &str {
    ///         "OpCount"
    ///     }
    ///     fn build(&self, heap: AddrRange) -> LifeguardFamily {
    ///         // The sequential family (see examples/custom_lifeguard.rs);
    ///         // a bundled one keeps this example self-contained.
    ///         LifeguardKind::MemCheck.build(heap)
    ///     }
    ///     fn concurrent(
    ///         &self,
    ///         _heap: AddrRange,
    ///         _threads: usize,
    ///     ) -> Option<Box<dyn ConcurrentLifeguard>> {
    ///         Some(Box::new(OpCountConcurrent::default()))
    ///     }
    /// }
    ///
    /// let heap = AddrRange::new(0x1000_0000, 0x1000_0000);
    /// let conc = OpCountFactory.concurrent(heap, 2).expect("lock-free form");
    /// assert_eq!(conc.fingerprint(), 0);
    /// ```
    fn concurrent(&self, heap: AddrRange, threads: usize) -> Option<Box<dyn ConcurrentLifeguard>> {
        let _ = (heap, threads);
        None
    }

    /// The delta-merge replay form, for backends running in
    /// [`ReplayMode::DeltaMerge`]: workers buffer metadata writes in private
    /// [`ShadowDelta`](paralog_meta::ShadowDelta) /
    /// [`WordDelta`](paralog_meta::WordDelta) overlays and publish only at
    /// dependence-arc and sync boundaries. Returns `None` by default — an
    /// analysis without a delta form replays CAS-per-access. Every bundled
    /// analysis overrides this.
    fn concurrent_delta(&self, heap: AddrRange, threads: usize) -> Option<Box<dyn DeltaLifeguard>> {
        let _ = (heap, threads);
        None
    }

    /// Which replay mode this analysis prefers at `threads` worker threads,
    /// consulted when a session leaves the mode on automatic. The default is
    /// CAS-per-access (always correct, no buffering overhead); bundled
    /// analyses override with thresholds chosen from the measured
    /// `BENCH_concurrent.json` matrix, not guesswork.
    fn preferred_mode(&self, threads: usize) -> ReplayMode {
        let _ = threads;
        ReplayMode::CasPerAccess
    }

    /// The bundled shorthand this factory *is*, when it is one (the platform
    /// attaches the in-line sequential reference only then). Custom factories
    /// keep the default `None` — even when they reuse a bundled name to
    /// shadow it in a registry.
    fn builtin_kind(&self) -> Option<LifeguardKind> {
        None
    }

    /// The shape of this analysis' shared metadata — what substrate its
    /// concurrent forms replay on. Purely descriptive: `Auto`-mode selection
    /// reports it alongside the chosen replay mode, and the daemon `STATUS`
    /// line surfaces it per session so operators can see which tier a
    /// lifeguard's footprint lives in. Defaults to the byte shadow, the
    /// common case for out-of-tree analyses.
    fn metadata_shape(&self) -> MetadataShape {
        MetadataShape::ByteShadow
    }
}

/// The metadata substrate a lifeguard's concurrent forms replay on
/// (see [`LifeguardFactory::metadata_shape`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MetadataShape {
    /// Per-byte shadow over [`AtomicShadow`](paralog_meta::AtomicShadow)
    /// (TaintCheck, AddrCheck, MemCheck).
    ByteShadow,
    /// One packed word per granule over a
    /// [`PackedWordTable`](paralog_meta::PackedWordTable); every state fits
    /// the word (LockSet before the wide tier existed).
    PackedWord,
    /// Packed words with an interned wide-value spill tier — a
    /// [`WordTable`](paralog_meta::WordTable) (LockSet's candidate masks,
    /// HappensBefore's read vector clocks).
    WideWord,
}

impl fmt::Display for MetadataShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetadataShape::ByteShadow => "byte-shadow",
            MetadataShape::PackedWord => "packed-word",
            MetadataShape::WideWord => "wide-word",
        })
    }
}

/// How a concurrent backend publishes metadata writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplayMode {
    /// One synchronizing atomic op per monitored access (the §5.3
    /// synchronization-free fast path). Always available.
    CasPerAccess,
    /// Accumulate each batch in a private overlay, publish into the shared
    /// metadata only at dependence-arc and sync boundaries. Requires the
    /// factory to offer a [`DeltaLifeguard`] form.
    DeltaMerge,
}

impl fmt::Display for ReplayMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReplayMode::CasPerAccess => "cas",
            ReplayMode::DeltaMerge => "delta",
        })
    }
}

impl LifeguardFactory for LifeguardKind {
    fn name(&self) -> &str {
        LifeguardKind::name(self)
    }

    fn build(&self, heap: AddrRange) -> LifeguardFamily {
        match self {
            LifeguardKind::TaintCheck => {
                let shared = TaintShared::new();
                LifeguardFamily::from_constructor(self.name(), move |tid| {
                    Box::new(TaintCheck::new(Rc::clone(&shared), tid))
                })
            }
            LifeguardKind::AddrCheck => {
                let shared = AddrShared::new(heap);
                LifeguardFamily::from_constructor(self.name(), move |tid| {
                    Box::new(AddrCheck::new(Rc::clone(&shared), tid))
                })
            }
            LifeguardKind::MemCheck => {
                let shared = MemShared::new();
                LifeguardFamily::from_constructor(self.name(), move |tid| {
                    Box::new(MemCheck::new(Rc::clone(&shared), tid))
                })
            }
            LifeguardKind::LockSet => {
                let shared = LockSetShared::new();
                LifeguardFamily::from_constructor(self.name(), move |tid| {
                    Box::new(LockSet::new(Rc::clone(&shared), tid))
                })
            }
            LifeguardKind::HappensBefore => {
                let shared = HbShared::new();
                LifeguardFamily::from_constructor(self.name(), move |tid| {
                    Box::new(HappensBefore::new(Rc::clone(&shared), tid))
                })
            }
        }
    }

    fn concurrent(&self, heap: AddrRange, threads: usize) -> Option<Box<dyn ConcurrentLifeguard>> {
        // All five bundled analyses ship hand-written §5.3 forms: TaintCheck
        // and AddrCheck are synchronization-free outright; MemCheck,
        // LockSet, and HappensBefore run a lock-free fast path with a
        // mutex-guarded slow path for their rare structural events
        // (wholesale malloc/free rewrites, wide-word interning). None pays
        // the generic [`LockedConcurrent`](crate::LockedConcurrent)
        // serialization tax.
        match self {
            LifeguardKind::TaintCheck => Some(Box::new(TaintConcurrent::new(threads))),
            LifeguardKind::AddrCheck => Some(Box::new(AddrCheckConcurrent::new(heap))),
            LifeguardKind::MemCheck => Some(Box::new(MemCheckConcurrent::new(threads))),
            LifeguardKind::LockSet => Some(Box::new(LockSetConcurrent::new(threads))),
            LifeguardKind::HappensBefore => Some(Box::new(HappensBeforeConcurrent::new(threads))),
        }
    }

    fn concurrent_delta(&self, heap: AddrRange, threads: usize) -> Option<Box<dyn DeltaLifeguard>> {
        // The same concurrent types implement the delta form: they carry
        // per-worker overlays alongside their shared structures, so either
        // mode can drive the same instance (delta workers read through their
        // overlay, CAS workers never touch it).
        match self {
            LifeguardKind::TaintCheck => Some(Box::new(TaintConcurrent::new(threads))),
            LifeguardKind::AddrCheck => Some(Box::new(AddrCheckConcurrent::new(heap))),
            LifeguardKind::MemCheck => Some(Box::new(MemCheckConcurrent::new(threads))),
            LifeguardKind::LockSet => Some(Box::new(LockSetConcurrent::new(threads))),
            LifeguardKind::HappensBefore => Some(Box::new(HappensBeforeConcurrent::new(threads))),
        }
    }

    fn preferred_mode(&self, threads: usize) -> ReplayMode {
        // Thresholds read off the checked-in BENCH_concurrent.json matrix
        // (regenerate with `cargo run --release -p paralog-bench --bin
        // bench_concurrent`). MemCheck is the only analysis whose delta form
        // wins there — delta/cas 0.86–1.02 across the 16-worker profiles,
        // but a slight loss (0.95–1.04) at 8 workers, so the switch-over
        // sits at 16. TaintCheck's per-access work is too cheap to amortize
        // the overlay (1.02–1.21 everywhere), LockSet and HappensBefore
        // buffer whole granule words per access and lose outright (LockSet
        // 1.50–1.82, HappensBefore 1.54–1.66), and AddrCheck's replay
        // writes metadata only on rare CA events — nothing to buffer. All
        // four stay CAS-per-access at every measured point.
        match self {
            LifeguardKind::MemCheck if threads >= 16 => ReplayMode::DeltaMerge,
            _ => ReplayMode::CasPerAccess,
        }
    }

    fn builtin_kind(&self) -> Option<LifeguardKind> {
        Some(*self)
    }

    fn metadata_shape(&self) -> MetadataShape {
        match self {
            LifeguardKind::TaintCheck | LifeguardKind::AddrCheck | LifeguardKind::MemCheck => {
                MetadataShape::ByteShadow
            }
            LifeguardKind::LockSet | LifeguardKind::HappensBefore => MetadataShape::WideWord,
        }
    }
}

/// One analysis' per-run state: a constructor for per-thread [`Lifeguard`]
/// instances over shared analysis-wide metadata.
#[derive(Clone)]
pub struct LifeguardFamily {
    name: String,
    make: Rc<dyn Fn(ThreadId) -> Box<dyn Lifeguard>>,
}

impl fmt::Debug for LifeguardFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LifeguardFamily")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl LifeguardFamily {
    /// Creates the family of a bundled analysis. `heap` is the monitored
    /// application's heap region (AddrCheck restricts its checks to it).
    pub fn new(kind: LifeguardKind, heap: AddrRange) -> Self {
        kind.build(heap)
    }

    /// Creates a family from an arbitrary per-thread constructor. The
    /// closure typically clones an `Rc<RefCell<Shared>>` captured when the
    /// factory built the family.
    pub fn from_constructor(
        name: impl Into<String>,
        make: impl Fn(ThreadId) -> Box<dyn Lifeguard> + 'static,
    ) -> Self {
        LifeguardFamily {
            name: name.into(),
            make: Rc::new(make),
        }
    }

    /// The analysis name this family runs.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Builds the lifeguard thread paired with application thread `tid`.
    pub fn thread(&self, tid: ThreadId) -> Box<dyn Lifeguard> {
        (self.make)(tid)
    }

    /// Fingerprint of the shared metadata (order-insensitive; identical for
    /// every thread of the family).
    pub fn fingerprint(&self) -> u64 {
        self.thread(ThreadId(0)).fingerprint()
    }
}

pub use crate::lifeguard::VersionedMeta;

/// A non-fatal, session-level diagnostic: something degraded but the run
/// stays sound and keeps going. Surfaced through
/// `RunMetrics::events` rather than an error, because the §5.3 contract for
/// degradation is *over-approximation*, never a wrong report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionEvent {
    /// An analysis exhausted a bounded metadata resource and fell back to a
    /// conservative over-approximation (e.g. the lockset interner
    /// saturating to the full candidate set): reports stay sound, but some
    /// violations may go unreported from that point on.
    DegradedPrecision {
        /// The analysis that degraded (e.g. `"LockSet"`).
        lifeguard: &'static str,
        /// What was exhausted and what the fallback is.
        detail: String,
    },
}

impl fmt::Display for SessionEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionEvent::DegradedPrecision { lifeguard, detail } => {
                write!(f, "{lifeguard}: degraded precision: {detail}")
            }
        }
    }
}

/// Incremental receiver of [`SessionEvent`]s, installed on a
/// [`ConcurrentLifeguard`] via
/// [`set_event_observer`](ConcurrentLifeguard::set_event_observer).
///
/// End-of-run collection through `RunMetrics::events` is useless for a
/// session that runs for days: an operator needs to learn *while the
/// session is still running* that an analysis degraded. The observer is
/// invoked at the moment an event first occurs, on whichever worker thread
/// tripped it — implementations must be cheap and non-blocking (push into a
/// bounded channel, bump a gauge); anything slow belongs on the receiving
/// side.
///
/// `RunMetrics::events` is unaffected: events are still latched and
/// collected at session end whether or not an observer is installed.
pub type SessionEventObserver = Arc<dyn Fn(&SessionEvent) + Send + Sync>;

/// The analysis-wide state the real-thread backend replays: per-record
/// application from concurrently running worker threads.
///
/// Implementations synchronize internally — lock-free for §5.3
/// synchronization-free analyses, or with an internal lock otherwise. The
/// backend guarantees each record is applied by the worker owning its
/// stream, after every dependence arc of the record is satisfied; it also
/// polices the §5.4 syscall range table per worker and reports hits through
/// [`on_syscall_race`](Self::on_syscall_race) before applying the racing
/// access. For §5.5 TSO captures the backend additionally resolves each
/// record's version annotations against the shared concurrent version
/// table — snapshotting via [`snapshot_meta`](Self::snapshot_meta) at
/// produce points, and handing the consumed snapshot into
/// [`apply`](Self::apply) at consume points.
pub trait ConcurrentLifeguard: Send + Sync + fmt::Debug {
    /// Applies one record of thread `tid`'s stream. `versioned` carries the
    /// §5.5 snapshot this record consumes, when it consumes one: metadata
    /// reads of bytes the snapshot covers must read the snapshot (the
    /// producer's pre-store state), everything else the live shadow.
    fn apply(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>);

    /// ConflictAlert subscriptions — the backend consults `track_range` to
    /// maintain its per-worker §5.4 range tables. Defaults to no
    /// subscriptions (no range tracking).
    fn ca_policy(&self) -> CaPolicy {
        CaPolicy::new()
    }

    /// Reacts to thread `tid`'s access racing an in-flight system call
    /// (range-table hit, §5.4). Called before the racing record is applied,
    /// mirroring the deterministic delivery order. Default: no reaction.
    fn on_syscall_race(&self, tid: ThreadId, access: AddrRange, entry: &RangeEntry, rid: Rid) {
        let _ = (tid, access, entry, rid);
    }

    /// Snapshots current metadata for `range` (the §5.5 produce-version
    /// copy), comparable with
    /// [`Lifeguard::snapshot_meta`].
    ///
    /// The default returns all-clean bytes — correct for analyses that keep
    /// no byte-addressed shadow state. An analysis with a byte shadow must
    /// override this for TSO replay fidelity (all bundled forms do).
    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        vec![0; range.len as usize]
    }

    /// Order-insensitive fingerprint of the final metadata, comparable with
    /// [`Lifeguard::fingerprint`].
    fn fingerprint(&self) -> u64;

    /// Violations observed during the replay (order follows each worker's
    /// stream; interleaving across workers is scheduler-dependent).
    fn violations(&self) -> Vec<Violation>;

    /// Worker `tid` crossed a stream batch boundary: no record application
    /// is in flight on that worker, so per-record fast-path reads taken
    /// before the call are dead. This is the quiescence signal epoch-based
    /// metadata reclamation keys off (the lockset mask interner frees
    /// unreferenced ids here); analyses without deferred reclamation ignore
    /// it. Default: no-op.
    fn epoch_boundary(&self, tid: ThreadId) {
        let _ = tid;
    }

    /// Worker `tid`'s stream is exhausted: it will apply no further
    /// records and must no longer gate quiescence. Called once per worker,
    /// after its last [`epoch_boundary`](Self::epoch_boundary). Default:
    /// no-op.
    fn stream_done(&self, tid: ThreadId) {
        let _ = tid;
    }

    /// Non-fatal degradation diagnostics accumulated over the run (each
    /// kind at most once), collected into `RunMetrics::events` after
    /// replay. Default: none.
    fn session_events(&self) -> Vec<SessionEvent> {
        Vec::new()
    }

    /// Installs an incremental [`SessionEventObserver`], invoked once at
    /// the moment each session event first occurs (long-lived sessions
    /// surface degradation while still running instead of only in the
    /// end-of-run [`session_events`](Self::session_events) sweep). Called
    /// at most once per run, before any record is applied. The default
    /// drops the observer: analyses that never emit events need no hook.
    fn set_event_observer(&self, observer: SessionEventObserver) {
        let _ = observer;
    }
}

/// The delta-merge replay form: a [`ConcurrentLifeguard`] whose workers can
/// additionally buffer metadata writes in private per-thread overlays and
/// publish them on command.
///
/// The backend's contract, which makes delta-merge bit-identical to
/// CAS-per-access:
///
/// * it calls [`apply_delta`](Self::apply_delta) instead of
///   [`apply`](ConcurrentLifeguard::apply) for ordinary records — the
///   implementation routes metadata *writes* into thread `tid`'s private
///   overlay and resolves metadata *reads* overlay-first (own pending
///   writes win, everything else reads the shared structures);
/// * it calls [`flush_delta`](Self::flush_delta) before any point where
///   another thread may be ordered after `tid`'s buffered writes: before
///   blocking on an unmet dependence arc or ConflictAlert gate, before a
///   §5.5 produce point, at batch boundaries (ahead of
///   [`epoch_boundary`](ConcurrentLifeguard::epoch_boundary)), before a
///   §5.4 syscall-race repair, and at stream end;
/// * it defers the progress-table advertisement of applied records until
///   after the flush, so a peer that observes `tid`'s progress also
///   observes the published metadata.
///
/// Within one unflushed window the owner is the only writer of its buffered
/// locations — conflicting cross-thread writes are arc-ordered, and the arc
/// forces a flush first — so last-writer-wins buffering composes with each
/// analysis' merge operator (taint OR-join, MemCheck's inverted-lattice
/// join, LockSet's interned mask intersection) exactly as eager publication
/// would.
pub trait DeltaLifeguard: ConcurrentLifeguard {
    /// Applies one record of thread `tid`'s stream against the private
    /// overlay (same semantics as
    /// [`apply`](ConcurrentLifeguard::apply), different publication point).
    fn apply_delta(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>);

    /// Publishes thread `tid`'s pending overlay into the shared metadata
    /// and empties it. Idempotent; a no-op when nothing is pending.
    fn flush_delta(&self, tid: ThreadId);
}

/// Name → factory resolution for monitoring sessions.
///
/// `builtin()` pre-registers the five bundled analyses; `register` adds
/// out-of-tree factories (later registrations of the same name win, so a
/// custom analysis may shadow a bundled one).
#[derive(Debug, Clone)]
pub struct LifeguardRegistry {
    entries: Vec<Arc<dyn LifeguardFactory>>,
}

impl LifeguardRegistry {
    /// A registry with only the five bundled analyses.
    pub fn builtin() -> Self {
        let mut reg = LifeguardRegistry::empty();
        for kind in LifeguardKind::ALL {
            reg.register(kind);
        }
        reg
    }

    /// A registry with no factories at all.
    pub fn empty() -> Self {
        LifeguardRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers a factory (taking precedence over earlier same-name ones).
    pub fn register(&mut self, factory: impl LifeguardFactory + 'static) {
        self.register_arc(Arc::new(factory));
    }

    /// Registers an already-shared factory.
    pub fn register_arc(&mut self, factory: Arc<dyn LifeguardFactory>) {
        self.entries.push(factory);
    }

    /// Resolves `name`, newest registration first.
    pub fn get(&self, name: &str) -> Option<Arc<dyn LifeguardFactory>> {
        self.entries
            .iter()
            .rev()
            .find(|f| f.name() == name)
            .cloned()
    }

    /// All registered names, oldest first (shadowed duplicates included).
    pub fn names(&self) -> Vec<String> {
        self.entries.iter().map(|f| f.name().to_string()).collect()
    }
}

impl Default for LifeguardRegistry {
    fn default() -> Self {
        LifeguardRegistry::builtin()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    #[test]
    fn all_kinds_construct_threads() {
        for kind in LifeguardKind::ALL {
            let fam = LifeguardFamily::new(kind, HEAP);
            let lg = fam.thread(ThreadId(0));
            assert_eq!(lg.spec().name, kind.to_string());
            assert_eq!(fam.name(), kind.name());
        }
    }

    #[test]
    fn threads_share_state() {
        use crate::lifeguard::HandlerCtx;
        use paralog_events::{MemRef, MetaOp, Reg, Rid};

        let fam = LifeguardFamily::new(LifeguardKind::TaintCheck, HEAP);
        let mut a = fam.thread(ThreadId(0));
        let b = fam.thread(ThreadId(1));
        let before = b.fingerprint();
        // Thread 0 writes tainted register state to memory.
        let mut ctx = HandlerCtx::new();
        a.handle(
            &MetaOp::RmwOp {
                mem: MemRef::new(0x100, 4),
                reg: Reg::new(0),
            },
            Rid(1),
            &mut ctx,
        );
        // RMW with clean reg leaves memory clean; make it dirty instead:
        a.handle(
            &MetaOp::MemToReg {
                dst: Reg::new(0),
                src: MemRef::new(0x100, 4),
            },
            Rid(2),
            &mut ctx,
        );
        assert_eq!(
            b.fingerprint(),
            before,
            "clean ops leave shared state untouched"
        );
        assert_eq!(a.fingerprint(), b.fingerprint(), "both views agree");
    }

    #[test]
    fn registry_resolves_builtins_and_custom_shadowing() {
        #[derive(Debug)]
        struct Custom;
        impl LifeguardFactory for Custom {
            fn name(&self) -> &str {
                "TaintCheck" // deliberately shadows the builtin
            }
            fn build(&self, heap: AddrRange) -> LifeguardFamily {
                LifeguardKind::MemCheck.build(heap)
            }
        }

        let mut reg = LifeguardRegistry::builtin();
        assert!(reg.get("AddrCheck").is_some());
        assert!(reg.get("NoSuchAnalysis").is_none());
        assert_eq!(reg.names().len(), 5);

        reg.register(Custom);
        let fam = reg.get("TaintCheck").unwrap().build(HEAP);
        assert_eq!(
            fam.thread(ThreadId(0)).spec().name,
            "MemCheck",
            "latest registration shadows the builtin"
        );
    }

    #[test]
    fn every_builtin_offers_a_concurrent_replay_form() {
        // Every bundled analysis ships a hand-written lock-free §5.3 form —
        // all replay on the real-thread backend without the locked
        // fallback.
        for kind in LifeguardKind::ALL {
            let conc = kind.concurrent(HEAP, 2).expect("replayable");
            assert!(conc.violations().is_empty());
            // The concurrent form advertises the same CA subscriptions the
            // sequential analysis declares (drives §5.4 range tracking).
            let seq_policy = kind
                .build(HEAP)
                .thread(ThreadId(0))
                .spec()
                .ca_policy
                .clone();
            for what in [
                paralog_events::HighLevelKind::Malloc,
                paralog_events::HighLevelKind::Free,
            ] {
                assert_eq!(
                    conc.ca_policy().subscribes(what),
                    seq_policy.subscribes(what),
                    "{kind}: CA subscription mismatch"
                );
            }
        }
    }

    #[test]
    fn every_builtin_offers_a_delta_replay_form() {
        for kind in LifeguardKind::ALL {
            let delta = kind.concurrent_delta(HEAP, 2).expect("delta form");
            assert!(delta.violations().is_empty());
            // Flushing an empty overlay is a no-op.
            delta.flush_delta(ThreadId(0));
            assert_eq!(
                delta.fingerprint(),
                kind.concurrent(HEAP, 2).expect("cas form").fingerprint(),
                "{kind}: fresh forms agree"
            );
        }
        // Defaults come from the measured matrix: only MemCheck's delta
        // form wins, and only from 16 workers up; everything else stays on
        // CAS-per-access at every measured point.
        assert_eq!(
            LifeguardKind::MemCheck.preferred_mode(16),
            ReplayMode::DeltaMerge
        );
        assert_eq!(
            LifeguardKind::MemCheck.preferred_mode(8),
            ReplayMode::CasPerAccess
        );
        for kind in [
            LifeguardKind::AddrCheck,
            LifeguardKind::TaintCheck,
            LifeguardKind::LockSet,
            LifeguardKind::HappensBefore,
        ] {
            assert_eq!(kind.preferred_mode(16), ReplayMode::CasPerAccess);
        }
        // A factory that opts out of everything still has sane defaults.
        #[derive(Debug)]
        struct Bare;
        impl LifeguardFactory for Bare {
            fn name(&self) -> &str {
                "Bare"
            }
            fn build(&self, heap: AddrRange) -> LifeguardFamily {
                LifeguardKind::MemCheck.build(heap)
            }
        }
        assert!(Bare.concurrent_delta(HEAP, 8).is_none());
        assert_eq!(Bare.preferred_mode(64), ReplayMode::CasPerAccess);
        assert_eq!(ReplayMode::DeltaMerge.to_string(), "delta");
        assert_eq!(ReplayMode::CasPerAccess.to_string(), "cas");
    }

    #[test]
    fn custom_factories_opt_into_the_locked_fallback() {
        #[derive(Debug)]
        struct Plain;
        impl LifeguardFactory for Plain {
            fn name(&self) -> &str {
                "Plain"
            }
            fn build(&self, heap: AddrRange) -> LifeguardFamily {
                LifeguardKind::MemCheck.build(heap)
            }
            fn concurrent(
                &self,
                heap: AddrRange,
                threads: usize,
            ) -> Option<Box<dyn ConcurrentLifeguard>> {
                // SAFETY: this factory's families (MemCheck's) are
                // self-contained.
                Some(Box::new(unsafe {
                    crate::locked::LockedConcurrent::new(self.build(heap), threads)
                }))
            }
        }
        #[derive(Debug)]
        struct NoOptIn;
        impl LifeguardFactory for NoOptIn {
            fn name(&self) -> &str {
                "NoOptIn"
            }
            fn build(&self, heap: AddrRange) -> LifeguardFamily {
                LifeguardKind::MemCheck.build(heap)
            }
        }
        let conc = Plain.concurrent(HEAP, 3).expect("opted-in locked form");
        assert_eq!(conc.violations().len(), 0);
        assert!(
            NoOptIn.concurrent(HEAP, 3).is_none(),
            "without an explicit opt-in a custom analysis stays sequential-only"
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(LifeguardKind::TaintCheck.to_string(), "TaintCheck");
        assert_eq!(LifeguardKind::LockSet.to_string(), "LockSet");
        assert_eq!(LifeguardKind::HappensBefore.to_string(), "HappensBefore");
    }

    #[test]
    fn metadata_shapes_describe_the_substrate() {
        assert_eq!(
            LifeguardKind::TaintCheck.metadata_shape(),
            MetadataShape::ByteShadow
        );
        assert_eq!(
            LifeguardKind::LockSet.metadata_shape(),
            MetadataShape::WideWord
        );
        assert_eq!(
            LifeguardKind::HappensBefore.metadata_shape(),
            MetadataShape::WideWord
        );
        assert_eq!(MetadataShape::ByteShadow.to_string(), "byte-shadow");
        assert_eq!(MetadataShape::PackedWord.to_string(), "packed-word");
        assert_eq!(MetadataShape::WideWord.to_string(), "wide-word");
        // Out-of-tree factories default to the byte shadow.
        #[derive(Debug)]
        struct Shapeless;
        impl LifeguardFactory for Shapeless {
            fn name(&self) -> &str {
                "Shapeless"
            }
            fn build(&self, heap: AddrRange) -> LifeguardFamily {
                LifeguardKind::MemCheck.build(heap)
            }
        }
        assert_eq!(Shapeless.metadata_shape(), MetadataShape::ByteShadow);
    }
}
