//! Construction of lifeguard families.
//!
//! A *family* owns the analysis-wide shared metadata (Figure 2's global
//! metadata) and hands out one [`Lifeguard`] instance per monitored thread.
//! The platform is generic over [`Lifeguard`] trait objects, so adding a new
//! analysis means implementing the trait and (optionally) extending
//! [`LifeguardKind`] for the bundled experiment harness.

use crate::addrcheck::{AddrCheck, AddrShared};
use crate::lifeguard::Lifeguard;
use crate::lockset::{LockSet, LockSetShared};
use crate::memcheck::{MemCheck, MemShared};
use crate::taintcheck::{TaintCheck, TaintShared};
use paralog_events::{AddrRange, ThreadId};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The bundled lifeguards, as named in the paper's evaluation (§6) plus the
/// two discussed qualitatively (§4.1, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifeguardKind {
    /// Dynamic taint analysis (2 bits/byte, IT + M-TLB).
    TaintCheck,
    /// Allocation checking (1 bit/byte, IF + M-TLB).
    AddrCheck,
    /// Initialized-ness tracking (IT + M-TLB, IT flushed on malloc/free).
    MemCheck,
    /// Eraser-style data-race detection (fast/slow path atomicity).
    LockSet,
}

impl fmt::Display for LifeguardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LifeguardKind::TaintCheck => "TaintCheck",
            LifeguardKind::AddrCheck => "AddrCheck",
            LifeguardKind::MemCheck => "MemCheck",
            LifeguardKind::LockSet => "LockSet",
        };
        f.write_str(s)
    }
}

enum SharedState {
    Taint(Rc<RefCell<TaintShared>>),
    Addr(Rc<RefCell<AddrShared>>),
    Mem(Rc<RefCell<MemShared>>),
    Lock(Rc<RefCell<LockSetShared>>),
}

impl fmt::Debug for SharedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SharedState::Taint(_) => "Taint",
            SharedState::Addr(_) => "Addr",
            SharedState::Mem(_) => "Mem",
            SharedState::Lock(_) => "Lock",
        };
        write!(f, "SharedState::{name}")
    }
}

/// Owns one analysis' shared metadata and builds per-thread lifeguards.
#[derive(Debug)]
pub struct LifeguardFamily {
    kind: LifeguardKind,
    shared: SharedState,
}

impl LifeguardFamily {
    /// Creates the family. `heap` is the monitored application's heap region
    /// (AddrCheck restricts its checks to it).
    pub fn new(kind: LifeguardKind, heap: AddrRange) -> Self {
        let shared = match kind {
            LifeguardKind::TaintCheck => SharedState::Taint(TaintShared::new()),
            LifeguardKind::AddrCheck => SharedState::Addr(AddrShared::new(heap)),
            LifeguardKind::MemCheck => SharedState::Mem(MemShared::new()),
            LifeguardKind::LockSet => SharedState::Lock(LockSetShared::new()),
        };
        LifeguardFamily { kind, shared }
    }

    /// Which analysis this family runs.
    pub fn kind(&self) -> LifeguardKind {
        self.kind
    }

    /// Builds the lifeguard thread paired with application thread `tid`.
    pub fn thread(&self, tid: ThreadId) -> Box<dyn Lifeguard> {
        match &self.shared {
            SharedState::Taint(s) => Box::new(TaintCheck::new(Rc::clone(s), tid)),
            SharedState::Addr(s) => Box::new(AddrCheck::new(Rc::clone(s), tid)),
            SharedState::Mem(s) => Box::new(MemCheck::new(Rc::clone(s), tid)),
            SharedState::Lock(s) => Box::new(LockSet::new(Rc::clone(s), tid)),
        }
    }

    /// Fingerprint of the shared metadata (order-insensitive; identical for
    /// every thread of the family).
    pub fn fingerprint(&self) -> u64 {
        self.thread(ThreadId(0)).fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    #[test]
    fn all_kinds_construct_threads() {
        for kind in [
            LifeguardKind::TaintCheck,
            LifeguardKind::AddrCheck,
            LifeguardKind::MemCheck,
            LifeguardKind::LockSet,
        ] {
            let fam = LifeguardFamily::new(kind, HEAP);
            let lg = fam.thread(ThreadId(0));
            assert_eq!(lg.spec().name, kind.to_string());
            assert_eq!(fam.kind(), kind);
        }
    }

    #[test]
    fn threads_share_state() {
        use crate::lifeguard::HandlerCtx;
        use paralog_events::{MemRef, MetaOp, Reg, Rid};

        let fam = LifeguardFamily::new(LifeguardKind::TaintCheck, HEAP);
        let mut a = fam.thread(ThreadId(0));
        let b = fam.thread(ThreadId(1));
        let before = b.fingerprint();
        // Thread 0 writes tainted register state to memory.
        let mut ctx = HandlerCtx::new();
        a.handle(
            &MetaOp::RmwOp {
                mem: MemRef::new(0x100, 4),
                reg: Reg::new(0),
            },
            Rid(1),
            &mut ctx,
        );
        // RMW with clean reg leaves memory clean; make it dirty instead:
        a.handle(
            &MetaOp::MemToReg {
                dst: Reg::new(0),
                src: MemRef::new(0x100, 4),
            },
            Rid(2),
            &mut ctx,
        );
        assert_eq!(
            b.fingerprint(),
            before,
            "clean ops leave shared state untouched"
        );
        assert_eq!(a.fingerprint(), b.fingerprint(), "both views agree");
    }

    #[test]
    fn display_names() {
        assert_eq!(LifeguardKind::TaintCheck.to_string(), "TaintCheck");
        assert_eq!(LifeguardKind::LockSet.to_string(), "LockSet");
    }
}
