//! The lifeguard handler cost model.
//!
//! Our substrate is a simulator, not the authors' Simics testbed, so handler
//! costs are explicit calibrated constants (documented in DESIGN.md §7)
//! rather than measured instruction counts. They were chosen once so that
//! unaccelerated single-threaded TaintCheck lands in the paper's 3–5X
//! slowdown band and accelerated monitoring in the ≤1.5X band, then frozen;
//! every figure is generated from the same constants.

use paralog_events::MetaOp;

/// Cycle costs of the lifeguard pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Consuming one record from the log (decompress + dispatch decision).
    pub record_drain: u64,
    /// Dispatching a delivered event to its registered handler.
    pub dispatch: u64,
    /// Base cycles of a propagation handler body (excl. metadata access).
    pub propagation_handler: u64,
    /// Base cycles of a check handler body.
    pub check_handler: u64,
    /// Base cycles of a high-level (CA) handler body.
    pub ca_handler: u64,
    /// Per-application-byte cost of range metadata updates in CA handlers
    /// (malloc/free paint their whole range, amortized in hardware by
    /// word-at-a-time stores).
    pub ca_per_16_bytes: u64,
    /// Two-level shadow walk to compute a metadata address (no M-TLB).
    pub meta_addr_walk: u64,
    /// Metadata address computation on an M-TLB hit.
    pub mtlb_hit: u64,
    /// Cycles to pass an event through the Idempotent Filter on a hit.
    pub if_hit: u64,
    /// Cycles for IT to absorb an event without delivery.
    pub it_absorb: u64,
    /// Locked slow-path synchronization (an atomic locking the bus, §5.3:
    /// "often requiring over a hundred cycles").
    pub slow_path_sync: u64,
    /// Lifeguard-side processing of a dependence-stall poll.
    pub stall_poll: u64,
}

impl CostModel {
    /// The calibrated model used by all experiments.
    pub fn calibrated() -> Self {
        CostModel {
            record_drain: 1,
            dispatch: 1,
            propagation_handler: 4,
            check_handler: 2,
            ca_handler: 12,
            ca_per_16_bytes: 1,
            meta_addr_walk: 8,
            mtlb_hit: 1,
            if_hit: 1,
            it_absorb: 0,
            slow_path_sync: 120,
            stall_poll: 2,
        }
    }

    /// Base handler cost for a delivered metadata op (metadata memory time is
    /// charged separately through the cache model).
    pub fn op_cost(&self, op: &MetaOp) -> u64 {
        let base = match op {
            MetaOp::CheckAccess { .. } | MetaOp::CheckJmp { .. } => self.check_handler,
            MetaOp::MemToMem { .. } => self.propagation_handler + 2,
            _ => self.propagation_handler,
        };
        self.dispatch + base
    }

    /// Number of metadata-address computations a delivered op performs.
    pub fn addr_computations(&self, op: &MetaOp) -> u64 {
        let mut n = 0;
        if op.mem_src().is_some() {
            n += 1;
        }
        if op.mem_dst().is_some() {
            n += 1;
        }
        n
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{AccessKind, MemRef, Reg};

    #[test]
    fn op_costs_are_positive_and_distinguish_classes() {
        let c = CostModel::calibrated();
        let m = MemRef::new(0x100, 4);
        let check = c.op_cost(&MetaOp::CheckAccess {
            mem: m,
            kind: AccessKind::Read,
        });
        let prop = c.op_cost(&MetaOp::MemToReg {
            dst: Reg::new(0),
            src: m,
        });
        let copy = c.op_cost(&MetaOp::MemToMem {
            dst: m,
            src: MemRef::new(0x200, 4),
        });
        assert!(check > 0 && prop > 0);
        assert!(copy > prop, "coalesced copies touch two locations");
    }

    #[test]
    fn addr_computations_count_operands() {
        let c = CostModel::calibrated();
        let m = MemRef::new(0x100, 4);
        assert_eq!(
            c.addr_computations(&MetaOp::ImmToReg { dst: Reg::new(0) }),
            0
        );
        assert_eq!(
            c.addr_computations(&MetaOp::MemToReg {
                dst: Reg::new(0),
                src: m
            }),
            1
        );
        assert_eq!(
            c.addr_computations(&MetaOp::MemToMem {
                dst: m,
                src: MemRef::new(0x200, 4)
            }),
            2
        );
    }

    #[test]
    fn walk_dwarfs_mtlb_hit() {
        let c = CostModel::calibrated();
        assert!(
            c.meta_addr_walk >= 4 * c.mtlb_hit,
            "M-TLB must be worth having"
        );
        assert!(
            c.slow_path_sync > 100,
            "§5.3: atomics lock the bus for >100 cycles"
        );
    }
}
