//! HAPPENSBEFORE: FastTrack-style happens-before data-race detection
//! (Flanagan & Freund), the second race lifeguard and the first analysis on
//! the generic wide-metadata [`WordTable`] tier.
//!
//! Where LOCKSET checks a locking *discipline*, HAPPENSBEFORE checks the
//! *ordering* itself: an access races iff it is not ordered, by the
//! happens-before relation, after every conflicting access. Per-thread
//! vector clocks advance on synchronization; per-word state records the
//! last write as a FastTrack *epoch* — a `(thread, clock)` pair that packs
//! into half a metadata word — and the reads-since-last-write as either a
//! second packed epoch or a read vector clock spilled to the interned wide
//! tier.
//!
//! # Clock advancement: sync-space accesses, not CA records
//!
//! The monitored application's synchronization is visible to the lifeguard
//! as ordinary accesses to the synchronization-object address space
//! (`addr >= SYNC_SPACE_START`, mirroring `paralog_sim::sync::SYNC_BASE`):
//! a lock acquire is an `Rmw` of the lock word, a release is a `Store` to
//! it, barriers are slot stores/loads plus a flag store/loads. Each sync
//! word carries the vector clock its last releaser published:
//!
//! * a **read** of a sync word joins that clock into the reader's
//!   (`C_t ⊔= L_a`) — acquire semantics;
//! * a **write** publishes the writer's clock (`L_a := C_t`) and then bumps
//!   the writer's own component (`C_t[t] += 1`) — release semantics;
//! * an **rmw** does both: join, publish the joined clock, bump.
//!
//! No new capture format is needed: the dependence-arc stream already
//! orders conflicting sync-word accesses, so clock joins replay
//! deterministically. ConflictAlert records carry no ordering information
//! for this analysis — the §5.4 policy is empty ([`CaPolicy::new`]), like
//! LOCKSET's, because every happens-before edge rides the sync words.
//!
//! # §5.5 versioned reads
//!
//! HAPPENSBEFORE keeps no byte-shadow metadata, so produce/consume
//! snapshots carry nothing ([`snapshot_meta`](Lifeguard::snapshot_meta) is
//! all-zero) — what matters is that the versioning machinery *delivers* the
//! producing store's record before the consuming read's on every backend,
//! which keeps the race check's view of the word table deterministic. One
//! precision caveat is inherited from reversal itself: a version-reversed
//! read race-checks against the post-reversing-store table state, so it is
//! checked against that store's epoch rather than the pre-store one; the
//! race is still detected (and the REPORTED bit still dedups it).
//!
//! # Determinism
//!
//! Replay applies same-granule conflicting accesses in captured order
//! (arcs) and same-thread accesses in stream order, so the only unordered
//! same-word pairs are read/read. Read state is maintained as a per-thread
//! slot merge — thread `t`'s slot holds its latest read clock — which is
//! commutative across unordered reads, making the final metadata (and the
//! fingerprint) backend-independent by construction.
//!
//! One more rule makes it *schedule*-independent even on racing words: a
//! detected race **poisons** the word to the absorbing unknown-order
//! sentinel (and sets its REPORTED bit, so each word reports at most
//! once). FastTrack's post-race state is last-writer-wins — order-sensitive
//! exactly when the accesses race — so instead of carrying an
//! order-dependent epoch forward, every form converges on the same
//! sentinel however the racing accesses interleave. This is also what lets
//! the delta form repair a lost publish CAS without replaying the window:
//! a *writing* window can only lose its publish to an arc-unordered
//! conflicting peer, which is itself a race, so the word poisons either
//! way.

use crate::factory::{ConcurrentLifeguard, VersionedMeta};
use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use crate::lockset::SYNC_SPACE_START;
use crate::wordmeta::{WordAnalysis, WordOverlay};
use paralog_events::{
    check_view, AccessKind, AddrRange, CaRecord, EventPayload, EventRecord, MemRef, MetaOp, Rid,
    ThreadId,
};
use paralog_meta::{LaneCell, MetaWord, WordTable, MAX_WIDE_IDS};
use paralog_order::CaPolicy;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Word granularity of race detection (4 bytes, matching LOCKSET).
const GRANULE: u64 = 4;

/// First word-table key of the synchronization-object space: sync words
/// share the data table (the keyspaces are disjoint), but their words hold
/// published vector clocks instead of FastTrack access state.
const SYNC_KEY_START: u64 = SYNC_SPACE_START / GRANULE;

/// A FastTrack epoch: `(thread, clock)`. Clock 0 is ⊥ — "no such event" —
/// and per-thread clocks start at 1, so ⊥ happens-before everything.
type Epoch = (u16, u32);

/// The poisoned/unknown-order write epoch (see module docs): ⊤, ordered
/// after nothing, installed when a word races. Matches
/// [`HbWide::saturated`] so the sequential and concurrent forms mix
/// identical fingerprint payloads for raced words.
const POISON: Epoch = (u16::MAX, u32::MAX);

/// Whether event `e` happens-before a thread whose clock is `clock`.
fn epoch_hb(e: Epoch, clock: &[u32]) -> bool {
    e.1 <= clock.get(usize::from(e.0)).copied().unwrap_or(0) || e.1 == 0
}

/// Sets thread `t`'s slot of a sparse, tid-sorted vector clock.
fn set_slot(vc: &mut Vec<Epoch>, t: u16, c: u32) {
    match vc.binary_search_by_key(&t, |&(u, _)| u) {
        Ok(i) => vc[i].1 = c,
        Err(i) => vc.insert(i, (t, c)),
    }
}

/// Joins a sparse vector clock into a dense per-thread clock.
fn join_clock(clock: &mut Vec<u32>, vc: &[Epoch]) {
    for &(t, c) in vc {
        let t = usize::from(t);
        if clock.len() <= t {
            clock.resize(t + 1, 0);
        }
        clock[t] = clock[t].max(c);
    }
}

/// The sparse, tid-sorted form of a dense clock (what a release publishes).
fn clock_vc(clock: &[u32]) -> Vec<Epoch> {
    clock
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(t, &c)| (t as u16, c))
        .collect()
}

/// One FastTrack transition of a data word's abstract state — the single
/// state machine behind the sequential form, the concurrent CAS loop, and
/// the delta-merge overlay fold. Returns `None` when the access is a
/// same-epoch no-op, otherwise `Some(race)` with the state updated: a write
/// installs its epoch and clears the read state; a read merges its epoch
/// into its thread's read slot.
fn step_access(
    write: &mut Epoch,
    reads: &mut Vec<Epoch>,
    writes: bool,
    t: u16,
    clock: &[u32],
) -> Option<bool> {
    let c = clock.get(usize::from(t)).copied().unwrap_or(0);
    if writes {
        if *write == (t, c) {
            return None; // write-same-epoch
        }
        let race = !epoch_hb(*write, clock) || reads.iter().any(|&r| !epoch_hb(r, clock));
        *write = (t, c);
        reads.clear();
        Some(race)
    } else {
        if reads.contains(&(t, c)) {
            return None; // read-same-epoch
        }
        let race = !epoch_hb(*write, clock);
        set_slot(reads, t, c);
        Some(race)
    }
}

/// Canonical fingerprint payload of one word's abstract state: depends on
/// the last-write epoch and the tid-sorted read set only — never on the
/// packed/wide representation, an interner id, or the REPORTED bit — so
/// sequential and concurrent forms mix identical values.
fn canon_word(write: Epoch, reads: &[Epoch]) -> u64 {
    let mut v = (u64::from(write.0) << 32) | u64::from(write.1);
    for &(t, c) in reads {
        v = v.rotate_left(9) ^ (u64::from(t) << 32) ^ u64::from(c) ^ (1 << 63);
    }
    v
}

/// Per-word state of one data granule in the sequential form.
#[derive(Debug, Clone)]
struct DataWord {
    write: Epoch,
    reads: Vec<Epoch>,
    reported: bool,
}

/// Analysis-wide shared state of the sequential form: per-thread vector
/// clocks, published sync-word clocks, and per-granule FastTrack state.
#[derive(Debug, Default)]
pub struct HbShared {
    clocks: Vec<Vec<u32>>,
    sync: HashMap<u64, Vec<Epoch>>,
    data: HashMap<u64, DataWord>,
}

impl HbShared {
    /// Fresh state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(HbShared::default()))
    }

    fn clock_mut(&mut self, t: u16) -> &mut Vec<u32> {
        let t = usize::from(t);
        if self.clocks.len() <= t {
            self.clocks.resize(t + 1, Vec::new());
        }
        let clock = &mut self.clocks[t];
        if clock.len() <= t {
            clock.resize(t + 1, 0);
        }
        if clock[t] == 0 {
            clock[t] = 1; // clocks start at 1; 0 is ⊥
        }
        clock
    }
}

/// One lifeguard thread of the parallel HAPPENSBEFORE.
#[derive(Debug)]
pub struct HappensBefore {
    shared: Rc<RefCell<HbShared>>,
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl HappensBefore {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<HbShared>>, tid: ThreadId) -> Self {
        HappensBefore {
            shared,
            tid,
            spec: LifeguardSpec {
                name: "HappensBefore",
                view: EventView::Check,
                uses_it: false,
                uses_if: false,
                uses_mtlb: true,
                // Every happens-before edge rides the sync words; CA records
                // carry nothing for this analysis (see module docs).
                ca_policy: CaPolicy::new(),
                bits_per_byte: 8,
                atomicity: AtomicityClass::FastPathSlowPath,
            },
        }
    }

    fn sync_access(&mut self, addr: u64, kind: AccessKind) {
        let mut shared = self.shared.borrow_mut();
        let t = self.tid.0;
        if kind.reads() {
            if let Some(vc) = shared.sync.get(&addr).cloned() {
                join_clock(shared.clock_mut(t), &vc);
            } else {
                shared.clock_mut(t); // materialize the clock anyway
            }
        }
        if kind.writes() {
            let vc = clock_vc(shared.clock_mut(t));
            shared.sync.insert(addr, vc);
            let t = usize::from(t);
            shared.clocks[t][t] += 1; // release: next epoch starts here
        }
    }

    fn data_access(&mut self, key: u64, writes: bool, rid: Rid, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        let t = self.tid.0;
        let clock = shared.clock_mut(t).clone();
        let entry = shared.data.entry(key).or_insert(DataWord {
            write: (0, 0),
            reads: Vec::new(),
            reported: false,
        });
        if entry.write == POISON {
            return; // raced words are absorbing (and already reported)
        }
        let Some(race) = step_access(&mut entry.write, &mut entry.reads, writes, t, &clock) else {
            return;
        };
        if !writes {
            // §5.3: a metadata write in a read handler is the slow path.
            ctx.slow_path = true;
        }
        if race {
            entry.write = POISON;
            entry.reads.clear();
            if !entry.reported {
                entry.reported = true;
                ctx.report(Violation {
                    tid: self.tid,
                    rid,
                    kind: ViolationKind::DataRace,
                    addr: Some(key * GRANULE),
                });
            }
        }
    }
}

impl Lifeguard for HappensBefore {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let (mem, kind) = match *op {
            MetaOp::CheckAccess { mem, kind } => (mem, kind),
            // Defensive: under EventView::Check rmws arrive as CheckAccess,
            // but an rmw delivered raw is still a sync (or data) access.
            MetaOp::RmwOp { mem, .. } => (mem, AccessKind::Rmw),
            _ => return,
        };
        if mem.addr >= SYNC_SPACE_START {
            self.sync_access(mem.addr, kind);
            return;
        }
        let first = mem.addr / GRANULE;
        let last = (mem.addr + u64::from(mem.size) - 1) / GRANULE;
        for key in first..=last {
            ctx.touch_read(AddrRange::new(0x6400_0000_0000 + key * 8, 8));
            self.data_access(key, kind.writes(), rid, ctx);
        }
    }

    fn handle_ca(&mut self, _ca: &CaRecord, _own: bool, _rid: Rid, _ctx: &mut HandlerCtx) {
        // Ordering rides the sync words (module docs); CAs carry nothing.
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // No byte-shadow metadata; §5.5 versioning gates record delivery but
        // snapshots nothing (identical to LockSet's all-clean answer).
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (key, entry) in &shared.data {
            fp.mix(key * GRANULE, canon_word(entry.write, &entry.reads));
        }
        for (addr, vc) in &shared.sync {
            fp.mix(*addr, canon_word((0, 0), vc));
        }
        fp.finish()
    }
}

// --- concurrent form -------------------------------------------------------

/// Word formats (bits 0–1). The all-zero word is reserved for never-touched
/// keys, so `F_VIRGIN` *is* 0 and every real state is non-zero.
const FMT_MASK: u64 = 0b11;
const F_PACKED: u64 = 1;
const F_WIDE: u64 = 2;
/// Bit 2: the once-per-word race report fired.
const REPORTED_BIT: u64 = 1 << 2;
/// Bit 3: the packed read epoch is populated.
const READ_VALID_BIT: u64 = 1 << 3;
/// Bits 4–31: packed last-write epoch (tid 6 bits, clock 22 bits).
const W_SHIFT: u32 = 4;
/// Bits 32–59: packed read epoch (same layout).
const R_SHIFT: u32 = 32;
/// Wide format: bits 32–63 carry the interned [`HbWide`] id.
const ID_SHIFT: u32 = 32;
const EPOCH_MASK: u64 = (1 << 28) - 1;

fn pack_epoch((t, c): Epoch) -> Option<u64> {
    (t < 64 && c < (1 << 22)).then(|| u64::from(t) | (u64::from(c) << 6))
}

fn unpack_epoch(bits: u64) -> Epoch {
    ((bits & 63) as u16, (bits >> 6) as u32)
}

/// The interned id a word carries, or 0 (never reclaimed) when it carries
/// none — callers feed the result straight to `release`, a no-op on 0.
fn wide_id(word: u64) -> u32 {
    if word & FMT_MASK == F_WIDE {
        (word >> ID_SHIFT) as u32
    } else {
        0
    }
}

/// Wide-tier value of one word: the last-write epoch plus the full read
/// vector clock (tid-sorted). Sync words store the published vector clock
/// in `reads` with a ⊥ write — the keyspaces are disjoint, so the
/// interpretation is contextual.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HbWide {
    write: Epoch,
    reads: Vec<Epoch>,
}

impl MetaWord for HbWide {
    /// The unknown-order sentinel (interner id 0): history for this word is
    /// lost, so every later access conservatively reports — races are never
    /// missed, some reports may be spurious.
    fn saturated() -> Self {
        HbWide {
            write: (u16::MAX, u32::MAX),
            reads: Vec::new(),
        }
    }
}

/// A decoded word: what the race check actually runs on.
#[derive(Debug)]
enum HbView {
    Virgin,
    Known {
        write: Epoch,
        reads: Vec<Epoch>,
    },
    /// The unknown-order sentinel (wide id 0).
    Saturated,
}

fn decode(word: u64, resolve: impl FnOnce(u32) -> HbWide) -> HbView {
    match word & FMT_MASK {
        0 => HbView::Virgin,
        F_PACKED => HbView::Known {
            write: unpack_epoch((word >> W_SHIFT) & EPOCH_MASK),
            reads: if word & READ_VALID_BIT != 0 {
                vec![unpack_epoch((word >> R_SHIFT) & EPOCH_MASK)]
            } else {
                Vec::new()
            },
        },
        F_WIDE => {
            let id = (word >> ID_SHIFT) as u32;
            if id == 0 {
                HbView::Saturated
            } else {
                let wide = resolve(id);
                HbView::Known {
                    write: wide.write,
                    reads: wide.reads,
                }
            }
        }
        _ => unreachable!("2-bit format"),
    }
}

/// The `Send + Sync` replay form of HAPPENSBEFORE driven by the real-thread
/// backend: FastTrack's fast paths made lock-free on the generic
/// [`WordTable`] substrate.
///
/// The common cases — write-same-epoch, read-same-epoch, an ordered
/// re-access whose state packs into one word — are a load-acquire plus at
/// most one CAS; the interner mutex is taken only when a word's read set
/// outgrows a single epoch (read-share inflation), when an epoch outgrows
/// the packed field, or when a sync word publishes a clock — the rare
/// structural slow paths. Per-thread clocks are worker-private lanes (the
/// backend applies each stream's records on its owning worker only), so
/// clock joins and bumps never synchronize at all.
pub struct HappensBeforeConcurrent {
    /// granule/sync-word key → packed epoch word or interned wide id.
    words: WordTable<HbWide>,
    /// Per-thread vector clocks (dense). Worker-private by the backend's
    /// contract, hence [`LaneCell`]s — no lock on the per-access read.
    clocks: Vec<LaneCell<Vec<u32>>>,
    /// Per-worker delta-merge overlays, published at flush points through
    /// the generic [`WordAnalysis`] adapter.
    overlay: WordOverlay<HbWindow>,
    violations: Mutex<Vec<Violation>>,
    /// Incremental session-event receiver (live daemon feeds); invoked once
    /// when saturation first latches.
    observer: Mutex<Option<crate::SessionEventObserver>>,
    observer_notified: AtomicBool,
}

impl std::fmt::Debug for HappensBeforeConcurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HappensBeforeConcurrent")
            .field("threads", &self.clocks.len())
            .finish_non_exhaustive()
    }
}

impl HappensBeforeConcurrent {
    /// A fresh concurrent HAPPENSBEFORE for `threads` replayed streams.
    pub fn new(threads: usize) -> Self {
        HappensBeforeConcurrent {
            words: WordTable::new(threads),
            clocks: (0..threads)
                .map(|t| {
                    let mut clock = vec![0u32; threads];
                    clock[t] = 1; // clocks start at 1; 0 is ⊥
                    LaneCell::new(clock)
                })
                .collect(),
            overlay: WordOverlay::new(threads),
            violations: Mutex::new(Vec::new()),
            observer: Mutex::new(None),
            observer_notified: AtomicBool::new(false),
        }
    }

    /// The once-per-session degradation notice (shared by the end-of-run
    /// [`session_events`](ConcurrentLifeguard::session_events) sweep and the
    /// incremental observer path).
    fn degraded_event() -> crate::SessionEvent {
        crate::SessionEvent::DegradedPrecision {
            lifeguard: "HappensBefore",
            detail: format!(
                "vector-clock interner exhausted ({MAX_WIDE_IDS} live wide \
                 words); affected words degrade to unknown-order and every \
                 later access on them reports (races are never missed, some \
                 reports may be spurious)"
            ),
        }
    }

    /// Pushes the degradation notice to the installed observer the first
    /// time saturation latches.
    fn note_saturation(&self) {
        if self.words.wide().is_saturated() && !self.observer_notified.swap(true, Ordering::AcqRel)
        {
            if let Some(observer) = self.observer.lock().expect("poisoned").as_ref() {
                observer(&Self::degraded_event());
            }
        }
    }

    /// Decodes a word on a worker path.
    fn view(&self, word: u64) -> HbView {
        // SAFETY: the id was read from a word this worker loaded after its
        // last epoch boundary (or from a window/just-acquired id it holds a
        // reference on); quiescence keeps the slot stable until the worker's
        // next boundary.
        decode(word, |id| unsafe { self.words.wide().value(id) })
    }

    /// Encodes abstract state, packing when it fits and interning into the
    /// wide tier otherwise. `flags` carries the REPORTED bit to preserve.
    /// Returns the word and the id acquired for it (0: none) — the caller
    /// must publish the word or release the id.
    fn encode(&self, write: Epoch, reads: Vec<Epoch>, flags: u64) -> (u64, u32) {
        if reads.len() <= 1 {
            if let Some(wbits) = pack_epoch(write) {
                match reads.first() {
                    None => return (F_PACKED | flags | (wbits << W_SHIFT), 0),
                    Some(&r) => {
                        if let Some(rbits) = pack_epoch(r) {
                            return (
                                F_PACKED
                                    | flags
                                    | READ_VALID_BIT
                                    | (wbits << W_SHIFT)
                                    | (rbits << R_SHIFT),
                                0,
                            );
                        }
                    }
                }
            }
        }
        let id = self.words.wide().intern_acquire(HbWide { write, reads });
        self.note_saturation();
        (F_WIDE | flags | (u64::from(id) << ID_SHIFT), id)
    }

    /// One FastTrack transition from word `cur` — the concurrent mirror of
    /// the sequential [`step_access`] on the packed/wide representation,
    /// poisoning on race (module docs). Returns the successor word
    /// (REPORTED decision left to the caller), the id acquired for it, and
    /// whether the access races.
    fn step_data(&self, cur: u64, writes: bool, t: u16, clock: &[u32]) -> (u64, u32, bool) {
        let (mut write, mut reads) = match self.view(cur) {
            // Unknown order: always a race, the sentinel absorbs.
            HbView::Saturated => return (cur, 0, true),
            HbView::Virgin => ((0, 0), Vec::new()),
            HbView::Known { write, reads } => (write, reads),
        };
        match step_access(&mut write, &mut reads, writes, t, clock) {
            None => (cur, 0, false),
            // Race: converge on the sentinel (id 0, nothing interned).
            Some(true) => (F_WIDE | (cur & REPORTED_BIT), 0, true),
            Some(false) => {
                let (next, acquired) = self.encode(write, reads, cur & REPORTED_BIT);
                (next, acquired, false)
            }
        }
    }

    /// CAS-per-access path for one data granule. Wide-id references move
    /// with the entry word exactly as LOCKSET's set ids do: acquire before
    /// the CAS, release the displaced id on success or the acquired one on
    /// failure.
    fn data_access_cas(&self, key: u64, writes: bool, tid: ThreadId, clock: &[u32], rid: Rid) {
        loop {
            let cur = self.words.load(key);
            let (next, acquired, race) = self.step_data(cur, writes, tid.0, clock);
            let report = race && cur & REPORTED_BIT == 0;
            let next = if report { next | REPORTED_BIT } else { next };
            if next == cur {
                self.words.wide().release(acquired);
                return; // fast path: one load-acquire, no store
            }
            match self.words.compare_exchange(key, cur, next) {
                Ok(_) => {
                    let old_id = wide_id(cur);
                    if old_id != wide_id(next) {
                        self.words.wide().release(old_id);
                    } else {
                        self.words.wide().release(acquired);
                    }
                    if report {
                        // The CAS winner owns the report: exactly one per
                        // word, however many accesses raced it.
                        self.violations.lock().expect("poisoned").push(Violation {
                            tid,
                            rid,
                            kind: ViolationKind::DataRace,
                            addr: Some(key * GRANULE),
                        });
                    }
                    return;
                }
                Err(_) => {
                    self.words.wide().release(acquired);
                    continue;
                }
            }
        }
    }

    /// CAS-per-access path for one sync word: join on read, publish-and-bump
    /// on write (module docs). Conflicting sync accesses are arc-ordered, so
    /// the CAS loop converges immediately in practice.
    fn sync_access_cas(&self, key: u64, kind: AccessKind, tid: ThreadId, clock: &mut Vec<u32>) {
        loop {
            let cur = self.words.load(key);
            if kind.reads() {
                if let HbView::Known { reads, .. } = self.view(cur) {
                    join_clock(clock, &reads);
                }
            }
            if !kind.writes() {
                return;
            }
            let (next, acquired) = self.encode((0, 0), clock_vc(clock), cur & REPORTED_BIT);
            if next == cur {
                self.words.wide().release(acquired);
                break;
            }
            match self.words.compare_exchange(key, cur, next) {
                Ok(_) => {
                    let old_id = wide_id(cur);
                    if old_id != wide_id(next) {
                        self.words.wide().release(old_id);
                    } else {
                        self.words.wide().release(acquired);
                    }
                    break;
                }
                Err(_) => {
                    self.words.wide().release(acquired);
                    continue;
                }
            }
        }
        clock[tid.index()] += 1; // release: the next epoch starts after the publish
    }

    /// Moves a window's buffered word to `next`, transferring the window's
    /// wide-id reference the same way the shared-table CAS paths do.
    fn move_window_ref(&self, entry: &mut HbWindow, next: u64, acquired: u32) {
        if next == entry.current {
            self.words.wide().release(acquired);
            return;
        }
        let old_id = wide_id(entry.current);
        if wide_id(next) == old_id {
            self.words.wide().release(acquired);
        } else {
            // The displaced id is released only if the window owned it —
            // `observed`'s reference still belongs to the shared table.
            if entry.owned_ref != 0 {
                self.words.wide().release(entry.owned_ref);
            }
            entry.owned_ref = acquired;
        }
        entry.current = next;
    }

    /// Publish-CAS failure repair for a read-only window: re-run the
    /// buffered read against the fresh word. If the fresh word's write
    /// epoch is ordered before this thread, the read merges into its slot;
    /// otherwise (or if the fold already raced against the observed state)
    /// the word poisons, with the REPORTED bit arbitrating the report.
    ///
    /// The race re-check uses the flush-time clock. In arc-ordered captures
    /// this path is only ever taken against hb-*ordered* peers (an
    /// unordered conflicting peer implies an arc, and the arc forces this
    /// window's flush first), so the re-check is exact there; in arc-free
    /// harnesses (the bench matrix) the clock cannot have advanced between
    /// the read and the flush — no sync records ride those streams — so it
    /// is exact there too.
    fn refold_read(&self, key: u64, read: Option<Epoch>, rid: Rid, raced: bool, tid: ThreadId) {
        // SAFETY: flush points run on the worker owning lane `tid`.
        let clock: Vec<u32> = unsafe { self.clocks[tid.index()].with(|c| c.clone()) };
        loop {
            let cur = self.words.load(key);
            let (next, acquired, race) = match self.view(cur) {
                // The word poisoned under us; only the report arbitrates.
                HbView::Saturated => (cur, 0, true),
                HbView::Virgin => unreachable!("published words never return to virgin"),
                HbView::Known { write, mut reads } => {
                    if raced || !epoch_hb(write, &clock) {
                        (F_WIDE | (cur & REPORTED_BIT), 0, true)
                    } else {
                        match read {
                            Some((t, c)) if !reads.contains(&(t, c)) => {
                                set_slot(&mut reads, t, c);
                                let (next, acq) = self.encode(write, reads, cur & REPORTED_BIT);
                                (next, acq, false)
                            }
                            _ => (cur, 0, false),
                        }
                    }
                }
            };
            let report = race && cur & REPORTED_BIT == 0;
            let next = if report { next | REPORTED_BIT } else { next };
            if next == cur {
                self.words.wide().release(acquired);
                return;
            }
            match self.words.compare_exchange(key, cur, next) {
                Ok(_) => {
                    let old_id = wide_id(cur);
                    if old_id != wide_id(next) {
                        self.words.wide().release(old_id);
                    } else {
                        self.words.wide().release(acquired);
                    }
                    if report {
                        self.violations.lock().expect("poisoned").push(Violation {
                            tid,
                            rid,
                            kind: ViolationKind::DataRace,
                            addr: Some(key * GRANULE),
                        });
                    }
                    return;
                }
                Err(_) => {
                    self.words.wide().release(acquired);
                    continue;
                }
            }
        }
    }

    /// Repair when a *writing* window's publish CAS lost: the peer that
    /// moved the word is arc-unordered with the buffered write — itself a
    /// race — so the word poisons (module docs), with the REPORTED bit
    /// arbitrating who reports it.
    fn degrade_word(&self, key: u64, rid: Rid, tid: ThreadId) {
        loop {
            let cur = self.words.load(key);
            let report = cur & REPORTED_BIT == 0;
            let next = F_WIDE | REPORTED_BIT;
            if next == cur {
                return; // already the reported sentinel
            }
            if self.words.compare_exchange(key, cur, next).is_ok() {
                self.words.wide().release(wide_id(cur));
                if report {
                    self.violations.lock().expect("poisoned").push(Violation {
                        tid,
                        rid,
                        kind: ViolationKind::DataRace,
                        addr: Some(key * GRANULE),
                    });
                }
                return;
            }
        }
    }

    /// Live interned wide words (soak/bench diagnostic).
    pub fn interned_vcs(&self) -> usize {
        self.words.wide().live()
    }

    /// High-water mark of [`interned_vcs`](Self::interned_vcs).
    pub fn peak_interned_vcs(&self) -> usize {
        self.words.wide().peak_live()
    }

    /// Whether the interner has saturated to the unknown-order sentinel at
    /// least once this session.
    pub fn degraded(&self) -> bool {
        self.words.wide().is_saturated()
    }
}

/// One granule's buffered state in the delta-merge replay form: the worker
/// transitions the private `current` word eagerly — the same machine as the
/// shared CAS loop — and keeps the refold payload (this thread's final read
/// epoch) for the read-only lost-CAS repair.
#[derive(Debug)]
pub struct HbWindow {
    /// Shared entry word at first touch this window — the CAS expectation.
    observed: u64,
    /// Locally transitioned word (same packing as the shared table).
    current: u64,
    /// Interner reference held by this window (0: none). Transfers to the
    /// table entry when the publish CAS wins.
    owned_ref: u32,
    /// This thread's final read epoch in the window (refold payload).
    read_epoch: Option<Epoch>,
    /// Whether any buffered access wrote (a lost publish CAS is then a
    /// capture-contract violation — see `degrade_word`).
    any_write: bool,
    /// Deferred once-per-word race report, pushed only if the publish wins
    /// (a lost CAS lets the fresh word's REPORTED bit arbitrate).
    pending: Option<Rid>,
    /// Rid of the window's last access (attribution fallback).
    last_rid: Rid,
}

impl WordAnalysis for HappensBeforeConcurrent {
    type Window = HbWindow;

    fn overlay(&self) -> &WordOverlay<HbWindow> {
        &self.overlay
    }

    fn window_keys(&self, mem: MemRef, _kind: AccessKind) -> Option<(u64, u64)> {
        if mem.addr >= SYNC_SPACE_START {
            // One key per synchronization object (64-byte spaced bases).
            let key = mem.addr / GRANULE;
            Some((key, key))
        } else {
            Some((
                mem.addr / GRANULE,
                (mem.addr + u64::from(mem.size) - 1) / GRANULE,
            ))
        }
    }

    fn open_window(&self, key: u64) -> HbWindow {
        HbWindow {
            observed: self.words.load(key),
            current: self.words.load(key),
            owned_ref: 0,
            read_epoch: None,
            any_write: false,
            pending: None,
            last_rid: Rid(0),
        }
    }

    fn fold_access(
        &self,
        entry: &mut HbWindow,
        key: u64,
        kind: AccessKind,
        tid: ThreadId,
        rec: &EventRecord,
    ) {
        entry.last_rid = rec.rid;
        // SAFETY: fold runs under the overlay's single-owner contract — the
        // same worker owns clock lane `tid`.
        unsafe {
            self.clocks[tid.index()].with(|clock| {
                if key >= SYNC_KEY_START {
                    if kind.reads() {
                        if let HbView::Known { reads, .. } = self.view(entry.current) {
                            join_clock(clock, &reads);
                        }
                    }
                    if kind.writes() {
                        entry.any_write = true;
                        let (next, acquired) =
                            self.encode((0, 0), clock_vc(clock), entry.current & REPORTED_BIT);
                        self.move_window_ref(entry, next, acquired);
                        clock[tid.index()] += 1;
                    }
                } else {
                    let writes = kind.writes();
                    let cur = entry.current;
                    let (next, acquired, race) = self.step_data(cur, writes, tid.0, clock);
                    let report = race && cur & REPORTED_BIT == 0;
                    let next = if report { next | REPORTED_BIT } else { next };
                    entry.any_write |= writes;
                    entry.read_epoch = if writes {
                        None // a write clears the read state it would refold
                    } else {
                        Some((tid.0, clock[tid.index()]))
                    };
                    if report {
                        entry.pending = Some(rec.rid);
                    }
                    self.move_window_ref(entry, next, acquired);
                }
            })
        }
    }

    fn publish_window(&self, key: u64, entry: HbWindow, tid: ThreadId) {
        if entry.current == entry.observed {
            // Window was all fast-path no-ops; nothing to publish.
            debug_assert_eq!(entry.owned_ref, 0, "unchanged window owns no reference");
            return;
        }
        match self
            .words
            .compare_exchange(key, entry.observed, entry.current)
        {
            Ok(_) => {
                let old_id = wide_id(entry.observed);
                if old_id != wide_id(entry.current) {
                    // The displaced id lost the table entry's reference; the
                    // window's reference transfers to the entry.
                    self.words.wide().release(old_id);
                } else if entry.owned_ref != 0 {
                    self.words.wide().release(entry.owned_ref);
                }
                if let Some(rid) = entry.pending {
                    self.violations.lock().expect("poisoned").push(Violation {
                        tid,
                        rid,
                        kind: ViolationKind::DataRace,
                        addr: Some(key * GRANULE),
                    });
                }
            }
            Err(_) => {
                if entry.owned_ref != 0 {
                    self.words.wide().release(entry.owned_ref);
                }
                let rid = entry.pending.unwrap_or(entry.last_rid);
                if entry.any_write {
                    self.degrade_word(key, rid, tid);
                } else {
                    self.refold_read(key, entry.read_epoch, rid, entry.pending.is_some(), tid);
                }
            }
        }
    }
}

impl crate::factory::DeltaLifeguard for HappensBeforeConcurrent {
    fn apply_delta(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        crate::wordmeta::apply_delta_via_overlay(self, tid, rec, versioned);
    }

    fn flush_delta(&self, tid: ThreadId) {
        crate::wordmeta::flush_delta_via_overlay(self, tid);
    }
}

impl ConcurrentLifeguard for HappensBeforeConcurrent {
    fn apply(&self, tid: ThreadId, rec: &EventRecord, _versioned: Option<&VersionedMeta>) {
        match &rec.payload {
            EventPayload::Instr(instr) => {
                let Some(MetaOp::CheckAccess { mem, kind }) = check_view(instr) else {
                    return;
                };
                // SAFETY: the backend applies records of stream `tid` only
                // on the worker owning lane `tid`.
                unsafe {
                    self.clocks[tid.index()].with(|clock| {
                        if mem.addr >= SYNC_SPACE_START {
                            self.sync_access_cas(mem.addr / GRANULE, kind, tid, clock);
                        } else {
                            let first = mem.addr / GRANULE;
                            let last = (mem.addr + u64::from(mem.size) - 1) / GRANULE;
                            for key in first..=last {
                                self.data_access_cas(key, kind.writes(), tid, clock, rec.rid);
                            }
                        }
                    })
                }
            }
            EventPayload::Ca(_) => {
                // Ordering rides the sync words (module docs); CAs carry
                // nothing for this analysis.
            }
        }
    }

    fn ca_policy(&self) -> CaPolicy {
        // Mirrors the sequential spec: no CA subscriptions, no §5.4 ranges.
        CaPolicy::new()
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        self.words.for_each_nonzero(|key, word| {
            // Non-worker context (equivalence sweep): take the interner
            // mutex instead of relying on worker quiescence.
            let view = decode(word, |id| self.words.wide().value_locked(id));
            let (write, reads) = match view {
                HbView::Virgin => unreachable!("stored words are never virgin"),
                HbView::Known { write, reads } => (write, reads),
                HbView::Saturated => {
                    let s = HbWide::saturated();
                    (s.write, s.reads)
                }
            };
            fp.mix(key * GRANULE, canon_word(write, &reads));
        });
        fp.finish()
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.lock().expect("poisoned").clone()
    }

    fn epoch_boundary(&self, tid: ThreadId) {
        self.words.wide().boundary(tid.index());
    }

    fn stream_done(&self, tid: ThreadId) {
        self.words.wide().retire_worker(tid.index());
    }

    fn session_events(&self) -> Vec<crate::SessionEvent> {
        if self.words.wide().is_saturated() {
            vec![Self::degraded_event()]
        } else {
            Vec::new()
        }
    }

    fn set_event_observer(&self, observer: crate::SessionEventObserver) {
        *self.observer.lock().expect("poisoned") = Some(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::DeltaLifeguard;
    use paralog_events::{Instr, Reg};

    const LOCK0: u64 = SYNC_SPACE_START; // paralog_sim::sync::lock_word(0)

    fn access(addr: u64, kind: AccessKind) -> MetaOp {
        MetaOp::CheckAccess {
            mem: MemRef::new(addr, if addr >= SYNC_SPACE_START { 8 } else { 4 }),
            kind,
        }
    }

    fn rec(rid: u64, addr: u64, kind: AccessKind) -> EventRecord {
        let mem = MemRef::new(addr, if addr >= SYNC_SPACE_START { 8 } else { 4 });
        EventRecord::instr(
            Rid(rid),
            match kind {
                AccessKind::Read => Instr::Load {
                    dst: Reg::new(0),
                    src: mem,
                },
                AccessKind::Write => Instr::Store {
                    dst: mem,
                    src: Reg::new(0),
                },
                AccessKind::Rmw => Instr::Rmw {
                    mem,
                    reg: Reg::new(0),
                },
            },
        )
    }

    fn two_threads() -> (HappensBefore, HappensBefore) {
        let shared = HbShared::new();
        (
            HappensBefore::new(Rc::clone(&shared), ThreadId(0)),
            HappensBefore::new(Rc::clone(&shared), ThreadId(1)),
        )
    }

    /// t0 writes under the lock, hands it to t1, t1 writes — ordered.
    fn locked_handoff(run: &mut dyn FnMut(u16, u64, AccessKind)) {
        run(0, LOCK0, AccessKind::Rmw); // t0 acquire
        run(0, 0x100, AccessKind::Write);
        run(0, LOCK0, AccessKind::Write); // t0 release
        run(1, LOCK0, AccessKind::Rmw); // t1 acquire (joins t0's clock)
        run(1, 0x100, AccessKind::Write);
        run(1, LOCK0, AccessKind::Write); // t1 release
    }

    #[test]
    fn sequential_lock_discipline_is_silent() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        let mut rid = 0;
        locked_handoff(&mut |t, addr, kind| {
            rid += 1;
            let lg: &mut HappensBefore = if t == 0 { &mut a } else { &mut b };
            lg.handle(&access(addr, kind), Rid(rid), &mut ctx);
        });
        assert!(ctx.violations.is_empty(), "hb-ordered writes never race");
    }

    #[test]
    fn sequential_unordered_writes_race_once() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, AccessKind::Write), Rid(1), &mut ctx);
        b.handle(&access(0x100, AccessKind::Write), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(ctx.violations[0].kind, ViolationKind::DataRace);
        assert_eq!(ctx.violations[0].addr, Some(0x100));
        // Further racing accesses do not re-report the same word.
        a.handle(&access(0x100, AccessKind::Write), Rid(3), &mut ctx);
        b.handle(&access(0x100, AccessKind::Read), Rid(4), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn sequential_read_shared_then_unordered_write_races() {
        let shared = HbShared::new();
        let mut lgs: Vec<_> = (0..3)
            .map(|t| HappensBefore::new(Rc::clone(&shared), ThreadId(t)))
            .collect();
        let mut ctx = HandlerCtx::new();
        // Three unordered readers share the word silently (reads never
        // conflict), then an unordered writer races all of them.
        for lg in &mut lgs {
            lg.handle(&access(0x200, AccessKind::Read), Rid(1), &mut ctx);
        }
        assert!(ctx.violations.is_empty(), "concurrent reads are no race");
        lgs[0].handle(&access(0x200, AccessKind::Write), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1, "write races the unordered reads");
    }

    #[test]
    fn concurrent_form_matches_sequential_transitions() {
        let conc = HappensBeforeConcurrent::new(2);
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        let mut rid = 0;
        locked_handoff(&mut |t, addr, kind| {
            rid += 1;
            let lg: &mut HappensBefore = if t == 0 { &mut a } else { &mut b };
            lg.handle(&access(addr, kind), Rid(rid), &mut ctx);
            conc.apply(ThreadId(t), &rec(rid, addr, kind), None);
        });
        // A genuine race on a second word, from both forms.
        for (t, r) in [(0u16, 90u64), (1, 91)] {
            let lg: &mut HappensBefore = if t == 0 { &mut a } else { &mut b };
            lg.handle(&access(0x400, AccessKind::Write), Rid(r), &mut ctx);
            conc.apply(ThreadId(t), &rec(r, 0x400, AccessKind::Write), None);
        }
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(conc.violations().len(), 1);
        assert_eq!(conc.violations()[0].addr, Some(0x400));
        assert_eq!(conc.fingerprint(), a.fingerprint());
    }

    #[test]
    fn delta_form_matches_cas_form() {
        let cas = HappensBeforeConcurrent::new(2);
        let delta = HappensBeforeConcurrent::new(2);
        let mut rid = 0;
        locked_handoff(&mut |t, addr, kind| {
            rid += 1;
            cas.apply(ThreadId(t), &rec(rid, addr, kind), None);
            delta.apply_delta(ThreadId(t), &rec(rid, addr, kind), None);
            // Sync hand-off points are arcs: flush both lanes there.
            if addr >= SYNC_SPACE_START {
                delta.flush_delta(ThreadId(t));
            }
        });
        for (t, r) in [(0u16, 90u64), (1, 91)] {
            cas.apply(ThreadId(t), &rec(r, 0x400, AccessKind::Write), None);
            delta.apply_delta(ThreadId(t), &rec(r, 0x400, AccessKind::Write), None);
            delta.flush_delta(ThreadId(t)); // conflicting writes are arc points
        }
        delta.flush_delta(ThreadId(0));
        delta.flush_delta(ThreadId(1));
        assert_eq!(delta.fingerprint(), cas.fingerprint());
        assert_eq!(delta.violations().len(), cas.violations().len());
        assert_eq!(delta.violations().len(), 1);
    }

    #[test]
    fn unpackable_epochs_spill_to_the_wide_tier() {
        // Thread 65 cannot pack into the 6-bit epoch tid field: its write
        // epoch must spill to an interned wide word and still behave.
        let conc = HappensBeforeConcurrent::new(70);
        let base = conc.interned_vcs();
        conc.apply(ThreadId(65), &rec(1, 0x100, AccessKind::Write), None);
        assert_eq!(conc.interned_vcs(), base + 1, "wide spill interned");
        // Same-epoch re-write is still the fast path (no duplicate intern).
        conc.apply(ThreadId(65), &rec(2, 0x100, AccessKind::Write), None);
        assert_eq!(conc.interned_vcs(), base + 1);
        assert!(conc.violations().is_empty());
        assert!(!conc.degraded());
    }

    #[test]
    fn read_vc_inflation_interns_and_reclaims() {
        let conc = HappensBeforeConcurrent::new(3);
        let base = conc.interned_vcs();
        // Three unordered readers inflate the word to a wide read VC...
        for t in 0..3u16 {
            conc.apply(ThreadId(t), &rec(1, 0x300, AccessKind::Read), None);
        }
        assert!(conc.interned_vcs() > base, "3-reader VC cannot pack");
        assert!(conc.violations().is_empty());
        // ...and an (unordered, racing) write poisons the word to the
        // sentinel, releasing the wide id for reclamation at boundaries.
        conc.apply(ThreadId(0), &rec(2, 0x300, AccessKind::Write), None);
        assert_eq!(conc.violations().len(), 1, "write races the read VC");
        for _ in 0..2 {
            for t in 0..3u16 {
                conc.epoch_boundary(ThreadId(t));
            }
        }
        assert_eq!(conc.interned_vcs(), base, "collapsed VC reclaimed");
    }

    #[test]
    fn sync_clock_vcs_join_across_threads() {
        // Barrier-style: both threads publish, both join both publications.
        let conc = HappensBeforeConcurrent::new(2);
        let slot0 = SYNC_SPACE_START + 0x10_0000;
        let slot1 = slot0 + 64;
        let flag = SYNC_SPACE_START + 0x20_0000;
        conc.apply(ThreadId(0), &rec(1, 0x500, AccessKind::Write), None);
        conc.apply(ThreadId(1), &rec(1, 0x600, AccessKind::Write), None);
        // Arrivals.
        conc.apply(ThreadId(0), &rec(2, slot0, AccessKind::Write), None);
        conc.apply(ThreadId(1), &rec(2, slot1, AccessKind::Write), None);
        // t1 releases: joins both slots, publishes the flag.
        conc.apply(ThreadId(1), &rec(3, slot0, AccessKind::Read), None);
        conc.apply(ThreadId(1), &rec(4, slot1, AccessKind::Read), None);
        conc.apply(ThreadId(1), &rec(5, flag, AccessKind::Write), None);
        // t0 waits on the flag, then touches t1's pre-barrier word: ordered.
        conc.apply(ThreadId(0), &rec(6, flag, AccessKind::Read), None);
        conc.apply(ThreadId(0), &rec(7, 0x600, AccessKind::Write), None);
        conc.apply(ThreadId(1), &rec(8, flag, AccessKind::Read), None);
        conc.apply(ThreadId(1), &rec(9, 0x500, AccessKind::Write), None);
        assert!(
            conc.violations().is_empty(),
            "barrier orders the cross-thread writes: {:?}",
            conc.violations()
        );
    }
}
