//! Generic locked concurrent form: run *any* lifeguard on the real-thread
//! backend.
//!
//! §5.3 divides lifeguards into a synchronization-free class (TaintCheck,
//! AddrCheck — concurrent forms lock-free outright) and everything else,
//! which the paper handles with a fast-path/slow-path split (MemCheck,
//! LockSet ship hand-written forms of that shape). [`LockedConcurrent`] is
//! the conservative end of the spectrum: the ordinary sequential
//! [`Lifeguard`] threads run behind one mutex, every record applied
//! atomically. Arc enforcement still happens outside (the backend's
//! progress-table spin), so the delivered order matches the deterministic
//! ingestion order for all conflicting operations — the adapter serializes
//! only the handler bodies.
//!
//! # When is the locked form still the right choice?
//!
//! All four *bundled* analyses have graduated to hand-written lock-free
//! forms (`concurrent_micro` measured the mutex costing them 1.4–3× on
//! check-heavy replay), so nothing in-tree pays this adapter anymore. It
//! remains the right first step for an **out-of-tree** analysis:
//!
//! * correctness is unconditional — a global lock trivially satisfies every
//!   §5.3 atomicity class, so a freshly ported sequential analysis replays
//!   on `ThreadedBackend` with one line of factory code (see below) and no
//!   concurrency reasoning;
//! * the cost is lost lifeguard-side parallelism only; for analyses that
//!   are rarely on the critical path (sampling, statistics, logging) that
//!   trade is often permanent;
//! * it is the reference a graduated lock-free form is tested against —
//!   the cross-backend parity suites replay both and compare fingerprints.
//!
//! Opting in is deliberate, not a trait default: the adapter's soundness
//! rests on a containment argument (the type-level contract below) that
//! only the factory author can assert, which is why
//! [`LockedConcurrent::new`] is `unsafe` and
//! [`LifeguardFactory::concurrent`] defaults to `None` instead of wrapping
//! blindly.
//!
//! ```rust
//! use paralog_events::AddrRange;
//! use paralog_lifeguards::{
//!     ConcurrentLifeguard, LifeguardFactory, LifeguardFamily, LifeguardKind, LockedConcurrent,
//! };
//!
//! /// An out-of-tree analysis: sequential logic first, parallel replay via
//! /// the locked adapter until a lock-free form is worth writing.
//! #[derive(Debug)]
//! struct MyAnalysis;
//!
//! impl LifeguardFactory for MyAnalysis {
//!     fn name(&self) -> &str {
//!         "MyAnalysis"
//!     }
//!     fn build(&self, heap: AddrRange) -> LifeguardFamily {
//!         // A real analysis constructs its own shared state here (see
//!         // examples/custom_lifeguard.rs); reusing a bundled family keeps
//!         // this example self-contained.
//!         LifeguardKind::MemCheck.build(heap)
//!     }
//!     fn concurrent(&self, heap: AddrRange, threads: usize) -> Option<Box<dyn ConcurrentLifeguard>> {
//!         // SAFETY: this factory's families are self-contained — every Rc
//!         // they touch is created inside `build` and never escapes.
//!         Some(Box::new(unsafe { LockedConcurrent::new(self.build(heap), threads) }))
//!     }
//! }
//!
//! let heap = AddrRange::new(0x1000_0000, 0x1000_0000);
//! let conc = MyAnalysis.concurrent(heap, 2).expect("opted in");
//! assert_eq!(conc.violations().len(), 0);
//! ```
//!
//! [`LifeguardFactory`]: crate::factory::LifeguardFactory
//! [`LifeguardFactory::concurrent`]: crate::factory::LifeguardFactory::concurrent

use crate::factory::{ConcurrentLifeguard, LifeguardFamily, VersionedMeta};
use crate::lifeguard::{EventView, HandlerCtx, Lifeguard, Violation};
use paralog_events::{
    check_view, dataflow_view, AddrRange, EventPayload, EventRecord, Rid, ThreadId,
};
use paralog_order::{CaPolicy, RangeEntry};
use std::fmt;
use std::sync::Mutex;

/// The mutex-confined analysis state: the family's per-thread lifeguards
/// (sharing their `Rc` metadata) and the violations they reported.
struct LockedState {
    lgs: Vec<Box<dyn Lifeguard>>,
    violations: Vec<Violation>,
}

/// Any lifeguard family as a [`ConcurrentLifeguard`], serialized behind one
/// mutex.
///
/// # Thread-safety contract
///
/// Sequential lifeguards share analysis-wide metadata through
/// `Rc<RefCell<_>>`, which is not `Send`. The adapter is sound only when
/// the wrapped family is **self-contained**: every `Rc` its constructor
/// and lifeguards touch must have been created inside the family and must
/// never be cloned out of it. Then the whole object graph is *confined* —
/// built in [`LockedConcurrent::new`], only ever touched while the mutex
/// is held, dropped with the adapter — so no two threads ever access an
/// `Rc` count (or a `RefCell`) concurrently, and all handles always
/// migrate between threads together. A family that shares `Rc`s with
/// state outside itself would race those counts from safe code, which is
/// why [`new`](Self::new) is `unsafe`: the caller asserts containment.
/// All bundled analyses qualify (their factories wrap themselves
/// automatically); an out-of-tree factory opts in by overriding
/// [`LifeguardFactory::concurrent`] with the same one-liner.
///
/// [`LifeguardFactory::concurrent`]: crate::factory::LifeguardFactory::concurrent
pub struct LockedConcurrent {
    name: String,
    ca_policy: CaPolicy,
    state: Mutex<LockedState>,
}

// SAFETY: per the constructor's contract the non-`Send` state in
// `LockedState` is self-contained and is created, accessed and dropped
// only under `state`'s lock (or via `&mut self`/ownership), never aliased
// across threads.
unsafe impl Send for LockedConcurrent {}
// SAFETY: same confinement argument; `&LockedConcurrent` only exposes the
// inner state through the mutex.
unsafe impl Sync for LockedConcurrent {}

impl fmt::Debug for LockedConcurrent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockedConcurrent")
            .field("lifeguard", &self.name)
            .finish_non_exhaustive()
    }
}

impl LockedConcurrent {
    /// Wraps `family`, building one sequential lifeguard per monitored
    /// thread.
    ///
    /// # Safety
    ///
    /// The caller asserts the family is self-contained per the type-level
    /// thread-safety contract: no `Rc` reachable from the family (its
    /// constructor closure, its shared metadata, its lifeguards) is held
    /// anywhere outside the values passed in here. The bundled analyses
    /// satisfy this by construction.
    pub unsafe fn new(family: LifeguardFamily, threads: usize) -> Self {
        let lgs: Vec<Box<dyn Lifeguard>> = (0..threads)
            .map(|t| family.thread(ThreadId(t as u16)))
            .collect();
        let ca_policy = lgs
            .first()
            .map(|lg| lg.spec().ca_policy.clone())
            .unwrap_or_default();
        LockedConcurrent {
            name: family.name().to_string(),
            ca_policy,
            state: Mutex::new(LockedState {
                lgs,
                violations: Vec::new(),
            }),
        }
    }
}

impl ConcurrentLifeguard for LockedConcurrent {
    fn apply(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        let mut state = self.state.lock().expect("poisoned");
        let state = &mut *state;
        let lg = &mut state.lgs[tid.index()];
        let mut ctx = HandlerCtx::new();
        match &rec.payload {
            EventPayload::Instr(instr) => {
                let op = match lg.spec().view {
                    EventView::Dataflow => dataflow_view(instr),
                    EventView::Check => check_view(instr),
                };
                if let Some(op) = op {
                    // §5.5: the shared gate injects the consumed snapshot
                    // when this op reads the versioned location;
                    // `HandlerCtx::join_shadow` then applies it.
                    ctx.inject_versioned(&op, versioned);
                    lg.handle(&op, rec.rid, &mut ctx);
                }
            }
            EventPayload::Ca(ca) => {
                let own = ca.issuer == tid;
                lg.handle_ca(ca, own, rec.rid, &mut ctx);
            }
        }
        state.violations.append(&mut ctx.violations);
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // Any thread's view works: the family shares its metadata.
        self.state.lock().expect("poisoned").lgs[0].snapshot_meta(range)
    }

    fn on_syscall_race(&self, tid: ThreadId, access: AddrRange, entry: &RangeEntry, rid: Rid) {
        let mut state = self.state.lock().expect("poisoned");
        let state = &mut *state;
        let mut ctx = HandlerCtx::new();
        state.lgs[tid.index()].on_syscall_race(access, entry, rid, &mut ctx);
        state.violations.append(&mut ctx.violations);
    }

    fn ca_policy(&self) -> CaPolicy {
        self.ca_policy.clone()
    }

    fn fingerprint(&self) -> u64 {
        self.state.lock().expect("poisoned").lgs[0].fingerprint()
    }

    fn violations(&self) -> Vec<Violation> {
        self.state.lock().expect("poisoned").violations.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::{LifeguardFactory, LifeguardKind};
    use paralog_events::{Instr, MemRef, Reg};

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    #[test]
    fn applies_records_under_the_lock_from_many_threads() {
        // SAFETY: the bundled AddrCheck family is self-contained.
        let conc = unsafe { LockedConcurrent::new(LifeguardKind::AddrCheck.build(HEAP), 4) };
        assert!(conc
            .ca_policy()
            .subscribes(paralog_events::HighLevelKind::Malloc));
        // Unallocated heap accesses from four real threads: every one must
        // be reported, none lost to races.
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let conc = &conc;
                scope.spawn(move || {
                    for i in 0..32u64 {
                        let rec = EventRecord::instr(
                            Rid(i + 1),
                            Instr::Load {
                                dst: Reg::new(0),
                                src: MemRef::new(HEAP.start + u64::from(t) * 64 + i, 1),
                            },
                        );
                        conc.apply(ThreadId(t), &rec, None);
                    }
                });
            }
        });
        assert_eq!(conc.violations().len(), 4 * 32);
    }

    #[test]
    fn fingerprint_matches_sequential_family() {
        let family = LifeguardKind::TaintCheck.build(HEAP);
        let seq = family.fingerprint();
        // SAFETY: the bundled TaintCheck family is self-contained.
        let conc = unsafe { LockedConcurrent::new(family, 2) };
        assert_eq!(conc.fingerprint(), seq, "fresh state agrees");
    }
}
