//! ADDRCHECK: memory-allocation checking (Nethercote), the paper's second
//! lifeguard.
//!
//! Maintains 1 metadata bit per application byte — "is this byte inside a
//! live heap allocation?" — and checks it on every heap load and store (§6).
//! Metadata changes *only* on `malloc`/`free`, so the only ordering
//! ADDRCHECK needs is allocation-library ConflictAlerts; application reads
//! and writes both map to metadata *reads* (§5.3 conditions hold trivially:
//! [`AtomicityClass::SyncFree`]).
//!
//! ADDRCHECK is the canonical Idempotent Filter client: repeated checks of an
//! address are redundant until the next malloc/free invalidates the filter.

use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use paralog_events::{AddrRange, CaPhase, CaRecord, HighLevelKind, MetaOp, Rid, ThreadId};
use paralog_meta::ShadowMemory;
use paralog_order::CaPolicy;
use std::cell::RefCell;
use std::rc::Rc;

/// Metadata value for "allocated".
pub const ALLOCATED: u8 = 1;

/// Analysis-wide shared state: the allocation bitmap.
#[derive(Debug)]
pub struct AddrShared {
    /// 1-bit-per-byte allocation shadow.
    pub alloc: ShadowMemory,
    /// The heap region; accesses outside it (stack/globals) are not checked.
    pub heap: AddrRange,
}

impl AddrShared {
    /// Fresh state for a heap at `heap`.
    pub fn new(heap: AddrRange) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(AddrShared {
            alloc: ShadowMemory::new(1),
            heap,
        }))
    }
}

/// One lifeguard thread of the parallel ADDRCHECK.
#[derive(Debug)]
pub struct AddrCheck {
    shared: Rc<RefCell<AddrShared>>,
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl AddrCheck {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<AddrShared>>, tid: ThreadId) -> Self {
        AddrCheck {
            shared,
            tid,
            spec: LifeguardSpec {
                name: "AddrCheck",
                view: EventView::Check,
                uses_it: false,
                uses_if: true,
                uses_mtlb: true,
                ca_policy: CaPolicy::addrcheck(),
                bits_per_byte: 1,
                atomicity: AtomicityClass::SyncFree,
            },
        }
    }
}

impl Lifeguard for AddrCheck {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let mem = match *op {
            MetaOp::CheckAccess { mem, .. } | MetaOp::RmwOp { mem, .. } => mem,
            // ADDRCHECK consumes the check view only.
            _ => return,
        };
        let shared = self.shared.borrow();
        if !shared.heap.overlaps(&mem.range()) {
            return;
        }
        ctx.touch_read(shared.alloc.meta_footprint(mem.addr, mem.size as u64));
        // Every byte of the access must be inside a live allocation —
        // one word-wise pattern compare instead of a per-byte walk.
        let all_allocated = shared.alloc.eq_range(mem.range(), ALLOCATED);
        if !all_allocated {
            ctx.report(Violation {
                tid: self.tid,
                rid,
                kind: ViolationKind::UnallocatedAccess,
                addr: Some(mem.addr),
            });
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match (ca.what, ca.phase) {
            (HighLevelKind::Malloc, CaPhase::End) => {
                if let Some(range) = ca.range {
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.alloc.meta_footprint(range.start, range.len));
                    shared.alloc.set_range(range, ALLOCATED);
                }
            }
            (HighLevelKind::Free, CaPhase::Begin) => {
                if let Some(range) = ca.range {
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.alloc.meta_footprint(range.start, range.len));
                    shared.alloc.set_range(range, 0);
                }
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.shared.borrow().alloc.snapshot(range)
    }

    fn dump_shadow(&self) -> Vec<(u64, u8)> {
        let shared = self.shared.borrow();
        let mut v: Vec<(u64, u8)> = shared.alloc.iter_nonzero().collect();
        v.sort_unstable();
        v
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (addr, v) in shared.alloc.iter_nonzero() {
            fp.mix(addr, u64::from(v));
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{AccessKind, MemRef};

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    fn setup() -> (Rc<RefCell<AddrShared>>, AddrCheck) {
        let shared = AddrShared::new(HEAP);
        let lg = AddrCheck::new(Rc::clone(&shared), ThreadId(0));
        (shared, lg)
    }

    fn malloc_ca(range: AddrRange) -> CaRecord {
        CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    fn free_ca(range: AddrRange) -> CaRecord {
        CaRecord {
            what: HighLevelKind::Free,
            phase: CaPhase::Begin,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(2),
            seq: 1,
        }
    }

    fn check(addr: u64) -> MetaOp {
        MetaOp::CheckAccess {
            mem: MemRef::new(addr, 4),
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn access_before_malloc_violates() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(HEAP.start + 0x10), Rid(1), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::UnallocatedAccess);
    }

    #[test]
    fn access_inside_allocation_passes() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start + 0x10, 64);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(HEAP.start + 0x10), Rid(2), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn use_after_free_violates() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start + 0x10, 64);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        lg.handle_ca(&free_ca(range), true, Rid(2), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(HEAP.start + 0x10), Rid(3), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::UnallocatedAccess);
    }

    #[test]
    fn partially_out_of_bounds_access_violates() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start, 4);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        // 4-byte access at +2 straddles the allocation end.
        lg.handle(&check(HEAP.start + 2), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn non_heap_accesses_ignored() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(0x1000), Rid(1), &mut ctx); // stack/global space
        assert!(ctx.violations.is_empty());
        assert!(ctx.meta_touches.is_empty(), "no metadata touched off-heap");
    }

    #[test]
    fn remote_ca_does_not_update_metadata() {
        let (shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start, 64);
        lg.handle_ca(&malloc_ca(range), false, Rid(1), &mut HandlerCtx::new());
        assert_eq!(shared.borrow().alloc.get(HEAP.start), 0);
    }

    #[test]
    fn dataflow_ops_are_ignored() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(
            &MetaOp::ImmToReg {
                dst: paralog_events::Reg::new(0),
            },
            Rid(1),
            &mut ctx,
        );
        assert!(ctx.violations.is_empty() && ctx.meta_touches.is_empty());
    }

    #[test]
    fn fingerprint_tracks_allocation_map() {
        let (_shared, mut lg) = setup();
        let before = lg.fingerprint();
        let range = AddrRange::new(HEAP.start, 16);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let allocated = lg.fingerprint();
        assert_ne!(allocated, before);
        lg.handle_ca(&free_ca(range), true, Rid(2), &mut HandlerCtx::new());
        assert_eq!(lg.fingerprint(), before);
    }
}
