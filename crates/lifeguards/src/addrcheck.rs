//! ADDRCHECK: memory-allocation checking (Nethercote), the paper's second
//! lifeguard.
//!
//! Maintains 1 metadata bit per application byte — "is this byte inside a
//! live heap allocation?" — and checks it on every heap load and store (§6).
//! Metadata changes *only* on `malloc`/`free`, so the only ordering
//! ADDRCHECK needs is allocation-library ConflictAlerts; application reads
//! and writes both map to metadata *reads* (§5.3 conditions hold trivially:
//! [`AtomicityClass::SyncFree`]).
//!
//! ADDRCHECK is the canonical Idempotent Filter client: repeated checks of an
//! address are redundant until the next malloc/free invalidates the filter.
//!
//! Because it is synchronization-free, its real-thread replay form
//! ([`AddrCheckConcurrent`]) runs lock-free over an
//! [`AtomicShadow`] — no mutex anywhere on the
//! check path — instead of paying the generic
//! [`LockedConcurrent`](crate::LockedConcurrent) serialization tax.

use crate::factory::{ConcurrentLifeguard, VersionedMeta};
use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use paralog_events::{
    check_view, AddrRange, CaPhase, CaRecord, EventPayload, EventRecord, HighLevelKind, MetaOp,
    Rid, ThreadId,
};
use paralog_meta::{AtomicShadow, ShadowMemory};
use paralog_order::CaPolicy;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;

/// Metadata value for "allocated".
pub const ALLOCATED: u8 = 1;

/// Analysis-wide shared state: the allocation bitmap.
#[derive(Debug)]
pub struct AddrShared {
    /// 1-bit-per-byte allocation shadow.
    pub alloc: ShadowMemory,
    /// The heap region; accesses outside it (stack/globals) are not checked.
    pub heap: AddrRange,
}

impl AddrShared {
    /// Fresh state for a heap at `heap`.
    pub fn new(heap: AddrRange) -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(AddrShared {
            alloc: ShadowMemory::new(1),
            heap,
        }))
    }
}

/// One lifeguard thread of the parallel ADDRCHECK.
#[derive(Debug)]
pub struct AddrCheck {
    shared: Rc<RefCell<AddrShared>>,
    tid: ThreadId,
    spec: LifeguardSpec,
}

impl AddrCheck {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<AddrShared>>, tid: ThreadId) -> Self {
        AddrCheck {
            shared,
            tid,
            spec: LifeguardSpec {
                name: "AddrCheck",
                view: EventView::Check,
                uses_it: false,
                uses_if: true,
                uses_mtlb: true,
                ca_policy: CaPolicy::addrcheck(),
                bits_per_byte: 1,
                atomicity: AtomicityClass::SyncFree,
            },
        }
    }
}

impl Lifeguard for AddrCheck {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let mem = match *op {
            MetaOp::CheckAccess { mem, .. } | MetaOp::RmwOp { mem, .. } => mem,
            // ADDRCHECK consumes the check view only.
            _ => return,
        };
        let shared = self.shared.borrow();
        if !shared.heap.overlaps(&mem.range()) {
            return;
        }
        ctx.touch_read(shared.alloc.meta_footprint(mem.addr, mem.size as u64));
        // Every byte of the access must be inside a live allocation —
        // one word-wise pattern compare instead of a per-byte walk.
        let all_allocated = shared.alloc.eq_range(mem.range(), ALLOCATED);
        if !all_allocated {
            ctx.report(Violation {
                tid: self.tid,
                rid,
                kind: ViolationKind::UnallocatedAccess,
                addr: Some(mem.addr),
            });
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match (ca.what, ca.phase) {
            (HighLevelKind::Malloc, CaPhase::End) => {
                if let Some(range) = ca.range {
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.alloc.meta_footprint(range.start, range.len));
                    shared.alloc.set_range(range, ALLOCATED);
                }
            }
            (HighLevelKind::Free, CaPhase::Begin) => {
                if let Some(range) = ca.range {
                    let mut shared = self.shared.borrow_mut();
                    ctx.touch_write(shared.alloc.meta_footprint(range.start, range.len));
                    shared.alloc.set_range(range, 0);
                }
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.shared.borrow().alloc.snapshot(range)
    }

    fn dump_shadow(&self) -> Vec<(u64, u8)> {
        let shared = self.shared.borrow();
        let mut v: Vec<(u64, u8)> = shared.alloc.iter_nonzero().collect();
        v.sort_unstable();
        v
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (addr, v) in shared.alloc.iter_nonzero() {
            fp.mix(addr, u64::from(v));
        }
        fp.finish()
    }
}

/// The `Send + Sync` replay form of ADDRCHECK driven by the real-thread
/// backend: the same allocation checks over a lock-free
/// [`AtomicShadow`] bitmap. Valid because
/// ADDRCHECK is in the §5.3 synchronization-free class — application reads
/// *and* writes both map to metadata reads, and the only metadata writes
/// (malloc/free ConflictAlerts) are ordered against every access by the
/// captured CA arcs, which the backend's progress-table spin enforces.
pub struct AddrCheckConcurrent {
    alloc: AtomicShadow,
    heap: AddrRange,
    violations: Mutex<Vec<Violation>>,
}

impl std::fmt::Debug for AddrCheckConcurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The atomic shadow is a multi-megabyte chunk index; a compact
        // summary beats the derived dump.
        f.debug_struct("AddrCheckConcurrent")
            .field("heap", &self.heap)
            .finish_non_exhaustive()
    }
}

impl AddrCheckConcurrent {
    /// A fresh concurrent ADDRCHECK scoped to `heap`. The atomic shadow
    /// grows lazily as allocations arrive, so streams may be ingested
    /// incrementally — no footprint pre-scan.
    pub fn new(heap: AddrRange) -> Self {
        AddrCheckConcurrent {
            alloc: AtomicShadow::new(),
            heap,
            violations: Mutex::new(Vec::new()),
        }
    }

    /// Whether every byte of `range` is inside a live allocation, honoring
    /// an injected §5.5 versioned snapshot (via the shared
    /// [`snapshot_coverage`](crate::lifeguard::snapshot_coverage) rule):
    /// bytes the snapshot covers read the producer's pre-store allocation
    /// state, everything else the live shadow.
    fn all_allocated(&self, range: AddrRange, versioned: Option<&VersionedMeta>) -> bool {
        use crate::lifeguard::{snapshot_byte, snapshot_coverage, SnapshotCoverage};
        match snapshot_coverage(versioned, range) {
            SnapshotCoverage::Full(bytes) => bytes.iter().all(|&b| b == ALLOCATED),
            SnapshotCoverage::Partial(v) => (range.start..range.end()).all(|a| {
                snapshot_byte(v, a).unwrap_or_else(|| self.alloc.join_range(a, 1)) == ALLOCATED
            }),
            SnapshotCoverage::Live => self.alloc.eq_range(range.start, range.len, ALLOCATED),
        }
    }
}

impl ConcurrentLifeguard for AddrCheckConcurrent {
    fn apply(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        match &rec.payload {
            EventPayload::Instr(instr) => {
                let Some(MetaOp::CheckAccess { mem, .. }) = check_view(instr) else {
                    return;
                };
                let range = mem.range();
                if !self.heap.overlaps(&range) {
                    return;
                }
                if !self.all_allocated(range, versioned) {
                    self.violations.lock().expect("poisoned").push(Violation {
                        tid,
                        rid: rec.rid,
                        kind: ViolationKind::UnallocatedAccess,
                        addr: Some(mem.addr),
                    });
                }
            }
            EventPayload::Ca(ca) => {
                // Only the issuer updates metadata (remote copies order).
                if ca.issuer != tid {
                    return;
                }
                match (ca.what, ca.phase, ca.range) {
                    (HighLevelKind::Malloc, CaPhase::End, Some(range)) => {
                        self.alloc.fill_range(range.start, range.len, ALLOCATED);
                    }
                    (HighLevelKind::Free, CaPhase::Begin, Some(range)) => {
                        self.alloc.fill_range(range.start, range.len, 0);
                    }
                    _ => {}
                }
            }
        }
    }

    fn ca_policy(&self) -> CaPolicy {
        CaPolicy::addrcheck()
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        self.alloc.snapshot(range.start, range.len)
    }

    fn fingerprint(&self) -> u64 {
        self.alloc.fingerprint()
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.lock().expect("poisoned").clone()
    }
}

impl crate::factory::DeltaLifeguard for AddrCheckConcurrent {
    /// ADDRCHECK's replay is a documented pass-through: its per-access work
    /// is a metadata *read* (the allocation check), and its only metadata
    /// writes ride malloc/free ConflictAlerts — which every replay mode
    /// already applies at an ordered point. There is nothing to buffer, so
    /// delta-merge mode degenerates to CAS-per-access (and the factory's
    /// preferred mode never selects it).
    fn apply_delta(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        self.apply(tid, rec, versioned);
    }

    fn flush_delta(&self, _tid: ThreadId) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{AccessKind, MemRef};

    const HEAP: AddrRange = AddrRange {
        start: 0x1000_0000,
        len: 0x1000_0000,
    };

    fn setup() -> (Rc<RefCell<AddrShared>>, AddrCheck) {
        let shared = AddrShared::new(HEAP);
        let lg = AddrCheck::new(Rc::clone(&shared), ThreadId(0));
        (shared, lg)
    }

    fn malloc_ca(range: AddrRange) -> CaRecord {
        CaRecord {
            what: HighLevelKind::Malloc,
            phase: CaPhase::End,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    fn free_ca(range: AddrRange) -> CaRecord {
        CaRecord {
            what: HighLevelKind::Free,
            phase: CaPhase::Begin,
            range: Some(range),
            issuer: ThreadId(0),
            issuer_rid: Rid(2),
            seq: 1,
        }
    }

    fn check(addr: u64) -> MetaOp {
        MetaOp::CheckAccess {
            mem: MemRef::new(addr, 4),
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn access_before_malloc_violates() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(HEAP.start + 0x10), Rid(1), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::UnallocatedAccess);
    }

    #[test]
    fn access_inside_allocation_passes() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start + 0x10, 64);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(HEAP.start + 0x10), Rid(2), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn use_after_free_violates() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start + 0x10, 64);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        lg.handle_ca(&free_ca(range), true, Rid(2), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(HEAP.start + 0x10), Rid(3), &mut ctx);
        assert_eq!(ctx.violations[0].kind, ViolationKind::UnallocatedAccess);
    }

    #[test]
    fn partially_out_of_bounds_access_violates() {
        let (_shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start, 4);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let mut ctx = HandlerCtx::new();
        // 4-byte access at +2 straddles the allocation end.
        lg.handle(&check(HEAP.start + 2), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn non_heap_accesses_ignored() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(&check(0x1000), Rid(1), &mut ctx); // stack/global space
        assert!(ctx.violations.is_empty());
        assert!(ctx.meta_touches.is_empty(), "no metadata touched off-heap");
    }

    #[test]
    fn remote_ca_does_not_update_metadata() {
        let (shared, mut lg) = setup();
        let range = AddrRange::new(HEAP.start, 64);
        lg.handle_ca(&malloc_ca(range), false, Rid(1), &mut HandlerCtx::new());
        assert_eq!(shared.borrow().alloc.get(HEAP.start), 0);
    }

    #[test]
    fn dataflow_ops_are_ignored() {
        let (_shared, mut lg) = setup();
        let mut ctx = HandlerCtx::new();
        lg.handle(
            &MetaOp::ImmToReg {
                dst: paralog_events::Reg::new(0),
            },
            Rid(1),
            &mut ctx,
        );
        assert!(ctx.violations.is_empty() && ctx.meta_touches.is_empty());
    }

    #[test]
    fn concurrent_form_matches_sequential_checks() {
        use paralog_events::Instr;
        let conc = AddrCheckConcurrent::new(HEAP);
        let range = AddrRange::new(HEAP.start + 0x10, 64);
        // Unallocated access violates; after the issuer's malloc it passes;
        // after free it violates again — and the fingerprint tracks the
        // sequential family's at every step.
        let (_, seq) = setup();
        let load = |rid: u64, addr: u64| {
            EventRecord::instr(
                Rid(rid),
                Instr::Load {
                    dst: paralog_events::Reg::new(0),
                    src: MemRef::new(addr, 4),
                },
            )
        };
        conc.apply(ThreadId(0), &load(1, HEAP.start + 0x10), None);
        assert_eq!(conc.violations().len(), 1);
        assert_eq!(conc.fingerprint(), seq.fingerprint(), "both clean");
        conc.apply(
            ThreadId(0),
            &EventRecord::ca(Rid(2), malloc_ca(range)),
            None,
        );
        conc.apply(ThreadId(0), &load(3, HEAP.start + 0x10), None);
        assert_eq!(conc.violations().len(), 1, "allocated access passes");
        // Remote CA records must not update metadata.
        conc.apply(ThreadId(1), &EventRecord::ca(Rid(1), free_ca(range)), None);
        conc.apply(ThreadId(0), &load(4, HEAP.start + 0x10), None);
        assert_eq!(conc.violations().len(), 1, "remote free ignored");
        conc.apply(ThreadId(0), &EventRecord::ca(Rid(5), free_ca(range)), None);
        conc.apply(ThreadId(0), &load(6, HEAP.start + 0x10), None);
        assert_eq!(conc.violations().len(), 2, "use after free");
        assert_eq!(conc.fingerprint(), seq.fingerprint(), "clean again");
        // Off-heap accesses stay unchecked.
        conc.apply(ThreadId(0), &load(7, 0x1000), None);
        assert_eq!(conc.violations().len(), 2);
    }

    #[test]
    fn concurrent_checks_honor_versioned_snapshots() {
        use paralog_events::Instr;
        let conc = AddrCheckConcurrent::new(HEAP);
        let range = AddrRange::new(HEAP.start, 8);
        conc.apply(
            ThreadId(0),
            &EventRecord::ca(Rid(1), malloc_ca(range)),
            None,
        );
        let load = EventRecord::instr(
            Rid(2),
            Instr::Load {
                dst: paralog_events::Reg::new(0),
                src: MemRef::new(HEAP.start, 4),
            },
        );
        // Live shadow says allocated, but the §5.5 snapshot (pre-free
        // state of a racing remote free's inverse: here pre-malloc) says
        // not: the versioned bytes must win.
        let versioned = (range, vec![0u8; 8]);
        conc.apply(ThreadId(0), &load, Some(&versioned));
        assert_eq!(conc.violations().len(), 1, "snapshot overrides shadow");
        let versioned = (range, vec![ALLOCATED; 8]);
        conc.apply(ThreadId(0), &load, Some(&versioned));
        assert_eq!(conc.violations().len(), 1, "allocated snapshot passes");
    }

    #[test]
    fn fingerprint_tracks_allocation_map() {
        let (_shared, mut lg) = setup();
        let before = lg.fingerprint();
        let range = AddrRange::new(HEAP.start, 16);
        lg.handle_ca(&malloc_ca(range), true, Rid(1), &mut HandlerCtx::new());
        let allocated = lg.fingerprint();
        assert_ne!(allocated, before);
        lg.handle_ca(&free_ca(range), true, Rid(2), &mut HandlerCtx::new());
        assert_eq!(lg.fingerprint(), before);
    }
}
