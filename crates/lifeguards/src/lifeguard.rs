//! The [`Lifeguard`] trait: what the platform needs from an analysis.
//!
//! ParaLog's goal is that a lifeguard written for sequential monitoring ports
//! to parallel monitoring with minimal effort (§3). The trait reflects that:
//! a lifeguard sees only its own thread's delivered metadata ops and
//! ConflictAlert records; ordering, accelerator management and metadata
//! atomicity are the platform's business, driven by the declarative
//! [`LifeguardSpec`].

use paralog_events::{Addr, AddrRange, CaRecord, MetaOp, Rid, ThreadId};
use paralog_meta::{AtomicShadow, ShadowDelta, ShadowMemory};
use paralog_order::{CaPolicy, RangeEntry};
use std::fmt;

/// Which decoding of the instruction stream a lifeguard consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventView {
    /// Dataflow-tracking view (taint/initializedness propagation); pairs
    /// with Inheritance Tracking.
    Dataflow,
    /// Access-check view (every load/store becomes a check); pairs with
    /// Idempotent Filters.
    Check,
}

/// Metadata-atomicity class per §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicityClass {
    /// Conditions 1–3 hold: application reads map to metadata reads only;
    /// enforced arcs alone guarantee atomicity (synchronization-free).
    SyncFree,
    /// Condition 2 violated (metadata writes in read handlers): the
    /// lifeguard uses the synchronization-free fast path plus a locked slow
    /// path; the platform charges the slow-path synchronization cost.
    FastPathSlowPath,
}

/// Declarative description the platform uses to wire a lifeguard.
#[derive(Debug, Clone)]
pub struct LifeguardSpec {
    /// Human-readable name ("TaintCheck", ...).
    pub name: &'static str,
    /// Stream decoding.
    pub view: EventView,
    /// Whether Inheritance Tracking applies.
    pub uses_it: bool,
    /// Whether Idempotent Filters apply.
    pub uses_if: bool,
    /// Whether the Metadata TLB applies.
    pub uses_mtlb: bool,
    /// ConflictAlert subscriptions.
    pub ca_policy: CaPolicy,
    /// Metadata bits per application byte (shadow width).
    pub bits_per_byte: u32,
    /// §5.3 atomicity class.
    pub atomicity: AtomicityClass,
}

/// A detected monitoring violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Monitored thread in whose stream the violation surfaced.
    pub tid: ThreadId,
    /// Record id of the triggering event.
    pub rid: Rid,
    /// What went wrong.
    pub kind: ViolationKind,
    /// Offending address, when meaningful.
    pub addr: Option<Addr>,
}

/// Classes of violations the bundled lifeguards report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Tainted data used as an indirect jump target (TAINTCHECK).
    TaintedJump,
    /// Tainted data reaching a checked system-call argument (TAINTCHECK).
    TaintedSyscallArg,
    /// Access to unallocated heap memory (ADDRCHECK).
    UnallocatedAccess,
    /// Use of an undefined (never-initialized) value (MEMCHECK).
    UndefinedUse,
    /// Inconsistent locking discipline (LOCKSET).
    DataRace,
    /// Application access racing an in-flight system call (§5.4).
    SyscallRace,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::TaintedJump => "tainted jump target",
            ViolationKind::TaintedSyscallArg => "tainted syscall argument",
            ViolationKind::UnallocatedAccess => "unallocated memory access",
            ViolationKind::UndefinedUse => "use of undefined value",
            ViolationKind::DataRace => "inconsistent locking (potential data race)",
            ViolationKind::SyscallRace => "access racing a system call",
        };
        f.write_str(s)
    }
}

/// TSO versioned metadata injected into one record's application: the
/// range the producer's pre-store snapshot covers, and its bytes (§5.5).
pub type VersionedMeta = (AddrRange, Vec<u8>);

/// How a §5.5 snapshot covers one metadata read — *the* canonical overlap
/// classification every versioned-aware read path shares ([`HandlerCtx`]'s
/// methods as well as the lock-free concurrent lifeguards); reimplementing
/// the boundary math invites divergence between backends.
#[derive(Debug)]
pub enum SnapshotCoverage<'a> {
    /// Every byte of the read is inside the snapshot: read this slice (the
    /// read's bytes, already offset into the snapshot).
    Full(&'a [u8]),
    /// Genuine partial overlap: resolve byte-wise via [`snapshot_byte`],
    /// snapshot bytes winning over the live shadow.
    Partial(&'a VersionedMeta),
    /// No snapshot, or one disjoint from the read: take the live shadow's
    /// (word-wise) fast path.
    Live,
}

/// Classifies how `versioned` covers a read of `range`.
pub fn snapshot_coverage(
    versioned: Option<&VersionedMeta>,
    range: AddrRange,
) -> SnapshotCoverage<'_> {
    let Some(v @ (vr, bytes)) = versioned else {
        return SnapshotCoverage::Live;
    };
    if vr.start <= range.start && range.end() <= vr.end() {
        let off = (range.start - vr.start) as usize;
        return SnapshotCoverage::Full(&bytes[off..off + range.len as usize]);
    }
    if vr.start < range.end() && range.start < vr.end() {
        return SnapshotCoverage::Partial(v);
    }
    SnapshotCoverage::Live
}

/// The concurrent mirror of [`HandlerCtx::join_shadow`]: joins (bitwise-ORs)
/// the metadata of `range` against a lock-free [`AtomicShadow`], honoring a
/// §5.5 versioned snapshot through the same [`snapshot_coverage`] rule —
/// full coverage reads the snapshot, an absent or disjoint snapshot takes
/// the chunk-resident shadow fast path, and genuine partial overlap merges
/// byte-wise with versioned bytes winning. Every byte-shadow concurrent
/// lifeguard reads through this; reimplementing the boundary math invites
/// divergence between the deterministic and threaded backends.
pub fn join_atomic_shadow(
    shadow: &AtomicShadow,
    range: AddrRange,
    versioned: Option<&VersionedMeta>,
) -> u8 {
    match snapshot_coverage(versioned, range) {
        SnapshotCoverage::Full(bytes) => bytes.iter().fold(0, |a, b| a | b),
        SnapshotCoverage::Partial(v) => (range.start..range.end()).fold(0, |acc, a| {
            acc | snapshot_byte(v, a).unwrap_or_else(|| shadow.join_range(a, 1))
        }),
        SnapshotCoverage::Live => shadow.join_range(range.start, range.len),
    }
}

/// How a concurrent byte-shadow analysis touches its metadata — the seam
/// that lets one propagation implementation serve both replay modes. The
/// CAS-per-access form goes straight at the shared [`AtomicShadow`]
/// ([`SharedAccess`]); the delta-merge form routes writes into the worker's
/// private [`ShadowDelta`] and reads overlay-first ([`DeltaAccess`]).
/// Keeping the analysis logic mode-blind is what makes the two modes
/// bit-identical by construction.
pub(crate) trait ShadowAccess {
    /// Joins (bitwise-ORs) the metadata of `range`, honoring a §5.5
    /// versioned snapshot (snapshot bytes win over everything).
    fn join(&mut self, range: AddrRange, versioned: Option<&VersionedMeta>) -> u8;

    /// Stores `v` over every metadata byte of `range`.
    fn fill(&mut self, range: AddrRange, v: u8);
}

/// CAS-per-access: every touch goes to the shared shadow.
pub(crate) struct SharedAccess<'a>(pub &'a AtomicShadow);

impl ShadowAccess for SharedAccess<'_> {
    fn join(&mut self, range: AddrRange, versioned: Option<&VersionedMeta>) -> u8 {
        join_atomic_shadow(self.0, range, versioned)
    }

    fn fill(&mut self, range: AddrRange, v: u8) {
        self.0.fill_range(range.start, range.len, v);
    }
}

/// Delta-merge: writes buffer privately, reads resolve snapshot → own
/// overlay → shared shadow.
pub(crate) struct DeltaAccess<'a> {
    pub delta: &'a mut ShadowDelta,
    pub shadow: &'a AtomicShadow,
}

impl ShadowAccess for DeltaAccess<'_> {
    fn join(&mut self, range: AddrRange, versioned: Option<&VersionedMeta>) -> u8 {
        match snapshot_coverage(versioned, range) {
            SnapshotCoverage::Full(bytes) => bytes.iter().fold(0, |a, b| a | b),
            SnapshotCoverage::Partial(v) => (range.start..range.end()).fold(0, |acc, a| {
                acc | snapshot_byte(v, a).unwrap_or_else(|| {
                    self.delta
                        .get(a)
                        .unwrap_or_else(|| self.shadow.join_range(a, 1))
                })
            }),
            SnapshotCoverage::Live => self.delta.join_over(range.start, range.len, self.shadow),
        }
    }

    fn fill(&mut self, range: AddrRange, v: u8) {
        self.delta.set_range(range.start, range.len, v);
    }
}

/// The snapshot's value for one application byte, `None` when the byte is
/// outside the snapshot (read the live shadow instead).
pub fn snapshot_byte(versioned: &VersionedMeta, addr: u64) -> Option<u8> {
    let (vr, bytes) = versioned;
    if vr.contains(addr) {
        Some(bytes[(addr - vr.start) as usize])
    } else {
        None
    }
}

/// Per-delivery context: the handler reports its metadata footprint (for the
/// lifeguard-core cache model), violations, and slow-path entry; the
/// platform injects TSO versioned metadata.
#[derive(Debug, Default)]
pub struct HandlerCtx {
    /// Versioned metadata for this op's memory source (TSO consume, §5.5).
    pub versioned: Option<VersionedMeta>,
    /// Metadata-space ranges the handler touched: `(range, is_write)`.
    pub meta_touches: Vec<(AddrRange, bool)>,
    /// Violations reported by the handler.
    pub violations: Vec<Violation>,
    /// Whether the handler entered its locked slow path (§5.3).
    pub slow_path: bool,
}

impl HandlerCtx {
    /// Fresh context for one delivery.
    pub fn new() -> Self {
        HandlerCtx::default()
    }

    /// Records a metadata read footprint.
    pub fn touch_read(&mut self, range: AddrRange) {
        self.meta_touches.push((range, false));
    }

    /// Records a metadata write footprint.
    pub fn touch_write(&mut self, range: AddrRange) {
        self.meta_touches.push((range, true));
    }

    /// Reports a violation.
    pub fn report(&mut self, v: Violation) {
        self.violations.push(v);
    }

    /// Injects a consumed §5.5 snapshot when (and only when) `op` reads the
    /// versioned location — *the* gate deciding whether a version applies
    /// to a delivered op; every delivery path (simulation, ingestion,
    /// locked concurrent replay) uses it rather than re-deriving the
    /// condition.
    pub fn inject_versioned(&mut self, op: &MetaOp, versioned: Option<&VersionedMeta>) {
        if let Some((range, bytes)) = versioned {
            if op
                .mem_src()
                .map(|m| range.overlaps(&m.range()))
                .unwrap_or(false)
            {
                self.versioned = Some((*range, bytes.clone()));
            }
        }
    }

    /// If versioned metadata covering `range` was injected, returns the join
    /// (bitwise OR) of its bytes; `None` means read current shadow state.
    pub fn versioned_join(&self, range: AddrRange) -> Option<u8> {
        match snapshot_coverage(self.versioned.as_ref(), range) {
            SnapshotCoverage::Full(bytes) => Some(bytes.iter().fold(0, |a, b| a | b)),
            _ => None,
        }
    }

    /// Joins (bitwise-ORs) the metadata of `range` against `shadow`,
    /// honoring any injected TSO versioned snapshot: full coverage reads
    /// the snapshot, an absent or disjoint snapshot takes the word-wise
    /// shadow fast path, and genuine partial overlap merges byte-wise with
    /// versioned bytes winning (§5.5). This is *the* metadata-read rule;
    /// lifeguards must not reimplement it.
    pub fn join_shadow(&self, shadow: &ShadowMemory, range: AddrRange) -> u8 {
        match snapshot_coverage(self.versioned.as_ref(), range) {
            SnapshotCoverage::Full(bytes) => bytes.iter().fold(0, |a, b| a | b),
            SnapshotCoverage::Partial(v) => (range.start..range.end()).fold(0, |acc, a| {
                acc | snapshot_byte(v, a).unwrap_or_else(|| shadow.get(a))
            }),
            SnapshotCoverage::Live => shadow.join_range(range),
        }
    }

    /// The versioned metadata value for one application byte, if this
    /// delivery carries a version covering it. Handlers read mixed-coverage
    /// operands by merging byte-wise: versioned bytes take the snapshot,
    /// all others the current shadow (§5.5).
    pub fn versioned_byte(&self, addr: u64) -> Option<u8> {
        self.versioned.as_ref().and_then(|v| snapshot_byte(v, addr))
    }
}

/// One lifeguard thread's analysis logic.
///
/// Implementations share analysis-wide state (the global metadata of
/// Figure 2) behind `Rc<RefCell<_>>`; the platform guarantees handlers run
/// atomically and in dependence order, which is what makes the shared access
/// sound (§5.3).
pub trait Lifeguard: fmt::Debug {
    /// The declarative wiring description.
    fn spec(&self) -> &LifeguardSpec;

    /// Handles one delivered metadata operation.
    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx);

    /// Handles a ConflictAlert record; `own` is true iff this lifeguard's
    /// application thread issued the high-level event (only the issuer
    /// updates metadata).
    fn handle_ca(&mut self, ca: &CaRecord, own: bool, rid: Rid, ctx: &mut HandlerCtx);

    /// Snapshots current metadata for `range` (TSO produce-version, §5.5).
    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8>;

    /// Reacts to an access racing an in-flight system call (range-table hit,
    /// §5.4). Default: no reaction.
    fn on_syscall_race(
        &mut self,
        _access: AddrRange,
        _entry: &RangeEntry,
        _rid: Rid,
        _ctx: &mut HandlerCtx,
    ) {
    }

    /// Order-insensitive fingerprint of the analysis-wide metadata state,
    /// used by equivalence tests (parallel run vs. sequential reference).
    fn fingerprint(&self) -> u64;

    /// Sorted dump of non-clean shadow bytes (debugging aid). Lifeguards
    /// without byte-shadow metadata return an empty dump.
    fn dump_shadow(&self) -> Vec<(u64, u8)> {
        Vec::new()
    }
}

// The fingerprint lives with the metadata substrate (the real-thread
// executor's AtomicShadow fingerprints itself without this crate); this
// re-export keeps the historical `paralog_lifeguards::Fingerprint` path.
pub use paralog_meta::Fingerprint;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_touches_and_reports() {
        let mut ctx = HandlerCtx::new();
        ctx.touch_read(AddrRange::new(0x100, 4));
        ctx.touch_write(AddrRange::new(0x200, 1));
        ctx.report(Violation {
            tid: ThreadId(0),
            rid: Rid(3),
            kind: ViolationKind::TaintedJump,
            addr: None,
        });
        assert_eq!(ctx.meta_touches.len(), 2);
        assert!(ctx.meta_touches[1].1, "second touch is a write");
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn versioned_join_covers_subranges() {
        let mut ctx = HandlerCtx::new();
        ctx.versioned = Some((AddrRange::new(0x100, 8), vec![0, 1, 0, 0, 2, 0, 0, 0]));
        assert_eq!(ctx.versioned_join(AddrRange::new(0x100, 4)), Some(1));
        assert_eq!(ctx.versioned_join(AddrRange::new(0x104, 4)), Some(2));
        assert_eq!(ctx.versioned_join(AddrRange::new(0x100, 8)), Some(3));
        assert_eq!(
            ctx.versioned_join(AddrRange::new(0x0ff, 4)),
            None,
            "partial coverage"
        );
        assert_eq!(HandlerCtx::new().versioned_join(AddrRange::new(0, 1)), None);
    }

    #[test]
    fn violation_kind_display() {
        assert!(ViolationKind::TaintedJump.to_string().contains("jump"));
        assert!(ViolationKind::SyscallRace
            .to_string()
            .contains("system call"));
    }
}
