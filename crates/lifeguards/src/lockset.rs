//! LOCKSET: Eraser-style data-race detection (Savage et al.), the paper's
//! example of a lifeguard that *violates* §5.3 condition 2.
//!
//! LockSet maintains, per shared variable, the candidate set of locks that
//! consistently protected it. Because a mere application *read* can shrink
//! the candidate set, read handlers perform metadata **writes** — enforced
//! arcs alone no longer guarantee atomicity. Following §5.3, the
//! implementation splits read handlers into a *synchronization-free fast
//! path* (pure candidate-set check, no state change needed) and a locked
//! *slow path* (single metadata write under a lock); the platform charges
//! [`CostModel::slow_path_sync`](crate::cost::CostModel::slow_path_sync) when
//! [`HandlerCtx::slow_path`] is set.

use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use paralog_events::{AddrRange, CaPhase, CaRecord, HighLevelKind, MetaOp, Rid, ThreadId};
use paralog_order::CaPolicy;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single thread so far.
    Exclusive(ThreadId),
    /// Read-shared by multiple threads, never written after sharing.
    Shared,
    /// Written by multiple threads — candidate-set emptiness is a race.
    SharedModified,
}

#[derive(Debug, Clone)]
struct VarEntry {
    state: VarState,
    /// Candidate lock set as a bitmask over lock ids (< 64).
    candidates: u64,
    reported: bool,
}

/// Analysis-wide shared state: per-variable lockset table.
#[derive(Debug, Default)]
pub struct LockSetShared {
    vars: HashMap<u64, VarEntry>,
}

impl LockSetShared {
    /// Fresh state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(LockSetShared::default()))
    }
}

/// One lifeguard thread of the parallel LOCKSET.
#[derive(Debug)]
pub struct LockSet {
    shared: Rc<RefCell<LockSetShared>>,
    /// Locks currently held by the monitored thread (bitmask).
    held: u64,
    tid: ThreadId,
    spec: LifeguardSpec,
}

/// Word granularity of race detection (4 bytes, like Eraser).
const GRANULE: u64 = 4;

/// Start of the synchronization-object address space. Accesses to lock and
/// barrier words are synchronization, not data — Eraser excludes them.
/// Mirrors `paralog_sim::sync::SYNC_BASE` (asserted equal in the
/// integration tests to avoid a dependency cycle).
pub const SYNC_SPACE_START: u64 = 0xF000_0000;

impl LockSet {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<LockSetShared>>, tid: ThreadId) -> Self {
        LockSet {
            shared,
            held: 0,
            tid,
            spec: LifeguardSpec {
                name: "LockSet",
                view: EventView::Check,
                uses_it: false,
                uses_if: false,
                uses_mtlb: true,
                ca_policy: CaPolicy::new(),
                bits_per_byte: 8,
                atomicity: AtomicityClass::FastPathSlowPath,
            },
        }
    }

    /// The monitored thread's currently held locks (bitmask; diagnostic).
    pub fn held(&self) -> u64 {
        self.held
    }

    fn check_granule(&mut self, word: u64, writes: bool, rid: Rid, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        let entry = shared.vars.entry(word).or_insert(VarEntry {
            state: VarState::Virgin,
            candidates: u64::MAX,
            reported: false,
        });
        let held = self.held;
        let (new_state, new_candidates) = match entry.state {
            VarState::Virgin => (VarState::Exclusive(self.tid), entry.candidates),
            VarState::Exclusive(owner) if owner == self.tid => {
                // Fast path: no metadata change.
                (entry.state, entry.candidates)
            }
            VarState::Exclusive(_) => {
                let next = if writes {
                    VarState::SharedModified
                } else {
                    VarState::Shared
                };
                (next, held)
            }
            VarState::Shared => {
                let next = if writes {
                    VarState::SharedModified
                } else {
                    VarState::Shared
                };
                (next, entry.candidates & held)
            }
            VarState::SharedModified => (VarState::SharedModified, entry.candidates & held),
        };
        let changed = new_state != entry.state || new_candidates != entry.candidates;
        if changed && !writes {
            // §5.3: a metadata write in a read handler is the slow path.
            ctx.slow_path = true;
        }
        entry.state = new_state;
        entry.candidates = new_candidates;
        if entry.state == VarState::SharedModified && entry.candidates == 0 && !entry.reported {
            entry.reported = true;
            ctx.report(Violation {
                tid: self.tid,
                rid,
                kind: ViolationKind::DataRace,
                addr: Some(word),
            });
        }
    }
}

impl Lifeguard for LockSet {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let (mem, kind) = match *op {
            MetaOp::CheckAccess { mem, kind } => (mem, kind),
            // Lock words themselves are not subject to lockset analysis.
            MetaOp::RmwOp { .. } => return,
            _ => return,
        };
        if mem.addr >= SYNC_SPACE_START {
            // Synchronization objects (lock words, barrier slots/flags) are
            // accessed racily by construction.
            return;
        }
        let first = mem.addr / GRANULE;
        let last = (mem.addr + mem.size as u64 - 1) / GRANULE;
        for word in first..=last {
            ctx.touch_read(AddrRange::new(0x6000_0000_0000 + word * 8, 8));
            self.check_granule(word * GRANULE, kind.writes(), rid, ctx);
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, _ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match ca.what {
            HighLevelKind::Lock(lock) if ca.phase == CaPhase::End => {
                self.held |= 1u64 << (lock.0 % 64);
            }
            HighLevelKind::Unlock(lock) if ca.phase == CaPhase::Begin => {
                self.held &= !(1u64 << (lock.0 % 64));
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // Lockset state is not byte-shadow metadata; versioning does not
        // apply (LockSet is evaluated under SC only).
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (word, entry) in &shared.vars {
            let state_code = match entry.state {
                VarState::Virgin => 0u64,
                VarState::Exclusive(t) => 1 + u64::from(t.0),
                VarState::Shared => 1 << 32,
                VarState::SharedModified => 2 << 32,
            };
            fp.mix(*word, state_code ^ entry.candidates);
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paralog_events::{AccessKind, LockId, MemRef};

    fn lock_ca(id: u32, phase: CaPhase, what_lock: bool) -> CaRecord {
        CaRecord {
            what: if what_lock {
                HighLevelKind::Lock(LockId(id))
            } else {
                HighLevelKind::Unlock(LockId(id))
            },
            phase,
            range: None,
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    fn access(addr: u64, write: bool) -> MetaOp {
        MetaOp::CheckAccess {
            mem: MemRef::new(addr, 4),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        }
    }

    fn two_threads() -> (LockSet, LockSet) {
        let shared = LockSetShared::new();
        (
            LockSet::new(Rc::clone(&shared), ThreadId(0)),
            LockSet::new(Rc::clone(&shared), ThreadId(1)),
        )
    }

    #[test]
    fn consistent_locking_is_silent() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        a.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(2), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn unprotected_sharing_reports_race_once() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, true), Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(1), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(ctx.violations[0].kind, ViolationKind::DataRace);
        // Further accesses do not re-report.
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn read_sharing_without_writes_is_not_a_race() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx);
        b.handle(&access(0x100, false), Rid(1), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn exclusive_fast_path_sets_no_slow_flag() {
        let (mut a, _b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx); // Virgin -> Exclusive (write-ish transition but read)
        let mut ctx2 = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(2), &mut ctx2);
        assert!(!ctx2.slow_path, "same-thread re-read is the fast path");
    }

    #[test]
    fn cross_thread_read_takes_slow_path() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx);
        let mut ctx2 = HandlerCtx::new();
        b.handle(&access(0x100, false), Rid(1), &mut ctx2);
        assert!(
            ctx2.slow_path,
            "state transition on read = metadata write = slow path"
        );
    }

    #[test]
    fn lock_tracking_follows_ca_records() {
        let (mut a, _b) = two_threads();
        let mut ctx = HandlerCtx::new();
        assert_eq!(a.held(), 0);
        a.handle_ca(&lock_ca(3, CaPhase::End, true), true, Rid(1), &mut ctx);
        assert_eq!(a.held(), 1 << 3);
        a.handle_ca(&lock_ca(3, CaPhase::Begin, false), true, Rid(2), &mut ctx);
        assert_eq!(a.held(), 0);
        // Remote lock CAs do not change our held set.
        a.handle_ca(&lock_ca(5, CaPhase::End, true), false, Rid(3), &mut ctx);
        assert_eq!(a.held(), 0);
    }

    #[test]
    fn partial_candidate_overlap_survives() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        // Thread 0 holds {1,2}, thread 1 holds {2}: candidate set ends {2}.
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle_ca(&lock_ca(2, CaPhase::End, true), true, Rid(2), &mut ctx);
        a.handle(&access(0x200, true), Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(2, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x200, true), Rid(2), &mut ctx);
        assert!(ctx.violations.is_empty(), "lock 2 consistently protects");
    }
}
