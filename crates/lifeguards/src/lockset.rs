//! LOCKSET: Eraser-style data-race detection (Savage et al.), the paper's
//! example of a lifeguard that *violates* §5.3 condition 2.
//!
//! LockSet maintains, per shared variable, the candidate set of locks that
//! consistently protected it. Because a mere application *read* can shrink
//! the candidate set, read handlers perform metadata **writes** — enforced
//! arcs alone no longer guarantee atomicity. Following §5.3, the
//! implementation splits read handlers into a *synchronization-free fast
//! path* (pure candidate-set check, no state change needed) and a locked
//! *slow path* (single metadata write under a lock); the platform charges
//! [`CostModel::slow_path_sync`](crate::cost::CostModel::slow_path_sync) when
//! [`HandlerCtx::slow_path`] is set.

use crate::factory::{ConcurrentLifeguard, VersionedMeta};
use crate::lifeguard::{
    AtomicityClass, EventView, Fingerprint, HandlerCtx, Lifeguard, LifeguardSpec, Violation,
    ViolationKind,
};
use crate::wordmeta::{WordAnalysis, WordOverlay};
use paralog_events::{
    check_view, AccessKind, AddrRange, CaPhase, CaRecord, EventPayload, EventRecord, HighLevelKind,
    MemRef, MetaOp, Rid, ThreadId,
};
use paralog_meta::{WordTable, MAX_WIDE_IDS};
use paralog_order::CaPolicy;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Eraser's per-variable state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single thread so far.
    Exclusive(ThreadId),
    /// Read-shared by multiple threads, never written after sharing.
    Shared,
    /// Written by multiple threads — candidate-set emptiness is a race.
    SharedModified,
}

#[derive(Debug, Clone)]
struct VarEntry {
    state: VarState,
    /// Candidate lock set as a bitmask over lock ids (< 64).
    candidates: u64,
    reported: bool,
}

/// Analysis-wide shared state: per-variable lockset table.
#[derive(Debug, Default)]
pub struct LockSetShared {
    vars: HashMap<u64, VarEntry>,
}

impl LockSetShared {
    /// Fresh state.
    pub fn new() -> Rc<RefCell<Self>> {
        Rc::new(RefCell::new(LockSetShared::default()))
    }
}

/// One lifeguard thread of the parallel LOCKSET.
#[derive(Debug)]
pub struct LockSet {
    shared: Rc<RefCell<LockSetShared>>,
    /// Locks currently held by the monitored thread (bitmask).
    held: u64,
    tid: ThreadId,
    spec: LifeguardSpec,
}

/// Word granularity of race detection (4 bytes, like Eraser).
const GRANULE: u64 = 4;

/// Start of the synchronization-object address space. Accesses to lock and
/// barrier words are synchronization, not data — Eraser excludes them.
/// Mirrors `paralog_sim::sync::SYNC_BASE` (asserted equal in the
/// integration tests to avoid a dependency cycle).
pub const SYNC_SPACE_START: u64 = 0xF000_0000;

impl LockSet {
    /// Creates the lifeguard thread monitoring application thread `tid`.
    pub fn new(shared: Rc<RefCell<LockSetShared>>, tid: ThreadId) -> Self {
        LockSet {
            shared,
            held: 0,
            tid,
            spec: LifeguardSpec {
                name: "LockSet",
                view: EventView::Check,
                uses_it: false,
                uses_if: false,
                uses_mtlb: true,
                ca_policy: CaPolicy::new(),
                bits_per_byte: 8,
                atomicity: AtomicityClass::FastPathSlowPath,
            },
        }
    }

    /// The monitored thread's currently held locks (bitmask; diagnostic).
    pub fn held(&self) -> u64 {
        self.held
    }

    fn check_granule(&mut self, word: u64, writes: bool, rid: Rid, ctx: &mut HandlerCtx) {
        let mut shared = self.shared.borrow_mut();
        let entry = shared.vars.entry(word).or_insert(VarEntry {
            state: VarState::Virgin,
            candidates: u64::MAX,
            reported: false,
        });
        let held = self.held;
        let (new_state, new_candidates) = match entry.state {
            VarState::Virgin => (VarState::Exclusive(self.tid), entry.candidates),
            VarState::Exclusive(owner) if owner == self.tid => {
                // Fast path: no metadata change.
                (entry.state, entry.candidates)
            }
            VarState::Exclusive(_) => {
                let next = if writes {
                    VarState::SharedModified
                } else {
                    VarState::Shared
                };
                (next, held)
            }
            VarState::Shared => {
                let next = if writes {
                    VarState::SharedModified
                } else {
                    VarState::Shared
                };
                (next, entry.candidates & held)
            }
            VarState::SharedModified => (VarState::SharedModified, entry.candidates & held),
        };
        let changed = new_state != entry.state || new_candidates != entry.candidates;
        if changed && !writes {
            // §5.3: a metadata write in a read handler is the slow path.
            ctx.slow_path = true;
        }
        entry.state = new_state;
        entry.candidates = new_candidates;
        if entry.state == VarState::SharedModified && entry.candidates == 0 && !entry.reported {
            entry.reported = true;
            ctx.report(Violation {
                tid: self.tid,
                rid,
                kind: ViolationKind::DataRace,
                addr: Some(word),
            });
        }
    }
}

impl Lifeguard for LockSet {
    fn spec(&self) -> &LifeguardSpec {
        &self.spec
    }

    fn handle(&mut self, op: &MetaOp, rid: Rid, ctx: &mut HandlerCtx) {
        let (mem, kind) = match *op {
            MetaOp::CheckAccess { mem, kind } => (mem, kind),
            // Lock words themselves are not subject to lockset analysis.
            MetaOp::RmwOp { .. } => return,
            _ => return,
        };
        if mem.addr >= SYNC_SPACE_START {
            // Synchronization objects (lock words, barrier slots/flags) are
            // accessed racily by construction.
            return;
        }
        let first = mem.addr / GRANULE;
        let last = (mem.addr + mem.size as u64 - 1) / GRANULE;
        for word in first..=last {
            ctx.touch_read(AddrRange::new(0x6000_0000_0000 + word * 8, 8));
            self.check_granule(word * GRANULE, kind.writes(), rid, ctx);
        }
    }

    fn handle_ca(&mut self, ca: &CaRecord, own: bool, _rid: Rid, _ctx: &mut HandlerCtx) {
        if !own {
            return;
        }
        match ca.what {
            HighLevelKind::Lock(lock) if ca.phase == CaPhase::End => {
                self.held |= 1u64 << (lock.0 % 64);
            }
            HighLevelKind::Unlock(lock) if ca.phase == CaPhase::Begin => {
                self.held &= !(1u64 << (lock.0 % 64));
            }
            _ => {}
        }
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // Lockset state is not byte-shadow metadata; versioning does not
        // apply (LockSet is evaluated under SC only).
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let shared = self.shared.borrow();
        let mut fp = Fingerprint::new();
        for (word, entry) in &shared.vars {
            let state_code = match entry.state {
                VarState::Virgin => 0u64,
                VarState::Exclusive(t) => 1 + u64::from(t.0),
                VarState::Shared => 1 << 32,
                VarState::SharedModified => 2 << 32,
            };
            fp.mix(*word, state_code ^ entry.candidates);
        }
        fp.finish()
    }
}

/// Packed-entry state codes for the concurrent form (bits 0–1 of the
/// packed [`WordTable`] word). The all-zero word is reserved for
/// never-touched keys, so `Virgin` *is* 0 and every real state is non-zero.
const S_VIRGIN: u64 = 0;
const S_EXCLUSIVE: u64 = 1;
const S_SHARED: u64 = 2;
const S_SHARED_MOD: u64 = 3;
/// Bit 2: the once-per-variable race report fired.
const REPORTED_BIT: u64 = 1 << 2;
/// Bits 16–31: owner thread (Exclusive state only).
const OWNER_SHIFT: u64 = 16;
/// Bits 32–63: interned candidate-lockset id.
const SET_SHIFT: u64 = 32;

fn pack(state: u64, owner: u16, set_id: u32, reported: bool) -> u64 {
    state
        | if reported { REPORTED_BIT } else { 0 }
        | (u64::from(owner) << OWNER_SHIFT)
        | (u64::from(set_id) << SET_SHIFT)
}

/// The `Send + Sync` replay form of LOCKSET driven by the real-thread
/// backend: the §5.3 **fast-path/slow-path split** made concrete for the
/// paper's canonical condition-2 violator.
///
/// Each variable's whole Eraser state — state machine code, owning thread,
/// `reported` flag and an *interned* candidate-lockset id — packs into one
/// fast-path word of a [`WordTable`], with the masks themselves interned
/// into its wide tier. The common case (a same-thread re-access
/// in `Exclusive` state, or a read that refines nothing) is a single
/// load-acquire: no store, no lock, nothing for another worker to contend
/// on. A transition that must write metadata publishes the recomputed word
/// with a CAS-exchange, retrying from a fresh read on a lost race; the only
/// mutex anywhere is the interner's, taken just when a *new* candidate mask
/// appears (first-write interning and refinement) — the rare structural
/// slow path. Per-variable transitions are confluent under the enforced
/// arcs (intersection is commutative; writes are always arc-ordered), so
/// the CAS linearization reproduces the deterministic backend's final
/// metadata, and the `reported` bit makes the once-per-variable race report
/// exact even when unordered reads race to observe the empty set.
pub struct LockSetConcurrent {
    /// word-granule index → packed Eraser state, with candidate masks
    /// interned into the wide tier (`u64` wide values: the mask *is* the
    /// wide state).
    words: WordTable<u64>,
    /// Locks currently held per monitored thread. Thread-private by the
    /// backend's contract (each stream's records are applied only by the
    /// worker owning it), so relaxed atomics suffice — no lock on the
    /// per-access read.
    held: Vec<std::sync::atomic::AtomicU64>,
    /// Per-worker delta-merge overlays (granule index → buffered Eraser
    /// transition), published by CAS at flush points through the generic
    /// [`WordAnalysis`] adapter.
    overlay: WordOverlay<GranuleDelta>,
    violations: Mutex<Vec<Violation>>,
    /// Incremental session-event receiver (live daemon feeds); invoked once
    /// when saturation first latches.
    observer: Mutex<Option<crate::SessionEventObserver>>,
    /// Whether the observer already saw the saturation event.
    observer_notified: AtomicBool,
}

impl std::fmt::Debug for LockSetConcurrent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The word table and interner are multi-megabyte chunk indexes; a
        // compact summary beats the derived dump.
        f.debug_struct("LockSetConcurrent")
            .field("threads", &self.held.len())
            .finish_non_exhaustive()
    }
}

impl LockSetConcurrent {
    /// A fresh concurrent LOCKSET for `threads` replayed streams. The word
    /// table grows lazily as accesses arrive, so streams may be ingested
    /// incrementally — no footprint pre-scan.
    pub fn new(threads: usize) -> Self {
        LockSetConcurrent {
            words: WordTable::new(threads),
            held: (0..threads)
                .map(|_| std::sync::atomic::AtomicU64::new(0))
                .collect(),
            overlay: WordOverlay::new(threads),
            violations: Mutex::new(Vec::new()),
            observer: Mutex::new(None),
            observer_notified: AtomicBool::new(false),
        }
    }

    /// The once-per-session degradation notice (shared by the end-of-run
    /// [`session_events`](ConcurrentLifeguard::session_events) sweep and the
    /// incremental observer path).
    fn degraded_event() -> crate::SessionEvent {
        crate::SessionEvent::DegradedPrecision {
            lifeguard: "LockSet",
            detail: format!(
                "mask interner exhausted ({MAX_WIDE_IDS} live candidate masks); \
                 further refinements saturate to the full set (reports stay \
                 sound, some races may go unreported)"
            ),
        }
    }

    /// Pushes the degradation notice to the installed observer the first
    /// time saturation latches. Called right after each slow-path intern
    /// (the only place saturation can newly occur); the check is one
    /// acquire load on a path that already took the interner mutex.
    fn note_saturation(&self) {
        if self.words.wide().is_saturated() && !self.observer_notified.swap(true, Ordering::AcqRel)
        {
            if let Some(observer) = self.observer.lock().expect("poisoned").as_ref() {
                observer(&Self::degraded_event());
            }
        }
    }

    /// One Eraser transition from entry word `cur` — the single state
    /// machine behind both replay forms ([`check_granule`]'s CAS loop and
    /// the delta-merge overlay fold of [`WordAnalysis::fold_access`]),
    /// which is what makes the modes agree bit-for-bit by construction.
    ///
    /// Returns the successor word (without the report bit), the set id
    /// acquired for it (the caller must publish or release it), and the
    /// mask behind the successor's candidate set.
    ///
    /// [`check_granule`]: Self::check_granule
    fn step_word(
        &self,
        cur: u64,
        writes: bool,
        held: u64,
        tid: ThreadId,
    ) -> (u64, Option<u32>, u64) {
        let state = cur & 0b11;
        let owner = ((cur >> OWNER_SHIFT) & 0xFFFF) as u16;
        let set_id = (cur >> SET_SHIFT) as u32;
        let reported = cur & REPORTED_BIT != 0;
        // The id acquired for this attempt (None: reusing cur's id or a
        // refcount-free id 0 state).
        let mut acquired = None;
        let (next, next_mask) = match state {
            S_VIRGIN => (pack(S_EXCLUSIVE, tid.0, 0, false), u64::MAX),
            S_EXCLUSIVE if owner == tid.0 => (cur, u64::MAX), // pure fast path
            S_EXCLUSIVE => {
                let next = if writes { S_SHARED_MOD } else { S_SHARED };
                let id = self.words.wide().intern_acquire(held);
                self.note_saturation();
                acquired = Some(id);
                // SAFETY: we hold a reference on `id` (just acquired), so
                // its slot cannot be reclaimed under us.
                (
                    pack(next, 0, id, reported),
                    unsafe { self.words.wide().value(id) }, // saturation may widen held
                )
            }
            S_SHARED | S_SHARED_MOD => {
                let next = if writes || state == S_SHARED_MOD {
                    S_SHARED_MOD
                } else {
                    S_SHARED
                };
                // SAFETY: `set_id` came from an entry word this worker read
                // after its last epoch boundary; quiescence keeps the slot
                // stable until the worker's next boundary.
                let candidates = unsafe { self.words.wide().value(set_id) };
                let refined = candidates & held;
                let (id, mask) = if refined == candidates {
                    (set_id, candidates) // no refinement: fast path when state holds too
                } else {
                    let id = self.words.wide().intern_acquire(refined);
                    self.note_saturation();
                    acquired = Some(id);
                    // SAFETY: reference held on the just-acquired `id`.
                    (id, unsafe { self.words.wide().value(id) })
                };
                (pack(next, 0, id, reported), mask)
            }
            _ => unreachable!("2-bit state"),
        };
        (next, acquired, next_mask)
    }

    /// One granule's state transition — the concurrent mirror of
    /// [`LockSet::check_granule`]'s match, CAS-published.
    ///
    /// Set-id references move with the entry word: a transition to a new id
    /// *acquires* it (inside the intern mutex) before the CAS, then
    /// releases the displaced id on success or the acquired one on failure.
    /// The entry therefore always owns exactly one reference on its id,
    /// which is what lets the interner reclaim ids whose last entry moved
    /// on.
    fn check_granule(&self, word: u64, writes: bool, held: u64, tid: ThreadId, rid: Rid) {
        let key = word / GRANULE;
        loop {
            let cur = self.words.load(key);
            let set_id = (cur >> SET_SHIFT) as u32;
            let (next, acquired, next_mask) = self.step_word(cur, writes, held, tid);
            // Once-per-variable race report: empty candidate set on a
            // written-shared variable, not yet reported.
            let report = next & 0b11 == S_SHARED_MOD && next & REPORTED_BIT == 0 && next_mask == 0;
            let next = if report { next | REPORTED_BIT } else { next };
            if next == cur {
                if let Some(id) = acquired {
                    self.words.wide().release(id);
                }
                return; // §5.3 fast path: one load-acquire, no store
            }
            match self.words.compare_exchange(key, cur, next) {
                Ok(_) => {
                    let new_id = (next >> SET_SHIFT) as u32;
                    if set_id != new_id {
                        // The displaced id lost its entry's reference. (An
                        // id acquired and published is *kept*: the entry
                        // owns it now.)
                        self.words.wide().release(set_id);
                    } else if let Some(id) = acquired {
                        debug_assert_eq!(id, set_id);
                        self.words.wide().release(id);
                    }
                    if report {
                        // The CAS winner owns the report: exactly one per
                        // variable, however many readers raced it.
                        self.violations.lock().expect("poisoned").push(Violation {
                            tid,
                            rid,
                            kind: ViolationKind::DataRace,
                            addr: Some(word),
                        });
                    }
                    return;
                }
                // Lost to a concurrent (arc-unordered) access of the same
                // variable: recompute from its published state.
                Err(_) => {
                    if let Some(id) = acquired {
                        self.words.wide().release(id);
                    }
                    continue;
                }
            }
        }
    }

    /// Interned candidate masks currently live (soak/bench diagnostic).
    pub fn interned_masks(&self) -> usize {
        self.words.wide().live()
    }

    /// High-water mark of [`interned_masks`](Self::interned_masks).
    pub fn peak_interned_masks(&self) -> usize {
        self.words.wide().peak_live()
    }

    /// Whether the interner has saturated to the conservative full set at
    /// least once this session.
    pub fn degraded(&self) -> bool {
        self.words.wide().is_saturated()
    }
}

/// One granule's buffered Eraser transition in the delta-merge replay form.
///
/// The worker applies its accesses *eagerly* against the private `current`
/// word — the same `LockSetConcurrent::step_word` machine as the shared
/// CAS loop — and additionally folds an access summary (`any_write`,
/// `hmask`). Candidate intersection is commutative and associative and the
/// state lattice is monotone, so applying the summary as one access
/// reproduces the per-access sequence from any starting word; that is what
/// makes a lost publish CAS cheap to repair (one re-folded
/// `LockSetConcurrent::check_granule` call instead of a window replay).
#[derive(Debug)]
pub struct GranuleDelta {
    /// Shared entry word at first touch this window — the CAS expectation.
    observed: u64,
    /// Locally transitioned word (same packing as the shared table).
    current: u64,
    /// Interner reference held by this overlay entry: `Some` exactly when
    /// `current`'s set id was acquired here (differs from `observed`'s).
    /// Transfers to the table entry when the publish CAS wins.
    owned_ref: Option<u32>,
    /// Whether any buffered access wrote (summary for CAS-failure refold).
    any_write: bool,
    /// Intersection of held-lock masks across buffered accesses (summary).
    hmask: u64,
    /// Deferred once-per-variable race report: set when the local
    /// transition tripped it, pushed only if the publish CAS wins (a lost
    /// CAS re-folds and the fresh word's REPORTED bit arbitrates instead).
    pending: Option<Rid>,
    /// Rid of the window's last access — report attribution when a refold
    /// trips a race the local window did not see.
    last_rid: Rid,
}

impl WordAnalysis for LockSetConcurrent {
    type Window = GranuleDelta;

    fn overlay(&self) -> &WordOverlay<GranuleDelta> {
        &self.overlay
    }

    fn window_keys(&self, mem: MemRef, _kind: AccessKind) -> Option<(u64, u64)> {
        if mem.addr >= SYNC_SPACE_START {
            // Synchronization objects are accessed racily by construction;
            // Eraser excludes them.
            return None;
        }
        Some((
            mem.addr / GRANULE,
            (mem.addr + u64::from(mem.size) - 1) / GRANULE,
        ))
    }

    fn open_window(&self, key: u64) -> GranuleDelta {
        GranuleDelta {
            observed: self.words.load(key),
            current: self.words.load(key),
            owned_ref: None,
            any_write: false,
            hmask: u64::MAX,
            pending: None,
            last_rid: Rid(0),
        }
    }

    /// Delta-merge per-access path: the same `step_word` transition as
    /// `check_granule`, applied to the worker-private overlay word
    /// instead of CAS-published.
    fn fold_access(
        &self,
        entry: &mut GranuleDelta,
        _key: u64,
        kind: AccessKind,
        tid: ThreadId,
        rec: &EventRecord,
    ) {
        let writes = kind.writes();
        let held = self.held[tid.index()].load(std::sync::atomic::Ordering::Relaxed);
        let rid = rec.rid;
        entry.any_write |= writes;
        entry.hmask &= held;
        entry.last_rid = rid;
        let cur = entry.current;
        let (next, acquired, next_mask) = self.step_word(cur, writes, held, tid);
        let report = next & 0b11 == S_SHARED_MOD && next & REPORTED_BIT == 0 && next_mask == 0;
        let next = if report { next | REPORTED_BIT } else { next };
        if next == cur {
            if let Some(id) = acquired {
                self.words.wide().release(id);
            }
            return;
        }
        let old_id = (cur >> SET_SHIFT) as u32;
        let new_id = (next >> SET_SHIFT) as u32;
        if new_id == old_id {
            // Saturated re-intern of the id already in `current`: drop the
            // duplicate reference, ownership is unchanged.
            if let Some(id) = acquired {
                self.words.wide().release(id);
            }
        } else {
            // The overlay's reference moves to the new id; the displaced
            // one (if the overlay owned it — i.e. it was not `observed`'s,
            // whose reference the shared table still holds) is released.
            if let Some(id) = entry.owned_ref.take() {
                self.words.wide().release(id);
            }
            entry.owned_ref = acquired;
        }
        entry.current = next;
        if report {
            entry.pending = Some(rid);
        }
    }

    /// Publishes one overlay entry into the shared table — the flush-point
    /// half of the delta-merge form.
    fn publish_window(&self, key: u64, entry: GranuleDelta, tid: ThreadId) {
        if entry.current == entry.observed {
            // Window was all fast-path re-accesses; nothing to publish. (An
            // unchanged word implies an unchanged id: masks only shrink, so
            // no transition chain returns to its starting id.)
            debug_assert!(entry.owned_ref.is_none());
            return;
        }
        match self
            .words
            .compare_exchange(key, entry.observed, entry.current)
        {
            Ok(_) => {
                let old_id = (entry.observed >> SET_SHIFT) as u32;
                let new_id = (entry.current >> SET_SHIFT) as u32;
                if old_id != new_id {
                    // The displaced id lost the table entry's reference;
                    // the overlay's reference on `new_id` transfers to the
                    // entry (same move as check_granule's CAS success).
                    self.words.wide().release(old_id);
                } else if let Some(id) = entry.owned_ref {
                    self.words.wide().release(id);
                }
                if let Some(rid) = entry.pending {
                    // The publish CAS won, so this worker owns the
                    // once-per-variable report — the same arbitration the
                    // CAS-per-access form gets from the REPORTED bit.
                    self.violations.lock().expect("poisoned").push(Violation {
                        tid,
                        rid,
                        kind: ViolationKind::DataRace,
                        addr: Some(key * GRANULE),
                    });
                }
            }
            Err(_) => {
                // A concurrent (arc-unordered) peer moved the word under
                // the buffered window. Release the overlay reference and
                // re-fold the window's *summary* against the fresh state:
                // candidate intersection is commutative/associative and the
                // state lattice monotone, so one check_granule with
                // (any_write, hmask) reproduces the buffered sequence, and
                // its REPORTED-bit arbitration decides whether the pending
                // report still fires (the peer may own it now).
                if let Some(id) = entry.owned_ref {
                    self.words.wide().release(id);
                }
                let rid = entry.pending.unwrap_or(entry.last_rid);
                self.check_granule(key * GRANULE, entry.any_write, entry.hmask, tid, rid);
            }
        }
    }
}

impl crate::factory::DeltaLifeguard for LockSetConcurrent {
    fn apply_delta(&self, tid: ThreadId, rec: &EventRecord, versioned: Option<&VersionedMeta>) {
        crate::wordmeta::apply_delta_via_overlay(self, tid, rec, versioned);
    }

    fn flush_delta(&self, tid: ThreadId) {
        crate::wordmeta::flush_delta_via_overlay(self, tid);
    }
}

impl ConcurrentLifeguard for LockSetConcurrent {
    fn apply(&self, tid: ThreadId, rec: &EventRecord, _versioned: Option<&VersionedMeta>) {
        match &rec.payload {
            EventPayload::Instr(instr) => {
                let Some(MetaOp::CheckAccess { mem, kind }) = check_view(instr) else {
                    return;
                };
                if mem.addr >= SYNC_SPACE_START {
                    // Synchronization objects are accessed racily by
                    // construction; Eraser excludes them.
                    return;
                }
                let held = self.held[tid.index()].load(std::sync::atomic::Ordering::Relaxed);
                let first = mem.addr / GRANULE;
                let last = (mem.addr + u64::from(mem.size) - 1) / GRANULE;
                for word in first..=last {
                    self.check_granule(word * GRANULE, kind.writes(), held, tid, rec.rid);
                }
            }
            EventPayload::Ca(ca) => {
                // Lock ownership is per-thread state: only the issuer's own
                // stream copy updates it (remote copies order).
                if ca.issuer != tid {
                    return;
                }
                use std::sync::atomic::Ordering;
                let held = &self.held[tid.index()];
                match ca.what {
                    HighLevelKind::Lock(lock) if ca.phase == CaPhase::End => {
                        held.fetch_or(1u64 << (lock.0 % 64), Ordering::Relaxed);
                    }
                    HighLevelKind::Unlock(lock) if ca.phase == CaPhase::Begin => {
                        held.fetch_and(!(1u64 << (lock.0 % 64)), Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
        }
    }

    fn ca_policy(&self) -> CaPolicy {
        // Mirrors the sequential spec: LOCKSET orders entirely through
        // dependence arcs; no CA subscriptions, no §5.4 range tracking.
        CaPolicy::new()
    }

    fn snapshot_meta(&self, range: AddrRange) -> Vec<u8> {
        // Lockset state is not byte-shadow metadata; §5.5 versioning does
        // not apply (identical to the sequential form's all-clean answer).
        vec![0; range.len as usize]
    }

    fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprint::new();
        self.words.for_each_nonzero(|key, entry| {
            let owner = ((entry >> OWNER_SHIFT) & 0xFFFF) as u16;
            let state_code = match entry & 0b11 {
                S_EXCLUSIVE => 1 + u64::from(owner),
                S_SHARED => 1 << 32,
                S_SHARED_MOD => 2 << 32,
                _ => unreachable!("stored entries are never virgin"),
            };
            // Non-worker context (equivalence sweep): take the interner
            // mutex instead of relying on worker quiescence.
            let candidates = self.words.wide().value_locked((entry >> SET_SHIFT) as u32);
            fp.mix(key * GRANULE, state_code ^ candidates);
        });
        fp.finish()
    }

    fn violations(&self) -> Vec<Violation> {
        self.violations.lock().expect("poisoned").clone()
    }

    fn epoch_boundary(&self, tid: ThreadId) {
        self.words.wide().boundary(tid.index());
    }

    fn stream_done(&self, tid: ThreadId) {
        self.words.wide().retire_worker(tid.index());
    }

    fn session_events(&self) -> Vec<crate::SessionEvent> {
        if self.words.wide().is_saturated() {
            vec![Self::degraded_event()]
        } else {
            Vec::new()
        }
    }

    fn set_event_observer(&self, observer: crate::SessionEventObserver) {
        *self.observer.lock().expect("poisoned") = Some(observer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SessionEvent;
    use paralog_events::{AccessKind, LockId, MemRef};

    fn lock_ca(id: u32, phase: CaPhase, what_lock: bool) -> CaRecord {
        CaRecord {
            what: if what_lock {
                HighLevelKind::Lock(LockId(id))
            } else {
                HighLevelKind::Unlock(LockId(id))
            },
            phase,
            range: None,
            issuer: ThreadId(0),
            issuer_rid: Rid(1),
            seq: 0,
        }
    }

    fn access(addr: u64, write: bool) -> MetaOp {
        MetaOp::CheckAccess {
            mem: MemRef::new(addr, 4),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        }
    }

    fn two_threads() -> (LockSet, LockSet) {
        let shared = LockSetShared::new();
        (
            LockSet::new(Rc::clone(&shared), ThreadId(0)),
            LockSet::new(Rc::clone(&shared), ThreadId(1)),
        )
    }

    #[test]
    fn consistent_locking_is_silent() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        a.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(2), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn unprotected_sharing_reports_race_once() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, true), Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(1), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
        assert_eq!(ctx.violations[0].kind, ViolationKind::DataRace);
        // Further accesses do not re-report.
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        assert_eq!(ctx.violations.len(), 1);
    }

    #[test]
    fn read_sharing_without_writes_is_not_a_race() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx);
        b.handle(&access(0x100, false), Rid(1), &mut ctx);
        assert!(ctx.violations.is_empty());
    }

    #[test]
    fn exclusive_fast_path_sets_no_slow_flag() {
        let (mut a, _b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx); // Virgin -> Exclusive (write-ish transition but read)
        let mut ctx2 = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(2), &mut ctx2);
        assert!(!ctx2.slow_path, "same-thread re-read is the fast path");
    }

    #[test]
    fn cross_thread_read_takes_slow_path() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x100, false), Rid(1), &mut ctx);
        let mut ctx2 = HandlerCtx::new();
        b.handle(&access(0x100, false), Rid(1), &mut ctx2);
        assert!(
            ctx2.slow_path,
            "state transition on read = metadata write = slow path"
        );
    }

    #[test]
    fn lock_tracking_follows_ca_records() {
        let (mut a, _b) = two_threads();
        let mut ctx = HandlerCtx::new();
        assert_eq!(a.held(), 0);
        a.handle_ca(&lock_ca(3, CaPhase::End, true), true, Rid(1), &mut ctx);
        assert_eq!(a.held(), 1 << 3);
        a.handle_ca(&lock_ca(3, CaPhase::Begin, false), true, Rid(2), &mut ctx);
        assert_eq!(a.held(), 0);
        // Remote lock CAs do not change our held set.
        a.handle_ca(&lock_ca(5, CaPhase::End, true), false, Rid(3), &mut ctx);
        assert_eq!(a.held(), 0);
    }

    fn rec_access(rid: u64, addr: u64, write: bool) -> EventRecord {
        use paralog_events::{Instr, Reg};
        let mem = MemRef::new(addr, 4);
        EventRecord::instr(
            Rid(rid),
            if write {
                Instr::Store {
                    dst: mem,
                    src: Reg::new(0),
                }
            } else {
                Instr::Load {
                    dst: Reg::new(0),
                    src: mem,
                }
            },
        )
    }

    fn rec_lock(rid: u64, tid: u16, id: u32, acquire: bool) -> EventRecord {
        EventRecord::ca(
            Rid(rid),
            CaRecord {
                what: if acquire {
                    HighLevelKind::Lock(LockId(id))
                } else {
                    HighLevelKind::Unlock(LockId(id))
                },
                phase: if acquire {
                    CaPhase::End
                } else {
                    CaPhase::Begin
                },
                range: None,
                issuer: ThreadId(tid),
                issuer_rid: Rid(rid),
                seq: u64::MAX,
            },
        )
    }

    #[test]
    fn concurrent_form_matches_sequential_transitions() {
        // Consistent locking is silent; unprotected write sharing reports
        // exactly once; the final fingerprint tracks the sequential family
        // through the same access sequence.
        let conc = LockSetConcurrent::new(2);
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();

        // Lock-disciplined accesses to 0x100 from both threads.
        conc.apply(ThreadId(0), &rec_lock(1, 0, 1, true), None);
        conc.apply(ThreadId(0), &rec_access(2, 0x100, true), None);
        conc.apply(ThreadId(0), &rec_lock(3, 0, 1, false), None);
        conc.apply(ThreadId(1), &rec_lock(1, 1, 1, true), None);
        conc.apply(ThreadId(1), &rec_access(2, 0x100, true), None);
        conc.apply(ThreadId(1), &rec_lock(3, 1, 1, false), None);
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle(&access(0x100, true), Rid(2), &mut ctx);
        a.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x100, true), Rid(2), &mut ctx);
        b.handle_ca(&lock_ca(1, CaPhase::Begin, false), true, Rid(3), &mut ctx);
        assert!(conc.violations().is_empty(), "lock 1 protects 0x100");
        assert_eq!(conc.fingerprint(), a.fingerprint(), "disciplined state");

        // Unprotected write sharing on 0x200: one race, reported once.
        conc.apply(ThreadId(0), &rec_access(4, 0x200, true), None);
        conc.apply(ThreadId(1), &rec_access(4, 0x200, true), None);
        conc.apply(ThreadId(0), &rec_access(5, 0x200, true), None);
        a.handle(&access(0x200, true), Rid(4), &mut ctx);
        b.handle(&access(0x200, true), Rid(4), &mut ctx);
        a.handle(&access(0x200, true), Rid(5), &mut ctx);
        assert_eq!(conc.violations().len(), 1);
        assert_eq!(conc.violations()[0].kind, ViolationKind::DataRace);
        assert_eq!(conc.violations()[0].addr, Some(0x200));
        assert_eq!(ctx.violations.len(), 1, "sequential agrees");
        assert_eq!(conc.fingerprint(), a.fingerprint(), "post-race state");
    }

    #[test]
    fn concurrent_form_ignores_sync_space_and_remote_lock_cas() {
        let conc = LockSetConcurrent::new(2);
        // Sync-space accesses are not subject to lockset analysis.
        conc.apply(
            ThreadId(0),
            &rec_access(1, SYNC_SPACE_START + 8, true),
            None,
        );
        conc.apply(
            ThreadId(1),
            &rec_access(1, SYNC_SPACE_START + 8, true),
            None,
        );
        assert!(conc.violations().is_empty());
        // A remote thread's lock CA must not change our held set: thread 1
        // never really acquired lock 2, so its write shares 0x300 unlocked.
        conc.apply(ThreadId(1), &rec_lock(2, 0, 2, true), None); // issuer 0!
        conc.apply(ThreadId(0), &rec_lock(2, 0, 2, true), None);
        conc.apply(ThreadId(0), &rec_access(3, 0x300, true), None);
        conc.apply(ThreadId(1), &rec_access(3, 0x300, true), None);
        assert_eq!(conc.violations().len(), 1, "remote CA gave no protection");
    }

    #[test]
    fn concurrent_racing_readers_report_exactly_once() {
        // Many real threads hammer the same unprotected variable: the CAS
        // loop must converge and the `reported` bit must keep the report
        // unique — the invariant the TSan job races.
        let conc = LockSetConcurrent::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let conc = &conc;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        conc.apply(ThreadId(t), &rec_access(i + 1, 0x400, true), None);
                    }
                });
            }
        });
        assert_eq!(conc.violations().len(), 1, "exactly one DataRace report");
        // And the candidate set converged to empty SharedModified state.
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        a.handle(&access(0x400, true), Rid(1), &mut ctx);
        b.handle(&access(0x400, true), Rid(1), &mut ctx);
        // (Sequential fingerprint differs only if candidates/state differ;
        // both are SharedModified with empty candidates here.)
        assert_eq!(conc.fingerprint(), a.fingerprint());
    }

    #[test]
    fn interner_reclaims_unreferenced_masks_at_boundaries() {
        // Churn distinct first-share masks that are immediately refined
        // away: the intermediate ids become unreferenced and must be freed
        // by the epoch sweeps, keeping residency at the steady-state
        // window.
        let conc = LockSetConcurrent::new(2);
        let base = conc.interned_masks();
        for i in 0..200u64 {
            let addr = 0x1000 + i * GRANULE;
            // Thread 0 claims the var; thread 1 shares it under a unique
            // 3-lock combo (interned), then re-reads it with no locks
            // (refines to the already-interned empty mask, releasing the
            // combo id).
            conc.apply(ThreadId(0), &rec_access(1, addr, false), None);
            for bit in [i % 19, 19 + i % 17, 36 + i % 13] {
                conc.apply(ThreadId(1), &rec_lock(2, 1, bit as u32, true), None);
            }
            conc.apply(ThreadId(1), &rec_access(3, addr, false), None);
            for bit in [i % 19, 19 + i % 17, 36 + i % 13] {
                conc.apply(ThreadId(1), &rec_lock(4, 1, bit as u32, false), None);
            }
            conc.apply(ThreadId(1), &rec_access(5, addr, false), None);
            // Both workers cross a batch boundary every few records.
            if i % 8 == 7 {
                conc.epoch_boundary(ThreadId(0));
                conc.epoch_boundary(ThreadId(1));
            }
        }
        conc.epoch_boundary(ThreadId(0));
        conc.epoch_boundary(ThreadId(1));
        conc.epoch_boundary(ThreadId(0));
        conc.epoch_boundary(ThreadId(1));
        assert!(
            conc.interned_masks() <= base + 24,
            "unreferenced combo masks must be reclaimed (live: {})",
            conc.interned_masks()
        );
        assert!(conc.peak_interned_masks() < 100, "residency stays windowed");
        assert!(!conc.degraded());
        assert!(conc.violations().is_empty(), "reads only: no races");
    }

    #[test]
    fn interner_exhaustion_saturates_soundly_past_two_to_the_sixteen() {
        // An adversarial workload pins more than 2^16 *distinct* candidate
        // masks live at once (every shared var keeps its combo referenced,
        // and no boundary can free a referenced id). The interner must
        // saturate to the conservative full set — completing the session
        // with zero false reports and one DegradedPrecision event — where
        // it previously died on an assert.
        let conc = LockSetConcurrent::new(2);

        // A genuine unprotected race first, while precision is intact.
        conc.apply(ThreadId(0), &rec_access(1, 0xFF_0000, true), None);
        conc.apply(ThreadId(1), &rec_access(1, 0xFF_0000, true), None);
        assert_eq!(conc.violations().len(), 1, "pre-saturation race reports");

        // Walk 17 lock bits in Gray-code order: one lock CA toggles per
        // step, and every step's held set is a distinct non-empty mask.
        // Each step shares a fresh variable under that set, pinning the
        // mask's id for good. 66_000 > 2^16 steps exhaust the id space.
        let mut held: u64 = 0;
        let mut rid = [2u64, 2u64];
        for i in 1u64..=66_000 {
            let bit = i.trailing_zeros();
            let acquire = held & (1 << bit) == 0;
            held ^= 1 << bit;
            for t in 0..2u16 {
                conc.apply(
                    ThreadId(t),
                    &rec_lock(rid[t as usize], t, bit, acquire),
                    None,
                );
                rid[t as usize] += 1;
            }
            let addr = 0x100_0000 + i * GRANULE;
            for t in 0..2u16 {
                conc.apply(ThreadId(t), &rec_access(rid[t as usize], addr, true), None);
                rid[t as usize] += 1;
            }
            // Boundaries must not help: every mask is still referenced.
            if i % 4096 == 0 {
                conc.epoch_boundary(ThreadId(0));
                conc.epoch_boundary(ThreadId(1));
            }
        }

        assert!(conc.degraded(), "66k live masks must exhaust 2^16 ids");
        let events = conc.session_events();
        assert_eq!(events.len(), 1, "one diagnostic per session");
        let SessionEvent::DegradedPrecision { lifeguard, detail } = &events[0];
        assert_eq!(*lifeguard, "LockSet");
        assert!(detail.contains("mask interner"), "got: {detail}");
        // Soundness: every walked set was non-empty and consistently held
        // by both threads, and saturation only widens candidate sets — so
        // the genuine race stays the *only* report.
        assert_eq!(
            conc.violations().len(),
            1,
            "saturation must not fabricate race reports"
        );
    }

    #[test]
    fn retired_worker_does_not_gate_reclamation() {
        let conc = LockSetConcurrent::new(2);
        let before = conc.interned_masks();
        conc.apply(ThreadId(0), &rec_access(1, 0x2000, false), None);
        conc.apply(ThreadId(1), &rec_lock(2, 1, 7, true), None);
        conc.apply(ThreadId(1), &rec_access(3, 0x2000, false), None);
        conc.apply(ThreadId(1), &rec_lock(4, 1, 7, false), None);
        conc.apply(ThreadId(1), &rec_access(5, 0x2000, false), None);
        // Worker 0's stream ends; only worker 1 keeps crossing boundaries.
        conc.stream_done(ThreadId(0));
        conc.epoch_boundary(ThreadId(1));
        conc.epoch_boundary(ThreadId(1));
        assert_eq!(
            conc.interned_masks(),
            before + 1,
            "the {{lock 7}} mask died with the refinement; only the empty \
             mask stays referenced"
        );
    }

    #[test]
    fn delta_form_matches_cas_form() {
        use crate::factory::DeltaLifeguard;
        // The same disciplined-plus-racy sequence through both replay
        // forms: identical fingerprints and identical reports. CAs flow
        // through apply_delta too (they self-flush), and the mid-sequence
        // explicit flush exercises a window split.
        let cas = LockSetConcurrent::new(2);
        let delta = LockSetConcurrent::new(2);
        let drive = |t: u16, rec: &EventRecord| {
            cas.apply(ThreadId(t), rec, None);
            delta.apply_delta(ThreadId(t), rec, None);
        };
        // Lock-disciplined sharing of 0x100.
        for t in 0..2u16 {
            drive(t, &rec_lock(1, t, 1, true));
            drive(t, &rec_access(2, 0x100, true));
            drive(t, &rec_lock(3, t, 1, false));
        }
        delta.flush_delta(ThreadId(0));
        // Unprotected write sharing on 0x200: exactly one race.
        drive(0, &rec_access(4, 0x200, true));
        delta.flush_delta(ThreadId(0));
        drive(1, &rec_access(4, 0x200, true));
        drive(0, &rec_access(5, 0x200, true));
        for t in 0..2u16 {
            delta.flush_delta(ThreadId(t));
        }
        assert_eq!(delta.fingerprint(), cas.fingerprint());
        assert_eq!(delta.violations().len(), 1);
        assert_eq!(delta.violations()[0].kind, ViolationKind::DataRace);
        assert_eq!(delta.violations()[0].addr, Some(0x200));
        // An empty re-flush is a no-op.
        delta.flush_delta(ThreadId(0));
        assert_eq!(delta.fingerprint(), cas.fingerprint());
    }

    #[test]
    fn delta_racing_writers_report_exactly_once() {
        use crate::factory::DeltaLifeguard;
        // Real threads hammer one unprotected variable through private
        // overlays with interleaved flushes: lost publish CASes must
        // re-fold, and the report must stay unique — the delta-mode
        // counterpart of the CAS-loop race test (TSan races this too).
        let conc = LockSetConcurrent::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u16 {
                let conc = &conc;
                scope.spawn(move || {
                    for i in 0..64u64 {
                        conc.apply_delta(ThreadId(t), &rec_access(i + 1, 0x400, true), None);
                        if i % 7 == 6 {
                            conc.flush_delta(ThreadId(t));
                        }
                    }
                    conc.flush_delta(ThreadId(t));
                });
            }
        });
        assert_eq!(conc.violations().len(), 1, "exactly one DataRace report");
        // Final state converges to SharedModified with empty candidates,
        // same as the CAS-per-access form.
        let cas = LockSetConcurrent::new(2);
        cas.apply(ThreadId(0), &rec_access(1, 0x400, true), None);
        cas.apply(ThreadId(1), &rec_access(1, 0x400, true), None);
        assert_eq!(conc.fingerprint(), cas.fingerprint());
    }

    #[test]
    fn delta_window_refines_and_transfers_interner_refs() {
        use crate::factory::DeltaLifeguard;
        // A buffered window that refines the candidate set twice holds one
        // overlay reference at a time; after the flush the table owns the
        // final id and the intermediates are reclaimable at boundaries.
        let conc = LockSetConcurrent::new(2);
        let base = conc.interned_masks();
        conc.apply(ThreadId(0), &rec_access(1, 0x500, false), None);
        // Thread 1 shares under {3,5}, re-reads under {3}, then unlocked.
        conc.apply_delta(ThreadId(1), &rec_lock(1, 1, 3, true), None);
        conc.apply_delta(ThreadId(1), &rec_lock(2, 1, 5, true), None);
        conc.apply_delta(ThreadId(1), &rec_access(3, 0x500, false), None);
        conc.apply_delta(ThreadId(1), &rec_lock(4, 1, 5, false), None);
        conc.apply_delta(ThreadId(1), &rec_access(5, 0x500, false), None);
        conc.apply_delta(ThreadId(1), &rec_lock(6, 1, 3, false), None);
        conc.apply_delta(ThreadId(1), &rec_access(7, 0x500, false), None);
        conc.flush_delta(ThreadId(1));
        assert!(conc.violations().is_empty(), "reads only: no race");
        for _ in 0..2 {
            conc.epoch_boundary(ThreadId(0));
            conc.epoch_boundary(ThreadId(1));
        }
        // Only the empty mask stays referenced by the table entry; the
        // {3,5} and {3} intermediates were released by the overlay chain.
        assert_eq!(
            conc.interned_masks(),
            base + 1,
            "intermediate window masks must be reclaimed"
        );
    }

    #[test]
    fn partial_candidate_overlap_survives() {
        let (mut a, mut b) = two_threads();
        let mut ctx = HandlerCtx::new();
        // Thread 0 holds {1,2}, thread 1 holds {2}: candidate set ends {2}.
        a.handle_ca(&lock_ca(1, CaPhase::End, true), true, Rid(1), &mut ctx);
        a.handle_ca(&lock_ca(2, CaPhase::End, true), true, Rid(2), &mut ctx);
        a.handle(&access(0x200, true), Rid(3), &mut ctx);
        b.handle_ca(&lock_ca(2, CaPhase::End, true), true, Rid(1), &mut ctx);
        b.handle(&access(0x200, true), Rid(2), &mut ctx);
        assert!(ctx.violations.is_empty(), "lock 2 consistently protects");
    }
}
